#!/usr/bin/env bash
# Protocol-conformance matrix: one v4 router against shard processes
# speaking every supported wire generation — v4 (current), v3, v2, and
# a *strict* v2 that rejects any other version outright (emulating a
# release from before negotiation windows). For every cell the router
# must (a) produce byte-identical answers to the v4/v4 run and (b)
# report the negotiated version in its STAT replica health
# (`wire=vN`), proving it really spoke the old dialect rather than
# silently failing up to the new one.
#
# The final scenario severs the only shard mid-session (SIGKILL while
# a snapshot response may be streaming) and asserts the router answers
# with named degraded/error lines under a hard timeout — a severed
# stream is a *named* transport error, never a hang.
#
# Process hygiene: every PID lands in CLEANUP_PIDS and the EXIT trap
# kills them whatever happens.
set -euo pipefail

BIN="${SCQ_SERVE_BIN:-./target/release/scq-serve}"
WORK="$(mktemp -d)"
CLEANUP_PIDS=()

cleanup() {
    local status=$?
    if [ "$status" -ne 0 ]; then
        echo "--- protocol matrix FAILED (exit $status); process logs follow ---"
        for log in "$WORK"/*.log; do
            [ -f "$log" ] || continue
            echo "::group::$(basename "$log")"
            cat "$log"
            echo "::endgroup::"
        done
        if [ -n "${SMOKE_KEEP_DIR:-}" ]; then
            mkdir -p "$SMOKE_KEEP_DIR"
            cp -r "$WORK"/. "$SMOKE_KEEP_DIR"/ 2>/dev/null || true
        fi
    fi
    if [ "${#CLEANUP_PIDS[@]}" -gt 0 ]; then
        kill "${CLEANUP_PIDS[@]}" 2>/dev/null || true
        wait "${CLEANUP_PIDS[@]}" 2>/dev/null || true
    fi
    rm -rf "$WORK"
    exit "$status"
}
trap cleanup EXIT

# Starts a detached server ($2...) logging to $WORK/$1.log, records its
# PID for cleanup, and polls the log until the server prints its bound
# address. The address lands in $ADDR, the PID in $SERVER_PID.
start_server() {
    local name="$1"
    shift
    "$@" >"$WORK/$name.log" 2>&1 &
    SERVER_PID=$!
    CLEANUP_PIDS+=("$SERVER_PID")
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$WORK/$name.log" | head -n 1)"
        [ -n "$ADDR" ] && return 0
        if ! kill -0 "$SERVER_PID" 2>/dev/null; then
            echo "$name exited before becoming ready" >&2
            return 1
        fi
        sleep 0.1
    done
    echo "$name did not become ready within 10s" >&2
    return 1
}

# The scripted session every matrix cell runs. Only commands that
# exist in every supported wire generation: no METRICS (v3+) — the
# point is identical *answers*, so the transcript must not depend on
# the negotiated version.
session() {
    timeout 60 "$BIN" --client "$1" <<'EOF'
PING
CREATE objs
INSERT objs 50 50 60 60
INSERT objs 900 900 920 920
INSERT objs 100 80 140 120
SHARDS
QUERY objs rtree within 0 0 200 200
UPDATE objs 1 20 20 40 40
QUERY objs rtree within 0 0 200 200
SOLVE rtree all A=coll:objs,C=box:0:0:200:200 A <= C
REMOVE objs 2
COMPACT
QUERY objs rtree within 0 0 1000 1000
QUIT
EOF
}

# run_mode <name> <expected-wire> [shard flags...] — boots one shard
# process + a fresh router, runs the session, captures an
# address-normalized transcript and the router's STAT line.
run_mode() {
    local mode="$1" expect_wire="$2"
    shift 2
    start_server "shard_$mode" "$BIN" --shard --addr 127.0.0.1:0 --threads 2 --universe 1000 "$@"
    local shard="$ADDR"
    cat >"$WORK/$mode.spec" <<EOF
universe 0 0 1000 1000
bits 6
shard $shard 0 4096
EOF
    start_server "router_$mode" "$BIN" --cluster "$WORK/$mode.spec" --addr 127.0.0.1:0 --threads 2
    local router="$ADDR"
    session "$router" >"$WORK/$mode.transcript.txt"
    # Ephemeral ports differ per cell; everything else must not.
    sed -E 's/remote:[0-9.]+:[0-9]+/remote:ADDR/g' \
        "$WORK/$mode.transcript.txt" >"$WORK/$mode.normalized.txt"
    timeout 60 "$BIN" --client "$router" >"$WORK/$mode.stat.txt" <<'EOF'
STAT
QUIT
EOF
    if ! grep -qF ",wire=v$expect_wire]" "$WORK/$mode.stat.txt"; then
        echo "mode $mode: STAT health does not report the negotiated wire=v$expect_wire" >&2
        cat "$WORK/$mode.stat.txt" >&2
        exit 1
    fi
    echo "mode $mode: negotiated wire=v$expect_wire"
}

echo "=== matrix: v4 router x {v4, v3, v2, strict-v2} shard ==="
run_mode v4 4
run_mode v3 3 --wire-version 3
run_mode v2 2 --wire-version 2
run_mode strict2 2 --wire-version 2 --strict-wire

echo "=== identical answers across every cell ==="
for mode in v3 v2 strict2; do
    if ! diff -u "$WORK/v4.normalized.txt" "$WORK/$mode.normalized.txt"; then
        echo "mode $mode answered differently from the v4/v4 reference" >&2
        exit 1
    fi
done
echo "all transcripts identical"
cat "$WORK/v4.transcript.txt"

echo "=== mid-stream sever: SIGKILL the shard under an in-flight snapshot ==="
start_server shard_sever "$BIN" --shard --addr 127.0.0.1:0 --threads 2 --universe 1000
SEVER_SHARD="$ADDR"
SEVER_PID="$SERVER_PID"
cat >"$WORK/sever.spec" <<EOF
universe 0 0 1000 1000
bits 6
shard $SEVER_SHARD 0 4096
EOF
start_server router_sever "$BIN" --cluster "$WORK/sever.spec" --addr 127.0.0.1:0 --threads 2
SEVER_ROUTER="$ADDR"

# Enough objects that the shard's snapshot answer streams for a while.
{
    echo "CREATE objs"
    for i in $(seq 0 399); do
        x=$(( (i % 20) * 48 + 4 ))
        y=$(( (i / 20) * 48 + 4 ))
        echo "INSERT objs $x $y $((x + 6)) $((y + 6))"
    done
    echo "QUIT"
} | timeout 120 "$BIN" --client "$SEVER_ROUTER" >"$WORK/sever_seed.txt"
grep -cF 'OK ref=' "$WORK/sever_seed.txt" | grep -qx 400 || {
    echo "seeding the sever shard failed" >&2
    exit 1
}

# Race a snapshot pull against the kill: whichever wins, the client
# must exit promptly with either a complete OK or a named ERR — a
# severed response stream must never wedge the router.
timeout 60 "$BIN" --client "$SEVER_ROUTER" >"$WORK/sever_snapshot.txt" <<EOF &
SNAPSHOT SAVE $WORK/sever_snap
QUIT
EOF
CLIENT_PID=$!
sleep 0.2
kill -9 "$SEVER_PID"
wait "$SEVER_PID" 2>/dev/null || true
if ! wait "$CLIENT_PID"; then
    echo "snapshot client hung or died abnormally after the sever" >&2
    exit 1
fi
grep -qE '^(OK saved|ERR )' "$WORK/sever_snapshot.txt" || {
    echo "severed snapshot neither completed nor failed with a named error:" >&2
    cat "$WORK/sever_snapshot.txt" >&2
    exit 1
}
cat "$WORK/sever_snapshot.txt"

# With the shard dead, reads degrade to named PARTIAL lines and
# mutations to named ERR lines — still no hang.
timeout 60 "$BIN" --client "$SEVER_ROUTER" >"$WORK/sever_after.txt" <<'EOF'
QUERY objs rtree within 0 0 1000 1000
INSERT objs 10 10 20 20
STAT
QUIT
EOF
cat "$WORK/sever_after.txt"
# `missing=` names the missing shard ids; the only shard is id 0.
grep -qF 'PARTIAL missing=0' "$WORK/sever_after.txt" || {
    echo "dead shard did not degrade reads to a named PARTIAL" >&2
    exit 1
}
grep -qF 'ERR ' "$WORK/sever_after.txt" || {
    echo "dead shard did not fail mutations with a named ERR" >&2
    exit 1
}
if grep -qF 'shards_unavailable=0' "$WORK/sever_after.txt"; then
    echo "STAT failed to count the severed shard" >&2
    exit 1
fi

echo "protocol matrix passed"
