//! Visual language parsing (reference [7] of the paper — the authors'
//! own CHI'91 system): recognize diagram structure by solving spatial
//! constraint systems over picture elements.
//!
//! The "language" here is a boxes-and-labels diagram: a *labelled node*
//! is a node with a label in its halo but off its body; an *arrow
//! connection* is an edge region touching two distinct node halos.
//!
//! ```sh
//! cargo run -p scq-integration --example visual_parser
//! ```

use scq_integration::prelude::*;

fn halo(b: &AaBox<2>, margin: f64) -> Region<2> {
    let lo = b.lo();
    let hi = b.hi();
    Region::from_box(AaBox::new(
        [lo[0] - margin, lo[1] - margin],
        [hi[0] + margin, hi[1] + margin],
    ))
}

fn main() {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [300.0, 300.0]));
    let nodes = db.collection("nodes");
    let labels = db.collection("labels");
    let edges = db.collection("edges");

    // A small diagram: three nodes, labels beside two of them, one edge.
    let node_boxes = [
        AaBox::new([30.0, 30.0], [60.0, 60.0]),
        AaBox::new([160.0, 40.0], [190.0, 70.0]),
        AaBox::new([90.0, 180.0], [120.0, 210.0]),
    ];
    for b in node_boxes {
        db.insert(nodes, Region::from_box(b));
    }
    db.insert(
        labels,
        Region::from_box(AaBox::new([62.0, 32.0], [85.0, 42.0])),
    ); // near node 0
    db.insert(
        labels,
        Region::from_box(AaBox::new([192.0, 42.0], [215.0, 52.0])),
    ); // near node 1
    db.insert(
        labels,
        Region::from_box(AaBox::new([250.0, 250.0], [270.0, 260.0])),
    ); // floating
    db.insert(
        edges,
        Region::from_box(AaBox::new([60.0, 44.0], [160.0, 50.0])),
    ); // 0 → 1
    db.insert(
        edges,
        Region::from_box(AaBox::new([200.0, 150.0], [210.0, 160.0])),
    ); // dangling

    // ── Pattern 1: labelled nodes ─────────────────────────────────────
    println!("labelled nodes:");
    let pattern = parse_system("L & H != 0; L & N = 0; L != 0").expect("parses");
    for (i, nb) in node_boxes.iter().enumerate() {
        let q = Query::new(pattern.clone())
            .known("H", halo(nb, 30.0))
            .known("N", Region::from_box(*nb))
            .from_collection("L", labels);
        let r = bbox_execute(&db, &q, IndexKind::RTree).expect("valid");
        for sol in &r.solutions {
            println!(
                "  node {} ← label {}",
                i,
                sol.values().next().unwrap().index
            );
        }
    }

    // ── Pattern 2: connections ────────────────────────────────────────
    // An edge connects nodes i ≠ j when it meets both halos and is
    // disjoint from both bodies except at the attachment overlap.
    println!("connections:");
    let conn = parse_system("E & HA != 0; E & HB != 0; E != 0").expect("parses");
    for i in 0..node_boxes.len() {
        for j in (i + 1)..node_boxes.len() {
            let q = Query::new(conn.clone())
                .known("HA", halo(&node_boxes[i], 5.0))
                .known("HB", halo(&node_boxes[j], 5.0))
                .from_collection("E", edges);
            let r = bbox_execute(&db, &q, IndexKind::RTree).expect("valid");
            for sol in &r.solutions {
                println!(
                    "  node {} ── edge {} ── node {}",
                    i,
                    sol.values().next().unwrap().index,
                    j
                );
            }
        }
    }

    // ── The parse result ──────────────────────────────────────────────
    // A full parser would feed these facts into a grammar; the point of
    // the example is that each pattern compiles to range queries through
    // the paper's machinery rather than bespoke geometric code.
    println!("\ndone.");
}
