//! A multi-process shard cluster in miniature.
//!
//! Boots three shard servers speaking the binary wire protocol on
//! ephemeral loopback ports (in-process threads here; `scq-serve
//! --shard` gives each its own OS process), connects a router tier
//! over a [`ClusterSpec`], and walks the distribution story end to
//! end: routed inserts, a corner query the router prunes, cross-shard
//! migration on update, a constraint solve over the cluster, and a
//! snapshot round trip where every shard streams its own bytes over
//! the wire.
//!
//! ```text
//! cargo run --release --example cluster_tier
//! ```

use std::time::Duration;

use scq_integration::prelude::*;
use scq_shard::ShardServerConfig;

fn main() {
    let universe = AaBox::new([0.0, 0.0], [1000.0, 1000.0]);

    // ── 1. three shard processes ────────────────────────────────────
    let servers: Vec<scq_shard::ShardServerHandle> = (0..3)
        .map(|_| {
            scq_shard::serve_shard(&ShardServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
                universe_size: 1000.0,
                ..ShardServerConfig::default()
            })
            .expect("bind shard server")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();
    println!("shard processes: {addrs:?}");

    // ── 2. the cluster spec + router tier ───────────────────────────
    let spec = ClusterSpec::balanced(universe, scq_shard::DEFAULT_ROUTER_BITS, &addrs);
    print!("{}", spec.to_text());
    let mut db = spec
        .connect(Duration::from_secs(10))
        .expect("connect cluster");

    // ── 3. routed inserts ───────────────────────────────────────────
    let towns = db.collection("towns");
    let mut refs = Vec::new();
    for i in 0..24u64 {
        let x = (i * 41 % 23) as f64 * 40.0;
        let y = (i * 17 % 23) as f64 * 40.0;
        refs.push(db.insert(
            towns,
            Region::from_box(AaBox::new([x, y], [x + 12.0, y + 12.0])),
        ));
    }
    let mut per_shard = vec![0usize; db.n_shards()];
    for &r in &refs {
        per_shard[db.shard_of(r)] += 1;
    }
    println!("placement across shard processes: {per_shard:?}");
    assert!(
        per_shard.iter().all(|&n| n > 0),
        "diagonal data spans all shards"
    );

    // ── 4. a pruned corner query ────────────────────────────────────
    let q = CornerQuery::unconstrained().and_contained_in(&Bbox::new([0.0, 0.0], [300.0, 300.0]));
    let mut ids = Vec::new();
    let report = db.query_collection(towns, IndexKind::RTree, &q, &mut ids);
    println!(
        "corner query in the low corner: {} matches, {} of {} shard processes never probed",
        ids.len(),
        report.shards_pruned,
        db.n_shards()
    );
    assert!(
        report.shards_pruned > 0,
        "the router must prune for a corner-bound query"
    );
    assert!(report.is_complete(), "all shard processes answered");

    // ── 5. cross-process migration ──────────────────────────────────
    // move an object from the highest-z shard into the low corner
    let mover = *refs
        .iter()
        .max_by_key(|&&r| db.shard_of(r))
        .expect("there are towns");
    let before = db.shard_of(mover);
    assert!(db.update(
        mover,
        Region::from_box(AaBox::new([5.0, 5.0], [15.0, 15.0]))
    ));
    let after = db.shard_of(mover);
    println!(
        "update migrated object {} from shard {before} to shard {after}",
        mover.index
    );
    assert_ne!(before, after, "a universe-crossing move changes shards");
    db.check().expect("cluster consistent after migration");

    // ── 6. a constraint solve over the cluster ──────────────────────
    let sys = parse_system("T <= W; T != 0").unwrap();
    let query = Query::new(sys)
        .known(
            "W",
            Region::from_box(AaBox::new([0.0, 600.0], [500.0, 1000.0])),
        )
        .from_collection("T", towns);
    let result = scq_shard::execute(
        &db,
        &query,
        IndexKind::RTree,
        scq_engine::ExecOptions::all(),
    )
    .expect("solve");
    println!(
        "solve over the cluster: {} solutions, {} shard probes pruned",
        result.solutions.len(),
        result.stats.shards_pruned
    );

    // ── 7. snapshot round trip over the wire ────────────────────────
    let dir = std::env::temp_dir().join(format!("scq_cluster_example_{}", std::process::id()));
    scq_shard::save_to_dir(&db, &dir).expect("save cluster snapshot");
    let local = scq_shard::load_from_dir(&dir).expect("reload as a local store");
    assert_eq!(local.live_len(towns), db.live_len(towns));
    scq_shard::reload_from_dir(&mut db, &dir).expect("restore the cluster in place");
    db.check().expect("cluster consistent after restore");
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "snapshot: {} live towns streamed out of {} shard processes and restored back",
        local.live_len(towns),
        db.n_shards()
    );

    drop(db);
    for server in servers {
        server.shutdown();
    }
    println!("cluster example finished cleanly");
}
