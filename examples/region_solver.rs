//! Constraint *solving*: instead of retrieving objects from a database,
//! synthesize regions satisfying a constraint system — Theorem 7 of the
//! paper (projection is exact quantifier elimination on atomless
//! algebras) made constructive.
//!
//! Scenario: lay out a nature reserve. Given the county `C` and a
//! wetland `W`, construct a reserve `R`, a buffer `B` and a visitor
//! area `V` with:
//!
//! * the wetland inside the reserve, the reserve inside the county;
//! * the buffer strictly containing the reserve, inside the county;
//! * the visitor area inside the buffer but outside the reserve,
//!   and nonempty.
//!
//! ```sh
//! cargo run -p scq-integration --example region_solver
//! ```

use scq_integration::prelude::*;

fn main() {
    let sys = parse_system(
        "W <= R            # wetland inside reserve
         R <= C            # reserve inside county
         R < B             # buffer strictly contains reserve
         B <= C
         V <= B            # visitor area in the buffer…
         V & R = 0         # …but outside the reserve
         V != 0",
    )
    .expect("parses");
    println!("System:\n{sys}\n");

    let (c, w, r, b, v) = (
        sys.table.get("C").unwrap(),
        sys.table.get("W").unwrap(),
        sys.table.get("R").unwrap(),
        sys.table.get("B").unwrap(),
        sys.table.get("V").unwrap(),
    );

    let alg: RegionAlgebra<2> = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
    let county = Region::from_box(AaBox::new([5.0, 5.0], [95.0, 95.0]));
    let wetland = Region::from_boxes([
        AaBox::new([30.0, 30.0], [45.0, 40.0]),
        AaBox::new([40.0, 38.0], [50.0, 48.0]),
    ]);
    let knowns = Assignment::new()
        .with(c, county.clone())
        .with(w, wetland.clone());

    // Synthesis order: knowns first, then B before R before V (each row
    // may reference everything retrieved earlier).
    let order = [c, w, b, r, v];
    let normal = sys.normalize();
    let solved = solve_system(&normal, &order, &alg, &knowns)
        .expect("no unbound variables")
        .expect("the layout is satisfiable");

    println!("Synthesized layout:");
    for (name, var) in [("R", r), ("B", b), ("V", v)] {
        let region = solved.get(var).unwrap();
        println!(
            "  {name}: volume {:>8.1}, {} fragment(s), bbox {}",
            region.volume(),
            region.fragment_count(),
            region.bbox()
        );
    }

    // Verify against the ORIGINAL constraints (not just the rows).
    assert!(check_normal(&alg, &normal, &solved).unwrap());
    let reserve = solved.get(r).unwrap();
    let buffer = solved.get(b).unwrap();
    let visitor = solved.get(v).unwrap();
    assert!(wetland.subset_of(reserve));
    assert!(reserve.subset_of(&buffer.clone()) && !reserve.same_set(buffer));
    assert!(visitor.subset_of(buffer) && !visitor.intersects(reserve));
    println!("\nall constraints verified exactly ✓");

    // An unsatisfiable variant is detected, not mis-solved: wetland
    // outside the county.
    let bad_knowns = Assignment::new()
        .with(c, Region::from_box(AaBox::new([5.0, 5.0], [20.0, 20.0])))
        .with(w, wetland);
    assert!(solve_system(&normal, &order, &alg, &bad_knowns)
        .unwrap()
        .is_none());
    println!("unsatisfiable variant correctly rejected ✓");
}
