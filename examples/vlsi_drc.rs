//! VLSI design-rule checking (reference [15] of the paper): express DRC
//! patterns as Boolean constraint systems and let the optimizer turn
//! them into range-query scans.
//!
//! Two rules over a generated layout:
//!   1. *Boundary crossing*: a wire that overlaps a cell without being
//!      contained in it.
//!   2. *Power-rail shorts*: a wire touching the power rail AND some
//!      cell body (rail-to-cell short through the wire).
//!
//! ```sh
//! cargo run -p scq-integration --example vlsi_drc
//! ```

use scq_engine::workload::vlsi_workload;
use scq_integration::prelude::*;

fn main() {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    let w = vlsi_workload(&mut db, 4242, 8, 8, 250);
    println!(
        "layout: {} cells, {} wires",
        db.collection_len(w.cells),
        db.collection_len(w.wires)
    );

    // Rule 1: boundary crossings.
    let rule1 = parse_system("W & L != 0; W !<= L").expect("parses");
    let q1 = Query::new(rule1)
        .from_collection("W", w.wires)
        .from_collection("L", w.cells)
        .with_order(&["L", "W"]);
    let r1 = bbox_execute(&db, &q1, IndexKind::GridFile).expect("valid");
    let n1 = naive_execute(&db, &q1).expect("valid");
    assert_eq!(r1.stats.solutions, n1.stats.solutions);
    println!(
        "rule 1 (boundary crossings): {} violations  [optimized {} vs naive {} partials]",
        r1.stats.solutions, r1.stats.partial_tuples, n1.stats.partial_tuples
    );

    // Rule 2: power-rail shorts.
    let rule2 = parse_system("W & P != 0; W & L != 0; L & P = 0").expect("parses");
    let q2 = Query::new(rule2)
        .known("P", w.power_rail.clone())
        .from_collection("W", w.wires)
        .from_collection("L", w.cells)
        .with_order(&["W", "L"]);
    let r2 = bbox_execute(&db, &q2, IndexKind::GridFile).expect("valid");
    let n2 = naive_execute(&db, &q2).expect("valid");
    assert_eq!(r2.stats.solutions, n2.stats.solutions);
    println!(
        "rule 2 (power-rail shorts):  {} violations  [optimized {} vs naive {} partials]",
        r2.stats.solutions, r2.stats.partial_tuples, n2.stats.partial_tuples
    );

    // Show the compiled plan for rule 2: the wire retrieval is a single
    // overlap range query against ⌈P⌉, the cell retrieval combines two
    // box constraints — exactly the paper's Section 4 output.
    let order = q2.retrieval_order(&db);
    let tri = triangularize(&q2.system.normalize(), &order);
    let plan: BboxPlan<2> = BboxPlan::compile(&tri);
    println!("\ncompiled plan for rule 2:");
    for row in &plan.rows {
        println!(
            "  {:<2} lower={} upper={} overlaps={}",
            q2.system.table.display(row.var),
            row.lower,
            row.upper,
            row.overlaps.len()
        );
    }
}
