//! Sharded database + query server, end to end.
//!
//! Builds a z-order range-partitioned database, shows router pruning
//! and cross-shard execution, round-trips a per-shard snapshot, then
//! boots the `scq-serve` front end in-process and runs a scripted
//! client session against it over real TCP.
//!
//! ```sh
//! cargo run --release --example sharded_service
//! ```

use scq_engine::ExecOptions;
use scq_integration::prelude::*;
use scq_shard::{execute, execute_fanout};

fn main() {
    // ── build: one logical database, four shards ────────────────────
    let universe = AaBox::new([0.0, 0.0], [1000.0, 1000.0]);
    let mut db = ShardedDatabase::new(universe, 4);
    let towns = db.collection("towns");
    let roads = db.collection("roads");
    for i in 0..60 {
        let t = (i * 37 % 53) as f64 * 17.0;
        db.insert(
            towns,
            Region::from_box(AaBox::new([t, 900.0 - t], [t + 14.0, 914.0 - t])),
        );
        db.insert(
            roads,
            Region::from_box(AaBox::new([t, 898.0 - t], [t + 120.0, 906.0 - t])),
        );
    }
    println!(
        "4 shards, {} towns, {} roads",
        db.live_len(towns),
        db.live_len(roads)
    );
    for s in 0..db.n_shards() {
        println!(
            "  shard {s}: {} towns, {} roads (z-range {:?})",
            db.shard(s).live_len(towns),
            db.shard(s).live_len(roads),
            db.router().ranges()[s]
        );
    }

    // ── query: the router prunes shards per retrieval level ─────────
    let sys = parse_system("T <= W; R & T != 0").unwrap();
    let district = Query::new(sys)
        .known(
            "W",
            Region::from_box(AaBox::new([0.0, 600.0], [400.0, 1000.0])),
        )
        .from_collection("T", towns)
        .from_collection("R", roads);
    let r = execute(&db, &district, IndexKind::RTree, ExecOptions::all()).unwrap();
    println!(
        "\ndistrict query: {} solutions, {} shard probes pruned by the router",
        r.stats.solutions, r.stats.shards_pruned
    );
    assert!(r.stats.shards_pruned > 0, "corner district must prune");
    let fanned = execute_fanout(&db, &district, IndexKind::RTree, ExecOptions::all()).unwrap();
    assert_eq!(fanned.stats.solutions, r.stats.solutions);
    println!(
        "fan-out across shards agrees: {} solutions",
        fanned.stats.solutions
    );

    // ── snapshot: manifest + one independent stream per shard ───────
    let dir = std::env::temp_dir().join(format!("scq_sharded_example_{}", std::process::id()));
    scq_shard::save_to_dir(&db, &dir).unwrap();
    let reloaded = scq_shard::load_from_dir(&dir).unwrap();
    reloaded.check().expect("reloaded database is consistent");
    let again = execute(&reloaded, &district, IndexKind::RTree, ExecOptions::all()).unwrap();
    assert_eq!(again.stats.solutions, r.stats.solutions);
    println!(
        "\nsnapshot round trip through {} streams preserved the answers",
        db.n_shards() + 1
    );
    std::fs::remove_dir_all(&dir).ok();

    // ── serve: the TCP front end, scripted session ──────────────────
    let handle = scq_serve::serve(&scq_serve::ServerConfig {
        addr: "127.0.0.1:0".into(),
        shards: 4,
        threads: 2,
        universe_size: 1000.0,
        ..Default::default()
    })
    .unwrap();
    println!("\nscq-serve listening on {}", handle.addr());
    let script: Vec<(String, String)> = [
        ("CREATE sites", "OK coll=0"),
        ("INSERT sites 40 40 60 60", "OK ref=0"),
        ("INSERT sites 800 800 850 850", "OK ref=1"),
        ("QUERY sites rtree within 0 0 100 100", "OK n=1"),
        (
            "SOLVE rtree all S=coll:sites,W=box:0:0:100:100 S <= W; S != 0",
            "OK n=1",
        ),
        ("STAT", "OK shards=4"),
        ("QUIT", "OK bye"),
    ]
    .into_iter()
    .map(|(c, r)| (c.to_string(), r.to_string()))
    .collect();
    let transcript = scq_serve::run_script(handle.addr(), &script).unwrap();
    for line in &transcript {
        println!("{line}");
    }
    handle.shutdown();
    println!("\nserver session OK — the same database now serves over TCP");
}
