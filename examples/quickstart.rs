//! Quickstart: the paper's §2 smuggler example, end to end.
//!
//! Reproduces the narrative of the paper: write the Figure 1 constraint
//! system in the text syntax, normalize it (Theorem 1), compute the
//! triangular solved form (Algorithm 1), approximate it with bounding
//! boxes (Algorithm 2), and run it against a small spatial database with
//! every executor.
//!
//! ```sh
//! cargo run -p scq-integration --example quickstart
//! ```

use scq_integration::prelude::*;

fn main() {
    // ── 1. The high-level query (Figure 1) ────────────────────────────
    let sys = parse_system(
        "A <= C              # the destination area lies in the country
         B <= C              # candidate states lie in the country
         R <= A | B | T      # the road stays in area ∪ state ∪ town
         R & A != 0          # the road reaches the area
         R & T != 0          # the road starts at the town
         T < C               # the border town is strictly inside C",
    )
    .expect("the constraint system parses");
    println!("Constraint system (Figure 1):\n{sys}\n");

    // ── 2. Theorem 1 normalization ────────────────────────────────────
    let normal = sys.normalize();
    println!(
        "Normal form (one equation, {} disequations):",
        normal.neqs.len()
    );
    println!("{}", normal.display(&sys.table));

    // ── 3. Algorithm 1: triangular solved form, order C,A,T,R,B ──────
    let order: Vec<Var> = ["C", "A", "T", "R", "B"]
        .iter()
        .map(|n| sys.table.get(n).unwrap())
        .collect();
    let tri = triangularize(&normal, &order);
    println!("Triangular solved form (§2):\n{}", tri.display(&sys.table));

    // ── 4. Algorithm 2: bounding-box plan ─────────────────────────────
    let plan: BboxPlan<2> = BboxPlan::compile(&tri);
    println!("Plan satisfiable: {}", plan.satisfiable);
    for row in &plan.rows {
        println!(
            "  retrieve {:<2} lower={} upper={} overlap-filters={}",
            sys.table.display(row.var),
            row.lower,
            row.upper,
            row.overlaps.len()
        );
    }
    println!();

    // ── 5. A tiny database and the query ──────────────────────────────
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    let w = scq_engine::workload::map_workload(
        &mut db,
        2024,
        &scq_engine::workload::MapParams {
            n_states: 6,
            n_towns: 20,
            n_roads: 50,
            useful_road_fraction: 0.1,
        },
    );
    println!(
        "Database: {} towns, {} roads, {} states",
        db.collection_len(w.towns),
        db.collection_len(w.roads),
        db.collection_len(w.states)
    );

    let q = Query::new(sys)
        .known("C", w.country.clone())
        .known("A", w.area.clone())
        .from_collection("T", w.towns)
        .from_collection("R", w.roads)
        .from_collection("B", w.states)
        .with_order(&["T", "R", "B"]);

    // ── 6. Execute with all three strategies ──────────────────────────
    let naive = naive_execute(&db, &q).expect("query is valid");
    let tri_exec = triangular_execute(&db, &q).expect("query is valid");
    let bbox = bbox_execute(&db, &q, IndexKind::RTree).expect("query is valid");

    println!("\nExecution comparison:");
    println!("  naive       : {}", naive.stats);
    println!("  triangular  : {}", tri_exec.stats);
    println!("  bbox+rtree  : {}", bbox.stats);

    assert_eq!(
        naive.stats.solutions, bbox.stats.solutions,
        "identical answers"
    );
    println!(
        "\n{} smuggling route(s) found; the optimized plan explored {:.1}% of the naive search tree.",
        bbox.stats.solutions,
        100.0 * bbox.stats.partial_tuples as f64 / naive.stats.partial_tuples.max(1) as f64
    );

    // Show one route.
    if let Some(sol) = bbox.solutions.first() {
        println!("Example route:");
        for (v, obj) in sol {
            let r = db.region(*obj);
            println!(
                "  {} := object {} of {:<7} bbox {}",
                q.system.table.display(*v),
                obj.index,
                db.collection_name(obj.collection),
                r.bbox()
            );
        }
    }
}
