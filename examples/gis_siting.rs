//! GIS facility siting: a multi-constraint site-selection query over a
//! generated map — the kind of geographic information system workload
//! the paper's introduction motivates (references [5, 8]).
//!
//! Task: place a distribution depot. Find a (parcel P, state B, road R)
//! such that the parcel lies inside the state, touches the road network,
//! avoids the flood zone entirely, and the road reaches the market area.
//!
//! ```sh
//! cargo run -p scq-integration --example gis_siting
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use scq_engine::workload::{clustered_boxes, map_workload, MapParams};
use scq_integration::prelude::*;

fn main() {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    let w = map_workload(
        &mut db,
        7,
        &MapParams {
            n_states: 8,
            n_towns: 25,
            n_roads: 80,
            useful_road_fraction: 0.15,
        },
    );

    // Parcels: clustered candidate lots across the country.
    let parcels = db.collection("parcels");
    let mut rng = StdRng::seed_from_u64(99);
    for r in clustered_boxes(
        &mut rng,
        12,
        25,
        &AaBox::new([120.0, 120.0], [880.0, 880.0]),
        40.0,
        9.0,
    ) {
        db.insert(parcels, r);
    }

    // Flood zone: a broad band along the south.
    let flood = Region::from_box(AaBox::new([100.0, 100.0], [900.0, 180.0]));

    let sys = parse_system(
        "P <= B              # parcel inside one state
         P & F = 0           # parcel outside the flood zone
         P & R != 0          # parcel touches a road
         R & M != 0          # that road reaches the market area
         P != 0",
    )
    .expect("parses");

    let q = Query::new(sys)
        .known("F", flood)
        .known("M", w.area.clone())
        .from_collection("P", parcels)
        .from_collection("B", w.states)
        .from_collection("R", w.roads)
        .with_order(&["R", "P", "B"]);

    println!(
        "Siting over {} parcels × {} roads × {} states",
        db.collection_len(parcels),
        db.collection_len(w.roads),
        db.collection_len(w.states)
    );

    let naive = naive_execute(&db, &q).expect("valid");
    let opt = bbox_execute(&db, &q, IndexKind::RTree).expect("valid");
    assert_eq!(naive.stats.solutions, opt.stats.solutions);

    println!("naive : {}", naive.stats);
    println!("bbox  : {}", opt.stats);
    println!(
        "speed proxy: {}x fewer partial tuples",
        naive.stats.partial_tuples / opt.stats.partial_tuples.max(1)
    );
    println!("{} feasible sites", opt.stats.solutions);

    for sol in opt.solutions.iter().take(3) {
        let parts: Vec<String> = sol
            .iter()
            .map(|(v, o)| {
                format!(
                    "{}=#{}@{}",
                    q.system.table.display(*v),
                    o.index,
                    db.collection_name(o.collection)
                )
            })
            .collect();
        println!("  site: {}", parts.join("  "));
    }
}
