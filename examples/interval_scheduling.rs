//! One-dimensional spatial data: time intervals. The paper's framework
//! is dimension-generic — ranges over `X¹` are exactly the interval
//! queries of Figure 3, and the corner transform maps an interval to a
//! `(start, end)` point, the classic interval-index trick.
//!
//! Scenario: meeting-room scheduling. Find (meeting M, slot S) pairs
//! where the meeting fits inside a free slot and overlaps the requested
//! window; then check the "no double booking" integrity rule.
//!
//! ```sh
//! cargo run -p scq-integration --example interval_scheduling
//! ```

use scq_engine::integrity::{check_integrity, IntegrityRule};
use scq_integration::prelude::*;

fn interval(a: f64, b: f64) -> Region<1> {
    Region::from_box(AaBox::new([a], [b]))
}

fn main() {
    let mut db: SpatialDatabase<1> = SpatialDatabase::new(AaBox::new([0.0], [24.0 * 60.0]));
    let meetings = db.collection("meetings");
    let slots = db.collection("slots");

    // Requested meetings (durations in minutes from midnight).
    let requests = [
        (540.0, 600.0), // 9:00–10:00
        (555.0, 585.0), // 9:15– 9:45
        (600.0, 720.0), // 10:00–12:00
        (780.0, 840.0), // 13:00–14:00
        (850.0, 880.0), // 14:10–14:40
    ];
    for (a, b) in requests {
        db.insert(meetings, interval(a, b));
    }
    // Free slots of the room.
    for (a, b) in [(530.0, 650.0), (760.0, 900.0), (1000.0, 1100.0)] {
        db.insert(slots, interval(a, b));
    }

    // Query: meetings fitting a slot and touching the morning window.
    let sys = parse_system("M <= S; M & W != 0").expect("parses");
    let q = Query::new(sys)
        .known("W", interval(480.0, 720.0)) // 8:00–12:00
        .from_collection("M", meetings)
        .from_collection("S", slots);

    let result = bbox_execute(&db, &q, IndexKind::GridFile).expect("valid");
    println!("morning meetings with a fitting slot:");
    for sol in &result.solutions {
        let names: Vec<String> = sol
            .iter()
            .map(|(v, o)| format!("{}={}", q.system.table.display(*v), db.region(*o).bbox()))
            .collect();
        println!("  {}", names.join("  "));
    }
    let naive = naive_execute(&db, &q).expect("valid");
    assert_eq!(naive.stats.solutions, result.stats.solutions);

    // Integrity: no two distinct meetings may overlap. The violation
    // pattern binds the meeting collection twice; identical objects are
    // excluded by requiring the pair to differ as sets.
    let pattern_sys = parse_system("A & B != 0; A != B").expect("parses");
    let pattern = Query::new(pattern_sys)
        .from_collection("A", meetings)
        .from_collection("B", meetings);
    let rule = IntegrityRule {
        name: "no-double-booking".into(),
        pattern,
    };
    let violations = check_integrity(&db, &[rule], IndexKind::RTree, 10).expect("valid");
    println!("\ndouble bookings: {}", violations.len() / 2); // each pair reported twice
    for v in violations.iter().take(2) {
        let mut it = v.tuple.values();
        let a = db.region(*it.next().unwrap());
        let b = db.region(*it.next().unwrap());
        println!("  {} clashes with {}", a.bbox(), b.bbox());
    }
    assert!(!violations.is_empty(), "9:00–10:00 overlaps 9:15–9:45");
}
