//! Offline stand-in for the `criterion` crate.
//!
//! Implements the configuration, group, and bencher surface the `b1`–`b10`
//! benches use, backed by a straightforward wall-clock sampler: per
//! benchmark it warms up for `warm_up_time`, then takes `sample_size`
//! samples, each iterating the closure often enough to fill its share of
//! `measurement_time`, and reports the median / min / max per-iteration
//! time. No statistics beyond that — the workspace's benches compare
//! executors against each other on the same machine, where medians are
//! plenty.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (same contract as
/// `std::hint::black_box`, re-exported for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark configuration and sink for results.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies command-line overrides. This stand-in accepts and ignores
    /// the harness arguments cargo passes (`--bench`, filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name}");
        BenchmarkGroup {
            c: self,
            group: name.to_string(),
        }
    }

    /// Prints the closing summary (kept for API compatibility; results
    /// are printed as they are produced).
    pub fn final_summary(&mut self) {}
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a name and a displayed parameter.
    pub fn new<P: Display>(name: &str, param: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// A group of related benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a closure parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.c.warm_up, self.c.measurement, self.c.sample_size);
        f(&mut b, input);
        b.report(&self.group, &id.id);
        self
    }

    /// Benchmarks a closure with no parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.c.warm_up, self.c.measurement, self.c.sample_size);
        f(&mut b);
        b.report(&self.group, &id.id);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs and times one benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration, sample_size: usize) -> Self {
        Bencher {
            warm_up,
            measurement,
            sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Measures the closure: warm-up, then `sample_size` samples of as
    /// many iterations as fit the per-sample time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            black_box(f());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (per_sample / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples_ns.push(dt * 1e9 / iters_per_sample as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{group}/{id:<28} (no samples)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        let lo = s[0];
        let hi = s[s.len() - 1];
        println!(
            "{group}/{id:<28} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(Duration::from_millis(1), Duration::from_millis(5), 4);
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.samples_ns.len(), 4);
        assert!(b.samples_ns.iter().all(|&ns| ns >= 0.0));
        assert!(count > 4);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4))
            .sample_size(2);
        let mut group = c.benchmark_group("t");
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(ran);
    }
}
