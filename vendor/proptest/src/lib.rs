//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy / macro surface the workspace's property
//! tests use — `proptest!`, `prop_oneof!`, `prop_assert*!`, range and
//! tuple strategies, `Just`, `prop_map`, `prop_recursive`,
//! `collection::vec`, `BoxedStrategy` — backed by plain deterministic
//! sampling. Two deliberate simplifications versus the real crate:
//!
//! * **No shrinking.** A failing case reports the case index and seed;
//!   re-running is deterministic, so the failure reproduces exactly.
//! * **No persistence.** Seeds derive from the test's module path and
//!   the case index, so every run explores the same inputs.

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, RngExt, SeedableRng};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-case random source.
    pub struct TestRng {
        rng: StdRng,
    }

    impl TestRng {
        /// RNG for one case of one test, seeded from the test's name and
        /// the case index.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
            }
        }

        /// Uniform sample from a half-open range.
        pub fn sample<T: rand::SampleUniform>(&mut self, lo: T, hi: T) -> T {
            T::sample_range(&mut self.rng, lo, hi)
        }

        /// A raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }

        /// A uniform bool.
        pub fn random_bool(&mut self) -> bool {
            self.rng.random_bool(0.5)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use std::ops::Range;
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { s: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }

        /// Builds a recursive strategy: `self` is the leaf case and `f`
        /// wraps an inner strategy into the recursive cases. `depth`
        /// bounds the recursion; the size/branch hints of the real crate
        /// are accepted and ignored (sizes stay bounded because the
        /// recursion is unrolled `depth` times).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf: BoxedStrategy<Self::Value> = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let rec = f(cur).boxed();
                cur = Union {
                    arms: vec![(1, leaf.clone()), (2, rec)],
                }
                .boxed();
            }
            cur
        }
    }

    /// Object-safe core used behind [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V> {
        inner: Arc<dyn DynStrategy<V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.dyn_generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        s: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.s.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> Union<V> {
        /// A union of `(weight, strategy)` arms.
        ///
        /// # Panics
        /// If `arms` is empty or all weights are zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|&(w, _)| w as u64).sum();
            let mut pick = rng.sample(0u64, total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.start, self.end)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
}

/// Collection strategies.
pub mod collection {
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: half-open `[lo, hi)`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of `element` with length in
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.sample(self.len.lo, self.len.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy generating both booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool()
        }
    }
}

/// The `prop::` alias module mirrored from the real crate's prelude.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// One-stop imports for property tests.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                // Name the case in panics so failures are reproducible
                // (generation is deterministic in the case index); armed
                // before generation so strategy panics are named too.
                let __guard = $crate::CaseGuard::new(stringify!($name), __case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                $body
                __guard.disarm();
            }
        }
    )*};
}

/// Prints which deterministic case failed when a property panics.
#[doc(hidden)]
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    #[doc(hidden)]
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    #[doc(hidden)]
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest: property {} failed at deterministic case {} \
                 (re-run reproduces it)",
                self.name, self.case
            );
        }
    }
}

/// Asserts a condition inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vecs() -> BoxedStrategy<Vec<u32>> {
        prop::collection::vec(0u32..10, 1..5).boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -1.0f64..1.0, b in crate::bool::ANY) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_lengths(v in small_vecs()) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u32..5, 0u32..5), s in (0u32..3).prop_map(|x| x * 2)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(s % 2 == 0 && s <= 4);
        }
    }

    #[test]
    fn oneof_respects_arms() {
        let s = prop_oneof![2 => Just(1u8), 1 => Just(2u8)];
        let mut rng = crate::test_runner::TestRng::for_case("oneof", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || v == 2);
            seen[v as usize] = true;
        }
        assert!(seen[1] && seen[2], "both arms reachable");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => (*n < u32::MAX) as usize,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u32..10).prop_map(Tree::Leaf).boxed();
        let strat = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::for_case("rec", 1);
        let mut max_depth = 0;
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            max_depth = max_depth.max(depth(&t));
        }
        assert!(max_depth > 1, "recursion actually taken");
        assert!(max_depth <= 5, "depth bounded, got {max_depth}");
    }

    #[test]
    fn generation_is_deterministic() {
        let s = small_vecs();
        let mut a = crate::test_runner::TestRng::for_case("det", 3);
        let mut b = crate::test_runner::TestRng::for_case("det", 3);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
