//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small, deterministic subset of the `rand` API its code actually
//! uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and
//! the [`RngExt`] sampling methods `random_range` / `random_bool`.
//!
//! Determinism is the only contract the workspace relies on (every
//! workload generator is seeded and the tests assert reproducibility);
//! statistical quality beyond "not visibly patterned" is a non-goal.
//! The generator is SplitMix64, which passes BigCrush and is more than
//! adequate for synthetic geometry.

/// A source of random 64-bit words.
pub trait Rng {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// A sample from `[lo, hi)` given a raw 64-bit word source.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is ≤ span/2⁶⁴, irrelevant for workload
                // generation; avoiding it would need rejection loops.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Convenience sampling methods, mirroring the value-distribution part
/// of `rand::Rng` (0.9 naming).
pub trait RngExt: Rng {
    /// Uniform sample from a half-open range.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(-2.5f64..9.25);
            assert!((-2.5..9.25).contains(&f));
            let u = rng.random_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&heads), "got {heads}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
