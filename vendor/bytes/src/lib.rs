//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the buffer API the snapshot codec uses: an
//! append-only [`BytesMut`] writer with little-endian put methods, a
//! frozen immutable [`Bytes`] view, and a [`Buf`] reader implemented for
//! byte slices with little-endian get methods. No shared-ownership
//! tricks — `Bytes` is a plain `Vec<u8>` behind `Deref<Target = [u8]>`.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Write access to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte buffer, advancing an internal cursor.
///
/// # Panics
/// The get methods panic when fewer bytes remain than requested, exactly
/// like the real crate; callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::new();
        w.put_slice(b"hdr");
        w.put_u8(9);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f64_le(-2.5);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), frozen.len());
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(r.get_u8(), 9);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b: Bytes = vec![1, 2, 3].into();
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
