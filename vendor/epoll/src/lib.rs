//! Offline stand-in for the `epoll` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the small readiness-notification subset its event loops
//! actually use: an [`Epoll`] instance with add/modify/delete/wait over
//! raw file descriptors, plus a self-[`WakePipe`] so threads outside
//! the loop can interrupt a blocking wait. The bindings go straight to
//! the glibc symbols (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `pipe2`) that every Linux target this workspace supports links
//! anyway through `std` — no registry dependency, no feature flags.
//!
//! Level-triggered only. Edge-triggered mode, `epoll_pwait`, and
//! timerfd integration are non-goals: the shard and front-end servers
//! drain their buffers fully on every readiness signal, which is
//! exactly the discipline level-triggering rewards.

use std::io;
use std::os::unix::io::RawFd;

// ── raw glibc surface ───────────────────────────────────────────────────

/// Readiness: the fd has bytes to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd can accept more written bytes.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported, need not be requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up on the fd (always reported, need not be requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half; reading will hit EOF.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;
const EINTR: i32 = 4;

/// The kernel's `struct epoll_event`: an interest/readiness mask plus
/// the caller's 64-bit token. Packed on x86-64, where glibc declares it
/// `__attribute__((packed))` — getting this wrong corrupts the token of
/// every second event in a `wait` batch.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct Event {
    /// Interest mask on registration; readiness mask on return.
    pub events: u32,
    /// Caller-chosen token identifying the fd (not the fd itself).
    pub token: u64,
}

impl Event {
    /// An event with the given interest mask and token.
    pub fn new(events: u32, token: u64) -> Self {
        Event { events, token }
    }

    /// The readiness mask (reads through the packed field safely).
    pub fn events(&self) -> u32 {
        let e = *self;
        e.events
    }

    /// The registration token (reads through the packed field safely).
    pub fn token(&self) -> u64 {
        let e = *self;
        e.token
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn last_errno() -> i32 {
    io::Error::last_os_error().raw_os_error().unwrap_or(0)
}

// ── safe wrappers ───────────────────────────────────────────────────────

/// An epoll instance: registered fds with interest masks, and a `wait`
/// that blocks until at least one is ready (or a timeout passes).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<Event>) -> io::Result<()> {
        let mut ev = event.unwrap_or(Event {
            events: 0,
            token: 0,
        });
        let ptr = if event.is_some() {
            &mut ev as *mut Event
        } else {
            std::ptr::null_mut()
        };
        if unsafe { epoll_ctl(self.fd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with an interest mask and caller token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some(Event::new(events, token)))
    }

    /// Replaces the interest mask (and token) of a registered fd.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some(Event::new(events, token)))
    }

    /// Deregisters a fd. Deregistering an already-closed or never-added
    /// fd is an error from the kernel, surfaced as such.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until readiness or `timeout_ms` (−1 = forever), filling
    /// `out` and returning how many entries are valid. `EINTR` is
    /// treated as a zero-event wakeup, not an error — callers loop
    /// anyway.
    pub fn wait(&self, timeout_ms: i32, out: &mut [Event]) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                out.as_mut_ptr(),
                out.len().min(i32::MAX as usize) as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            if last_errno() == EINTR {
                return Ok(0);
            }
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking self-pipe: any thread calls [`WakePipe::wake`] to make
/// the read end readable, interrupting an [`Epoll::wait`] that has the
/// read end registered. The loop thread calls [`WakePipe::drain`] after
/// waking so the next wait blocks again.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Creates the pipe pair, both ends nonblocking and close-on-exec.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to register with [`Epoll::add`] under [`EPOLLIN`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Makes the read end readable. A full pipe (`EAGAIN`) already
    /// guarantees a pending wakeup, so the result is ignored: either
    /// the byte landed or a wakeup is already queued.
    pub fn wake(&self) {
        let byte = [1u8];
        let _ = unsafe { write(self.write_fd, byte.as_ptr(), 1) };
    }

    /// Empties the pipe so the next `wait` blocks until the next wake.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// `wake` is called from arbitrary threads while the loop thread reads.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wake_pipe_interrupts_a_blocking_wait_and_drains() {
        let ep = Epoll::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN, 1).unwrap();
        // Nothing pending: a short wait times out empty.
        let mut out = [Event::new(0, 0); 8];
        assert_eq!(ep.wait(10, &mut out).unwrap(), 0);
        pipe.wake();
        pipe.wake(); // coalesces, never blocks
        let n = ep.wait(1000, &mut out).unwrap();
        assert_eq!(n, 1);
        assert_eq!(out[0].token(), 1);
        assert!(out[0].events() & EPOLLIN != 0);
        pipe.drain();
        assert_eq!(ep.wait(10, &mut out).unwrap(), 0, "drained pipe is quiet");
    }

    #[test]
    fn socket_readiness_reports_the_registered_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();
        let mut out = [Event::new(0, 0); 8];
        assert_eq!(ep.wait(10, &mut out).unwrap(), 0, "idle socket is quiet");

        client.write_all(b"ping").unwrap();
        let n = ep.wait(1000, &mut out).unwrap();
        assert_eq!(n, 1);
        assert_eq!(out[0].token(), 42);
        assert!(out[0].events() & EPOLLIN != 0);

        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);
        // Peer hang-up surfaces as readiness too (EOF read).
        drop(client);
        let n = ep.wait(1000, &mut out).unwrap();
        assert_eq!(n, 1);
        assert!(out[0].events() & (EPOLLRDHUP | EPOLLIN | EPOLLHUP) != 0);

        // modify and delete round-trip.
        ep.modify(server.as_raw_fd(), EPOLLIN | EPOLLOUT, 43)
            .unwrap();
        ep.delete(server.as_raw_fd()).unwrap();
        assert!(
            ep.delete(server.as_raw_fd()).is_err(),
            "double delete is loud"
        );
    }
}
