//! Guttman's R-tree (reference \[6\] of the paper) with linear and
//! quadratic node-split heuristics.
//!
//! The tree stores `(bounding box, id)` pairs in leaves; internal nodes
//! keep the minimal bounding rectangle (MBR) of each child. Insertion
//! follows Guttman's ChooseLeaf (least enlargement, ties by smaller
//! volume), splits overflowing nodes with the configured heuristic, and
//! propagates MBR adjustments to the root.
//!
//! Search prunes subtrees through the **corner-space** interpretation of
//! the node MBR: every entry box inside a subtree has both corners inside
//! the subtree's MBR, which yields per-dimension bounds on the entry's
//! `(lo, hi)` corner coordinates that can be intersected with the
//! [`CornerQuery`] intervals.

use scq_bbox::{Bbox, CornerQuery};

use crate::traits::SpatialIndex;

/// Node-split heuristic (Guttman 1984, §3.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SplitStrategy {
    /// Linear-cost seeds: greatest normalized separation per dimension.
    Linear,
    /// Quadratic-cost seeds: pair wasting the most dead space.
    Quadratic,
}

#[derive(Clone, Debug)]
enum Node<const K: usize> {
    Leaf(Vec<(Bbox<K>, u64)>),
    Internal(Vec<(Bbox<K>, Node<K>)>),
}

/// An R-tree over `K`-dimensional bounding boxes.
#[derive(Clone, Debug)]
pub struct RTree<const K: usize> {
    root: Node<K>,
    max_entries: usize,
    min_entries: usize,
    strategy: SplitStrategy,
    len: usize,
    /// Ids inserted with empty boxes; never matched by queries, kept as
    /// ids so `remove(id, Bbox::Empty)` only removes entries that were
    /// actually inserted.
    empty: Vec<u64>,
}

impl<const K: usize> Default for RTree<K> {
    fn default() -> Self {
        Self::new(SplitStrategy::Quadratic)
    }
}

impl<const K: usize> RTree<K> {
    /// Creates an empty tree with the default node capacity (8).
    pub fn new(strategy: SplitStrategy) -> Self {
        Self::with_capacity(strategy, 8)
    }

    /// Creates an empty tree with the given maximum node fan-out
    /// (minimum fill is 40% of it, per Guttman's recommendation).
    ///
    /// # Panics
    /// If `max_entries < 4`.
    pub fn with_capacity(strategy: SplitStrategy, max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R-tree fan-out must be at least 4");
        RTree {
            root: Node::Leaf(Vec::new()),
            max_entries,
            min_entries: (max_entries * 2 / 5).max(1),
            strategy,
            len: 0,
            empty: Vec::new(),
        }
    }

    /// Builds a tree from items.
    pub fn from_items<I: IntoIterator<Item = (u64, Bbox<K>)>>(
        strategy: SplitStrategy,
        items: I,
    ) -> Self {
        let mut t = Self::new(strategy);
        for (id, b) in items {
            t.insert(id, b);
        }
        t
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        fn depth<const K: usize>(n: &Node<K>) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Internal(children) => {
                    1 + children.first().map(|(_, c)| depth(c)).unwrap_or(0)
                }
            }
        }
        depth(&self.root)
    }

    /// Validates the structural invariants; test support.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        fn go<const K: usize>(
            n: &Node<K>,
            max: usize,
            min: usize,
            is_root: bool,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> Bbox<K> {
            match n {
                Node::Leaf(entries) => {
                    assert!(entries.len() <= max, "leaf overflow");
                    if !is_root {
                        assert!(entries.len() >= min, "leaf underflow");
                    }
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "leaves at unequal depth"),
                    }
                    Bbox::join_all(entries.iter().map(|(b, _)| *b))
                }
                Node::Internal(children) => {
                    assert!(!children.is_empty());
                    assert!(children.len() <= max, "internal overflow");
                    if !is_root {
                        assert!(children.len() >= min, "internal underflow");
                    }
                    let mut whole = Bbox::Empty;
                    for (mbr, child) in children {
                        let actual = go(child, max, min, false, depth + 1, leaf_depth);
                        assert_eq!(*mbr, actual, "stale child MBR");
                        whole = whole.join(mbr);
                    }
                    whole
                }
            }
        }
        let mut leaf_depth = None;
        go(
            &self.root,
            self.max_entries,
            self.min_entries,
            true,
            0,
            &mut leaf_depth,
        );
    }

    /// Like [`RTree::check_invariants`] but without the minimum-fill
    /// requirement: STR bulk loading legitimately leaves one underfull
    /// group per level.
    #[doc(hidden)]
    pub fn check_invariants_packed(&self) {
        fn go<const K: usize>(
            n: &Node<K>,
            max: usize,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> Bbox<K> {
            match n {
                Node::Leaf(entries) => {
                    assert!(entries.len() <= max, "leaf overflow");
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "leaves at unequal depth"),
                    }
                    Bbox::join_all(entries.iter().map(|(b, _)| *b))
                }
                Node::Internal(children) => {
                    assert!(!children.is_empty());
                    assert!(children.len() <= max, "internal overflow");
                    let mut whole = Bbox::Empty;
                    for (mbr, child) in children {
                        let actual = go(child, max, depth + 1, leaf_depth);
                        assert_eq!(*mbr, actual, "stale child MBR");
                        whole = whole.join(mbr);
                    }
                    whole
                }
            }
        }
        let mut leaf_depth = None;
        go(&self.root, self.max_entries, 0, &mut leaf_depth);
    }
}

/// Per-dimension corner-interval pruning: can a box with both corners
/// inside `mbr` satisfy `q`?
fn node_may_match<const K: usize>(q: &CornerQuery<K>, mbr: &Bbox<K>) -> bool {
    let (lo, hi) = match (mbr.lo(), mbr.hi()) {
        (Some(lo), Some(hi)) => (lo, hi),
        _ => return false,
    };
    for d in 0..K {
        // entry.lo[d] ∈ [lo[d], hi[d]] must meet [q.lo_min, q.lo_max]
        if q.lo_min[d] > hi[d] || q.lo_max[d] < lo[d] {
            return false;
        }
        // entry.hi[d] ∈ [lo[d], hi[d]] must meet [q.hi_min, q.hi_max]
        if q.hi_min[d] > hi[d] || q.hi_max[d] < lo[d] {
            return false;
        }
    }
    true
}

fn search<const K: usize>(node: &Node<K>, q: &CornerQuery<K>, out: &mut Vec<u64>) {
    match node {
        Node::Leaf(entries) => {
            out.extend(
                entries
                    .iter()
                    .filter(|(b, _)| q.matches(b))
                    .map(|&(_, id)| id),
            );
        }
        Node::Internal(children) => {
            for (mbr, child) in children {
                if node_may_match(q, mbr) {
                    search(child, q, out);
                }
            }
        }
    }
}

/// Two entry groups produced by a node split.
type SplitGroups<const K: usize, T> = (Vec<(Bbox<K>, T)>, Vec<(Bbox<K>, T)>);

/// Splits an overflowing entry list into two groups per the strategy.
fn split_entries<const K: usize, T>(
    mut entries: Vec<(Bbox<K>, T)>,
    min: usize,
    strategy: SplitStrategy,
) -> SplitGroups<K, T> {
    debug_assert!(entries.len() >= 2);
    let (s1, s2) = match strategy {
        SplitStrategy::Linear => linear_seeds(&entries),
        SplitStrategy::Quadratic => quadratic_seeds(&entries),
    };
    // Remove seeds (larger index first to keep positions valid).
    let (hi_idx, lo_idx) = if s1 > s2 { (s1, s2) } else { (s2, s1) };
    let seed_b = entries.swap_remove(hi_idx);
    let seed_a = entries.swap_remove(lo_idx);

    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = group_a[0].0;
    let mut mbr_b = group_b[0].0;

    while let Some(pos) = pick_next(&entries, &mbr_a, &mbr_b, strategy) {
        let remaining = entries.len();
        // Min-fill enforcement: if a group needs all remaining entries,
        // give them to it wholesale.
        if group_a.len() + remaining == min {
            for e in entries.drain(..) {
                mbr_a = mbr_a.join(&e.0);
                group_a.push(e);
            }
            break;
        }
        if group_b.len() + remaining == min {
            for e in entries.drain(..) {
                mbr_b = mbr_b.join(&e.0);
                group_b.push(e);
            }
            break;
        }
        let e = entries.swap_remove(pos);
        let ea = mbr_a.enlargement(&e.0);
        let eb = mbr_b.enlargement(&e.0);
        let to_a = match ea.partial_cmp(&eb).expect("finite volumes") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                if mbr_a.volume() != mbr_b.volume() {
                    mbr_a.volume() < mbr_b.volume()
                } else {
                    group_a.len() <= group_b.len()
                }
            }
        };
        if to_a {
            mbr_a = mbr_a.join(&e.0);
            group_a.push(e);
        } else {
            mbr_b = mbr_b.join(&e.0);
            group_b.push(e);
        }
    }
    (group_a, group_b)
}

fn pick_next<const K: usize, T>(
    entries: &[(Bbox<K>, T)],
    mbr_a: &Bbox<K>,
    mbr_b: &Bbox<K>,
    strategy: SplitStrategy,
) -> Option<usize> {
    if entries.is_empty() {
        return None;
    }
    match strategy {
        SplitStrategy::Linear => Some(0),
        SplitStrategy::Quadratic => {
            // PickNext: entry with maximal |d_a − d_b| preference.
            let mut best = 0;
            let mut best_pref = f64::NEG_INFINITY;
            for (i, (b, _)) in entries.iter().enumerate() {
                let pref = (mbr_a.enlargement(b) - mbr_b.enlargement(b)).abs();
                if pref > best_pref {
                    best_pref = pref;
                    best = i;
                }
            }
            Some(best)
        }
    }
}

fn linear_seeds<const K: usize, T>(entries: &[(Bbox<K>, T)]) -> (usize, usize) {
    let mut best_dim_sep = f64::NEG_INFINITY;
    let mut best = (0, 1);
    for d in 0..K {
        let mut highest_lo = f64::NEG_INFINITY;
        let mut highest_lo_idx = 0;
        let mut lowest_hi = f64::INFINITY;
        let mut lowest_hi_idx = 0;
        let mut min_lo = f64::INFINITY;
        let mut max_hi = f64::NEG_INFINITY;
        for (i, (b, _)) in entries.iter().enumerate() {
            let (lo, hi) = match (b.lo(), b.hi()) {
                (Some(l), Some(h)) => (l[d], h[d]),
                _ => continue,
            };
            if lo > highest_lo {
                highest_lo = lo;
                highest_lo_idx = i;
            }
            if hi < lowest_hi {
                lowest_hi = hi;
                lowest_hi_idx = i;
            }
            min_lo = min_lo.min(lo);
            max_hi = max_hi.max(hi);
        }
        let width = (max_hi - min_lo).max(f64::MIN_POSITIVE);
        let sep = (highest_lo - lowest_hi) / width;
        if sep > best_dim_sep && highest_lo_idx != lowest_hi_idx {
            best_dim_sep = sep;
            best = (highest_lo_idx, lowest_hi_idx);
        }
    }
    best
}

fn quadratic_seeds<const K: usize, T>(entries: &[(Bbox<K>, T)]) -> (usize, usize) {
    let mut worst = f64::NEG_INFINITY;
    let mut best = (0, 1);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let dead = entries[i].0.join(&entries[j].0).volume()
                - entries[i].0.volume()
                - entries[j].0.volume();
            if dead > worst {
                worst = dead;
                best = (i, j);
            }
        }
    }
    best
}

/// Result of an insertion: the subtree's new MBR plus an optional split
/// sibling (with its MBR).
struct Inserted<const K: usize> {
    mbr: Bbox<K>,
    sibling: Option<(Bbox<K>, Node<K>)>,
}

fn insert_rec<const K: usize>(
    node: &mut Node<K>,
    bbox: Bbox<K>,
    id: u64,
    max: usize,
    min: usize,
    strategy: SplitStrategy,
) -> Inserted<K> {
    match node {
        Node::Leaf(entries) => {
            entries.push((bbox, id));
            if entries.len() > max {
                let (a, b) = split_entries(std::mem::take(entries), min, strategy);
                let mbr_a = Bbox::join_all(a.iter().map(|(b, _)| *b));
                let mbr_b = Bbox::join_all(b.iter().map(|(bb, _)| *bb));
                *entries = a;
                Inserted {
                    mbr: mbr_a,
                    sibling: Some((mbr_b, Node::Leaf(b))),
                }
            } else {
                Inserted {
                    mbr: Bbox::join_all(entries.iter().map(|(b, _)| *b)),
                    sibling: None,
                }
            }
        }
        Node::Internal(children) => {
            // ChooseSubtree: least enlargement, ties by smaller volume.
            let mut best = 0;
            let mut best_enl = f64::INFINITY;
            let mut best_vol = f64::INFINITY;
            for (i, (mbr, _)) in children.iter().enumerate() {
                let enl = mbr.enlargement(&bbox);
                let vol = mbr.volume();
                if enl < best_enl || (enl == best_enl && vol < best_vol) {
                    best = i;
                    best_enl = enl;
                    best_vol = vol;
                }
            }
            let res = insert_rec(&mut children[best].1, bbox, id, max, min, strategy);
            children[best].0 = res.mbr;
            if let Some(sib) = res.sibling {
                children.push(sib);
            }
            if children.len() > max {
                let (a, b) = split_entries(std::mem::take(children), min, strategy);
                let mbr_a = Bbox::join_all(a.iter().map(|(m, _)| *m));
                let mbr_b = Bbox::join_all(b.iter().map(|(m, _)| *m));
                *children = a;
                Inserted {
                    mbr: mbr_a,
                    sibling: Some((mbr_b, Node::Internal(b))),
                }
            } else {
                Inserted {
                    mbr: Bbox::join_all(children.iter().map(|(m, _)| *m)),
                    sibling: None,
                }
            }
        }
    }
}

impl<const K: usize> RTree<K> {
    /// [`SpatialIndex::remove`] body; see the trait impl below.
    ///
    /// Implements Guttman's Delete/CondenseTree: the leaf entry is
    /// removed, underfull nodes along the path are dissolved and their
    /// surviving entries reinserted (reinsertion-on-underflow), and a
    /// root with a single child is shortened.
    fn remove_entry(&mut self, id: u64, bbox: Bbox<K>) -> bool {
        if bbox.is_empty() {
            return match self.empty.iter().position(|&i| i == id) {
                Some(pos) => {
                    self.empty.swap_remove(pos);
                    self.len -= 1;
                    true
                }
                None => false,
            };
        }
        let mut orphan_leaves: Vec<Vec<(Bbox<K>, u64)>> = Vec::new();
        let removed = remove_rec(
            &mut self.root,
            id,
            &bbox,
            self.min_entries,
            &mut orphan_leaves,
        )
        .is_some();
        if !removed {
            return false;
        }
        self.len -= 1;
        // Shorten a root that lost all but one child.
        loop {
            let replace = match &mut self.root {
                Node::Internal(children) if children.len() == 1 => {
                    Some(children.pop().expect("len 1").1)
                }
                _ => None,
            };
            match replace {
                Some(child) => self.root = child,
                None => break,
            }
        }
        // Reinsert orphaned entries (Guttman reinserts at the level they
        // came from; entry-by-entry reinsertion preserves correctness and
        // keeps the code simple).
        for (b, i) in orphan_leaves.into_iter().flatten() {
            self.len -= 1; // insert() increments; net zero
            self.insert(i, b);
        }
        true
    }
}

/// Removes the entry from the subtree. `Some(new_mbr)` when found;
/// underfull descendants are dissolved into the orphan lists.
fn remove_rec<const K: usize>(
    node: &mut Node<K>,
    id: u64,
    bbox: &Bbox<K>,
    min: usize,
    orphan_leaves: &mut Vec<Vec<(Bbox<K>, u64)>>,
) -> Option<Bbox<K>> {
    match node {
        Node::Leaf(entries) => {
            let pos = entries.iter().position(|(b, i)| *i == id && b == bbox)?;
            entries.swap_remove(pos);
            Some(Bbox::join_all(entries.iter().map(|(b, _)| *b)))
        }
        Node::Internal(children) => {
            let mut found_at: Option<usize> = None;
            for (ci, (mbr, child)) in children.iter_mut().enumerate() {
                if !node_covers(mbr, bbox) {
                    continue;
                }
                if let Some(new_mbr) = remove_rec(child, id, bbox, min, orphan_leaves) {
                    *mbr = new_mbr;
                    found_at = Some(ci);
                    break;
                }
            }
            let ci = found_at?;
            // Dissolve an underfull child, orphaning its entries.
            let underfull = match &children[ci].1 {
                Node::Leaf(entries) => entries.len() < min,
                Node::Internal(gc) => gc.len() < min,
            };
            if underfull {
                let (_, child) = children.swap_remove(ci);
                collect_entries(child, orphan_leaves);
            }
            Some(Bbox::join_all(children.iter().map(|(m, _)| *m)))
        }
    }
}

/// Whether a node MBR could contain the target box.
fn node_covers<const K: usize>(mbr: &Bbox<K>, target: &Bbox<K>) -> bool {
    target.le(mbr)
}

/// Flattens a dissolved subtree into orphaned leaf entries.
fn collect_entries<const K: usize>(node: Node<K>, orphan_leaves: &mut Vec<Vec<(Bbox<K>, u64)>>) {
    match node {
        Node::Leaf(entries) => orphan_leaves.push(entries),
        Node::Internal(children) => {
            for (_, child) in children {
                collect_entries(child, orphan_leaves);
            }
        }
    }
}

impl<const K: usize> RTree<K> {
    /// Bulk-loads with Sort-Tile-Recursive packing (Leutenegger et al.),
    /// producing a tree with near-full nodes — better query performance
    /// than repeated insertion for static data.
    pub fn bulk_load(
        strategy: SplitStrategy,
        max_entries: usize,
        items: Vec<(u64, Bbox<K>)>,
    ) -> Self {
        let mut tree = Self::with_capacity(strategy, max_entries);
        let (empty, mut nonempty): (Vec<_>, Vec<_>) =
            items.into_iter().partition(|(_, b)| b.is_empty());
        tree.len = empty.len() + nonempty.len();
        tree.empty = empty.into_iter().map(|(id, _)| id).collect();
        if nonempty.is_empty() {
            return tree;
        }
        // STR: sort by center of dim 0, tile into vertical slabs, sort
        // each slab by dim 1, pack runs of max_entries... generalized to
        // K dims by recursive tiling.
        let leaf_entries: Vec<(Bbox<K>, u64)> = nonempty.drain(..).map(|(id, b)| (b, id)).collect();
        let leaves = str_pack(leaf_entries, max_entries, 0);
        let mut level: Vec<(Bbox<K>, Node<K>)> = leaves
            .into_iter()
            .map(|entries| {
                (
                    Bbox::join_all(entries.iter().map(|(b, _)| *b)),
                    Node::Leaf(entries),
                )
            })
            .collect();
        while level.len() > 1 {
            let groups = str_pack(level, max_entries, 0);
            level = groups
                .into_iter()
                .map(|children| {
                    (
                        Bbox::join_all(children.iter().map(|(m, _)| *m)),
                        Node::Internal(children),
                    )
                })
                .collect();
        }
        tree.root = level.pop().expect("nonempty").1;
        tree
    }
}

/// Recursively tiles entries into groups of at most `cap`, cycling
/// through the dimensions.
fn str_pack<const K: usize, T>(
    mut entries: Vec<(Bbox<K>, T)>,
    cap: usize,
    dim: usize,
) -> Vec<Vec<(Bbox<K>, T)>> {
    if entries.len() <= cap {
        return vec![entries];
    }
    entries.sort_by(|a, b| {
        let ca = a.0.center().map(|c| c[dim]).unwrap_or(0.0);
        let cb = b.0.center().map(|c| c[dim]).unwrap_or(0.0);
        ca.partial_cmp(&cb).expect("finite centers")
    });
    let n_groups = entries.len().div_ceil(cap);
    if dim + 1 == K {
        // final dimension: chop into runs
        let mut out = Vec::with_capacity(n_groups);
        while !entries.is_empty() {
            let take = entries.len().min(cap);
            out.push(entries.drain(..take).collect());
        }
        return out;
    }
    // slabs of roughly equal entry count, recurse on the next dimension
    let slab_count = (n_groups as f64).powf(1.0 / (K - dim) as f64).ceil() as usize;
    let slab_size = entries.len().div_ceil(slab_count.max(1));
    let mut out = Vec::new();
    while !entries.is_empty() {
        let take = entries.len().min(slab_size);
        let slab: Vec<(Bbox<K>, T)> = entries.drain(..take).collect();
        out.extend(str_pack(slab, cap, dim + 1));
    }
    out
}

impl<const K: usize> SpatialIndex<K> for RTree<K> {
    fn insert(&mut self, id: u64, bbox: Bbox<K>) {
        self.len += 1;
        if bbox.is_empty() {
            self.empty.push(id);
            return;
        }
        let res = insert_rec(
            &mut self.root,
            bbox,
            id,
            self.max_entries,
            self.min_entries,
            self.strategy,
        );
        if let Some((sib_mbr, sib)) = res.sibling {
            let old = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            self.root = Node::Internal(vec![(res.mbr, old), (sib_mbr, sib)]);
        }
    }

    fn remove(&mut self, id: u64, bbox: Bbox<K>) -> bool {
        self.remove_entry(id, bbox)
    }

    fn query_corner(&self, query: &CornerQuery<K>, out: &mut Vec<u64>) {
        if query.is_unsatisfiable() {
            return;
        }
        search(&self.root, query, out);
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanIndex;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_box(rng: &mut StdRng) -> Bbox<2> {
        let lo = [rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)];
        let w = [rng.random_range(0.1..10.0), rng.random_range(0.1..10.0)];
        Bbox::new(lo, [lo[0] + w[0], lo[1] + w[1]])
    }

    fn build(strategy: SplitStrategy, n: usize, seed: u64) -> (RTree<2>, ScanIndex<2>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RTree::with_capacity(strategy, 6);
        let mut scan = ScanIndex::new();
        for id in 0..n as u64 {
            let b = random_box(&mut rng);
            tree.insert(id, b);
            scan.insert(id, b);
        }
        (tree, scan)
    }

    fn assert_same_results(tree: &RTree<2>, scan: &ScanIndex<2>, q: &CornerQuery<2>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        tree.query_corner(q, &mut a);
        scan.query_corner(q, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_scan_on_random_queries() {
        for strategy in [SplitStrategy::Linear, SplitStrategy::Quadratic] {
            let (tree, scan) = build(strategy, 500, 1);
            tree.check_invariants();
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..50 {
                let probe = random_box(&mut rng);
                let q = CornerQuery::unconstrained().and_overlaps(&probe);
                assert_same_results(&tree, &scan, &q);
                let q = CornerQuery::unconstrained().and_contained_in(&probe);
                assert_same_results(&tree, &scan, &q);
                let q = CornerQuery::unconstrained().and_contains(&probe);
                assert_same_results(&tree, &scan, &q);
                // combined Figure-3 query
                let inner = Bbox::new(
                    [probe.lo().unwrap()[0] + 0.5, probe.lo().unwrap()[1] + 0.5],
                    [probe.lo().unwrap()[0] + 1.0, probe.lo().unwrap()[1] + 1.0],
                );
                let q = CornerQuery::unconstrained()
                    .and_contained_in(&probe)
                    .and_contains(&inner)
                    .and_overlaps(&probe);
                assert_same_results(&tree, &scan, &q);
            }
        }
    }

    #[test]
    fn grows_in_height_and_keeps_invariants() {
        let (tree, _) = build(SplitStrategy::Quadratic, 2000, 2);
        assert!(tree.height() >= 3, "2000 entries at fan-out 6 must be deep");
        tree.check_invariants();
        assert_eq!(tree.len(), 2000);
    }

    #[test]
    fn linear_split_keeps_invariants() {
        let (tree, _) = build(SplitStrategy::Linear, 1200, 3);
        tree.check_invariants();
    }

    #[test]
    fn empty_boxes_are_counted_but_unmatched() {
        let mut tree = RTree::<2>::default();
        tree.insert(1, Bbox::Empty);
        tree.insert(2, Bbox::new([0.0, 0.0], [1.0, 1.0]));
        assert_eq!(tree.len(), 2);
        let mut out = Vec::new();
        tree.query_corner(&CornerQuery::unconstrained(), &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn duplicate_boxes_are_all_returned() {
        let mut tree = RTree::<1>::with_capacity(SplitStrategy::Quadratic, 4);
        let b = Bbox::new([0.0], [1.0]);
        for id in 0..20 {
            tree.insert(id, b);
        }
        tree.check_invariants();
        let mut out = Vec::new();
        tree.query_overlaps(&b, &mut out);
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn unsatisfiable_query_returns_nothing() {
        let (tree, _) = build(SplitStrategy::Quadratic, 100, 4);
        let mut out = Vec::new();
        tree.query_corner(&CornerQuery::unsatisfiable(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_capacity_rejected() {
        RTree::<1>::with_capacity(SplitStrategy::Linear, 2);
    }

    #[test]
    fn remove_deletes_and_condenses() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut tree = RTree::<2>::with_capacity(SplitStrategy::Quadratic, 5);
        let mut items: Vec<(u64, Bbox<2>)> = Vec::new();
        for id in 0..400u64 {
            let b = random_box(&mut rng);
            tree.insert(id, b);
            items.push((id, b));
        }
        // remove a random half, checking invariants and queries as we go
        for step in 0..200 {
            let pos = (step * 7919) % items.len();
            let (id, b) = items.swap_remove(pos);
            assert!(tree.remove(id, b), "entry must be found");
            if step % 20 == 0 {
                tree.check_invariants();
            }
        }
        assert_eq!(tree.len(), items.len());
        tree.check_invariants();
        // queries match the remaining scan
        let scan = ScanIndex::from_items(items.iter().copied());
        let mut rng2 = StdRng::seed_from_u64(18);
        for _ in 0..20 {
            let probe = random_box(&mut rng2);
            let q = CornerQuery::unconstrained().and_overlaps(&probe);
            assert_same_results(&tree, &scan, &q);
        }
    }

    #[test]
    fn remove_missing_entry_is_noop() {
        let mut tree = RTree::<1>::default();
        tree.insert(1, Bbox::new([0.0], [1.0]));
        assert!(!tree.remove(2, Bbox::new([0.0], [1.0])));
        assert!(!tree.remove(1, Bbox::new([5.0], [6.0])));
        assert_eq!(tree.len(), 1);
        assert!(tree.remove(1, Bbox::new([0.0], [1.0])));
        assert_eq!(tree.len(), 0);
        assert!(!tree.remove(1, Bbox::new([0.0], [1.0])));
    }

    #[test]
    fn remove_empty_box_entries() {
        let mut tree = RTree::<1>::default();
        tree.insert(9, Bbox::Empty);
        assert_eq!(tree.len(), 1);
        assert!(
            !tree.remove(8, Bbox::Empty),
            "empty-box removal matches by id"
        );
        assert!(tree.remove(9, Bbox::Empty));
        assert_eq!(tree.len(), 0);
        assert!(!tree.remove(9, Bbox::Empty));
    }

    #[test]
    fn remove_to_empty_and_reuse() {
        let mut tree = RTree::<2>::with_capacity(SplitStrategy::Linear, 4);
        let mut rng = StdRng::seed_from_u64(23);
        let items: Vec<(u64, Bbox<2>)> = (0..60u64).map(|id| (id, random_box(&mut rng))).collect();
        for &(id, b) in &items {
            tree.insert(id, b);
        }
        for &(id, b) in &items {
            assert!(tree.remove(id, b));
        }
        assert_eq!(tree.len(), 0);
        tree.check_invariants();
        // tree remains usable
        tree.insert(100, Bbox::new([0.0, 0.0], [1.0, 1.0]));
        let mut out = Vec::new();
        tree.query_corner(&CornerQuery::unconstrained(), &mut out);
        assert_eq!(out, vec![100]);
    }

    #[test]
    fn bulk_load_matches_incremental_queries() {
        let mut rng = StdRng::seed_from_u64(31);
        let items: Vec<(u64, Bbox<2>)> =
            (0..3000u64).map(|id| (id, random_box(&mut rng))).collect();
        let packed = RTree::bulk_load(SplitStrategy::Quadratic, 8, items.clone());
        packed.check_invariants_packed();
        assert_eq!(packed.len(), items.len());
        let scan = ScanIndex::from_items(items.iter().copied());
        for _ in 0..30 {
            let probe = random_box(&mut rng);
            for q in [
                CornerQuery::unconstrained().and_overlaps(&probe),
                CornerQuery::unconstrained().and_contained_in(&probe),
            ] {
                let mut a = Vec::new();
                packed.query_corner(&q, &mut a);
                let mut b = Vec::new();
                scan.query_corner(&q, &mut b);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
        // STR packing yields a shallower tree than insertion
        let incremental = RTree::from_items(SplitStrategy::Quadratic, items);
        assert!(packed.height() <= incremental.height());
    }

    #[test]
    fn bulk_load_edge_cases() {
        let t = RTree::<2>::bulk_load(SplitStrategy::Linear, 4, Vec::new());
        assert_eq!(t.len(), 0);
        let t = RTree::bulk_load(
            SplitStrategy::Linear,
            4,
            vec![(1, Bbox::new([0.0], [1.0])), (2, Bbox::Empty)],
        );
        assert_eq!(t.len(), 2);
        let mut out = Vec::new();
        t.query_corner(&CornerQuery::unconstrained(), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn point_boxes_work() {
        // Degenerate boxes (points) exercise zero-volume split paths.
        let mut rng = StdRng::seed_from_u64(5);
        let mut tree = RTree::<2>::with_capacity(SplitStrategy::Quadratic, 5);
        let mut scan = ScanIndex::new();
        for id in 0..300u64 {
            let p = [rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)];
            let b = Bbox::point(p);
            tree.insert(id, b);
            scan.insert(id, b);
        }
        tree.check_invariants();
        let probe = Bbox::new([2.0, 2.0], [7.0, 7.0]);
        let q = CornerQuery::unconstrained().and_contained_in(&probe);
        assert_same_results(&tree, &scan, &q);
    }
}
