//! A grid file (Nievergelt, Hinterberger, Sevcik — reference \[9\] of the
//! paper) over **corner-transformed** boxes.
//!
//! Boxes in `Xᵏ` are stored as points in `X²ᵏ` (their `(lo, hi)` corner
//! pair), and the combined range query of Figure 3 — containment above,
//! containment below, overlap — is a single axis-aligned rectangle probe
//! in that corner space. The structure keeps one sorted *scale* of split
//! points per corner dimension and a directory mapping grid cells to
//! buckets; overflowing cells refine the scale along the most spread-out
//! dimension (the "adaptable, symmetric" part of the original design).
//!
//! Simplification relative to the 1984 paper: the directory is a hash map
//! from cell coordinates to buckets (no paging/disk layout), and scale
//! refinement re-keys the directory eagerly. Query semantics are exact.

use std::collections::HashMap;

use scq_bbox::{corner_point, Bbox, CornerQuery};

use crate::traits::SpatialIndex;

type CornerPt<const K: usize> = ([f64; K], [f64; K]);

/// Grid file over corner points in `X²ᵏ`.
#[derive(Clone, Debug)]
pub struct GridFile<const K: usize> {
    /// `2K` sorted scales of split points.
    scales: Vec<Vec<f64>>,
    /// Directory: cell coordinates (one index per corner dimension) to
    /// bucket contents.
    buckets: HashMap<Vec<u16>, Vec<(CornerPt<K>, u64)>>,
    capacity: usize,
    len: usize,
    /// Ids inserted with empty boxes (never matched by queries); kept
    /// as ids so `remove(id, Bbox::Empty)` only removes entries that
    /// were actually inserted.
    empty: Vec<u64>,
    /// Removals since the last [`GridFile::coarsen`] scan; the scan is
    /// amortized over `capacity` removals.
    removals_since_coarsen: usize,
}

fn coord<const K: usize>(p: &CornerPt<K>, d: usize) -> f64 {
    if d < K {
        p.0[d]
    } else {
        p.1[d - K]
    }
}

impl<const K: usize> Default for GridFile<K> {
    fn default() -> Self {
        Self::new(32)
    }
}

impl<const K: usize> GridFile<K> {
    /// Creates an empty grid file with the given bucket capacity.
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bucket capacity must be positive");
        GridFile {
            scales: vec![Vec::new(); 2 * K],
            buckets: HashMap::new(),
            capacity,
            len: 0,
            empty: Vec::new(),
            removals_since_coarsen: 0,
        }
    }

    /// Bulk-loads items, pre-computing quantile scales so that the
    /// expected bucket occupancy is near `capacity` without any
    /// refinement re-keying.
    pub fn bulk_load<I: IntoIterator<Item = (u64, Bbox<K>)>>(capacity: usize, items: I) -> Self {
        let items: Vec<(u64, Bbox<K>)> = items.into_iter().collect();
        let mut gf = Self::new(capacity);
        let pts: Vec<CornerPt<K>> = items.iter().filter_map(|(_, b)| corner_point(b)).collect();
        if !pts.is_empty() {
            let target_cells = (pts.len() / capacity).max(1);
            // intervals per dimension ≈ target_cells^(1/2K), at least 1
            let per_dim = (target_cells as f64).powf(1.0 / (2 * K) as f64).ceil() as usize;
            for d in 0..2 * K {
                let mut coords: Vec<f64> = pts.iter().map(|p| coord(p, d)).collect();
                coords.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let mut splits = Vec::new();
                for i in 1..per_dim {
                    let q = coords[i * coords.len() / per_dim];
                    if splits.last() != Some(&q) {
                        splits.push(q);
                    }
                }
                gf.scales[d] = splits;
            }
        }
        for (id, b) in items {
            gf.insert(id, b);
        }
        gf
    }

    /// Number of directory cells currently materialized.
    pub fn cell_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total number of scale split points across all corner dimensions
    /// (directory resolution; grows under refinement, shrinks under
    /// coarsening).
    pub fn scale_points(&self) -> usize {
        self.scales.iter().map(Vec::len).sum()
    }

    fn cell_index(&self, d: usize, c: f64) -> u16 {
        self.scales[d].partition_point(|&s| s <= c) as u16
    }

    fn key_of(&self, p: &CornerPt<K>) -> Vec<u16> {
        (0..2 * K)
            .map(|d| self.cell_index(d, coord(p, d)))
            .collect()
    }

    fn insert_point(&mut self, p: CornerPt<K>, id: u64) {
        let key = self.key_of(&p);
        let bucket = self.buckets.entry(key).or_default();
        bucket.push((p, id));
        if bucket.len() > self.capacity {
            self.refine(&p);
        }
    }

    /// Splits the cell containing `p` by adding a scale point along the
    /// dimension with the greatest value spread inside the bucket, then
    /// re-keys the directory. No-op when every coordinate in the bucket
    /// is identical in all dimensions (duplicates simply chain).
    fn refine(&mut self, p: &CornerPt<K>) {
        let key = self.key_of(p);
        let bucket = match self.buckets.get(&key) {
            Some(b) => b,
            None => return,
        };
        let mut best: Option<(usize, f64)> = None; // (dim, split value)
        let mut best_spread = 0.0;
        for d in 0..2 * K {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (pt, _) in bucket {
                let c = coord(pt, d);
                lo = lo.min(c);
                hi = hi.max(c);
            }
            let spread = hi - lo;
            if spread > best_spread {
                // median-ish split: midpoint keeps scales balanced even
                // under adversarial insertion order
                best_spread = spread;
                best = Some((d, lo / 2.0 + hi / 2.0));
            }
        }
        let (d, split) = match best {
            Some(x) => x,
            None => return, // all points identical: chained overflow
        };
        // Insert the split point, keeping the scale sorted and deduped.
        let pos = self.scales[d].partition_point(|&s| s < split);
        if self.scales[d].get(pos) == Some(&split) {
            return;
        }
        self.scales[d].insert(pos, split);
        self.rekey();
    }

    /// Re-keys the whole directory against the current scales
    /// (simplification; see module docs).
    fn rekey(&mut self) {
        let old = std::mem::take(&mut self.buckets);
        for (_, entries) in old {
            for (pt, id) in entries {
                let key = self.key_of(&pt);
                self.buckets.entry(key).or_default().push((pt, id));
            }
        }
    }

    /// The merge counterpart of [`GridFile::refine`]: while some split
    /// point separates two adjacent slabs whose combined occupancy fits
    /// in **half** a bucket, drop the lightest such split and re-key —
    /// deletions shrink the directory instead of leaving it fragmented.
    /// The half-capacity threshold gives hysteresis against refine
    /// (which triggers at full capacity), so alternating insert/remove
    /// near a boundary cannot thrash the directory.
    fn coarsen(&mut self) {
        loop {
            let mut lightest: Option<(usize, usize, usize)> = None; // (sum, dim, split)
            for d in 0..2 * K {
                if self.scales[d].is_empty() {
                    continue;
                }
                let mut slab_counts = vec![0usize; self.scales[d].len() + 1];
                for (key, bucket) in &self.buckets {
                    slab_counts[key[d] as usize] += bucket.len();
                }
                for j in 0..self.scales[d].len() {
                    let sum = slab_counts[j] + slab_counts[j + 1];
                    if lightest.is_none_or(|(best, _, _)| sum < best) {
                        lightest = Some((sum, d, j));
                    }
                }
            }
            match lightest {
                Some((sum, d, j)) if 2 * sum <= self.capacity => {
                    self.scales[d].remove(j);
                    self.rekey();
                }
                _ => return,
            }
        }
    }
}

impl<const K: usize> GridFile<K> {
    /// [`SpatialIndex::query_corner`] body over caller-provided scratch.
    fn query_with_scratch(
        &self,
        query: &CornerQuery<K>,
        ranges: &mut [(u16, u16)],
        key: &mut [u16],
        out: &mut Vec<u64>,
    ) {
        // Per corner dimension, the range of cell indices intersecting
        // the query interval.
        for (d, range) in ranges.iter_mut().enumerate() {
            let (qlo, qhi) = if d < K {
                (query.lo_min[d], query.lo_max[d])
            } else {
                (query.hi_min[d - K], query.hi_max[d - K])
            };
            if qlo > qhi {
                return;
            }
            let lo_cell = if qlo == f64::NEG_INFINITY {
                0
            } else {
                self.cell_index(d, qlo)
            };
            let hi_cell = if qhi == f64::INFINITY {
                self.scales[d].len() as u16
            } else {
                self.cell_index(d, qhi)
            };
            *range = (lo_cell, hi_cell);
        }
        // When the Cartesian product of cell ranges exceeds the number
        // of materialized buckets (common for weakly-constrained
        // queries), walking the directory is cheaper than enumerating
        // mostly-missing cells.
        let product: u128 = ranges
            .iter()
            .map(|&(lo, hi)| (hi - lo) as u128 + 1)
            .product();
        if product > self.buckets.len() as u128 {
            for (cell, bucket) in &self.buckets {
                if cell
                    .iter()
                    .zip(ranges.iter())
                    .all(|(&k, &(lo, hi))| lo <= k && k <= hi)
                {
                    for (pt, id) in bucket {
                        let b = Bbox::new(pt.0, pt.1);
                        if query.matches(&b) {
                            out.push(*id);
                        }
                    }
                }
            }
            return;
        }
        // Enumerate the Cartesian product of cell ranges.
        for (d, slot) in key.iter_mut().enumerate() {
            *slot = ranges[d].0;
        }
        'cells: loop {
            if let Some(bucket) = self.buckets.get(&key[..]) {
                for (pt, id) in bucket {
                    let b = Bbox::new(pt.0, pt.1);
                    if query.matches(&b) {
                        out.push(*id);
                    }
                }
            }
            // odometer increment
            for d in 0..2 * K {
                if key[d] < ranges[d].1 {
                    key[d] += 1;
                    for (dd, slot) in key.iter_mut().enumerate().take(d) {
                        *slot = ranges[dd].0;
                    }
                    continue 'cells;
                }
            }
            break;
        }
    }
}

impl<const K: usize> SpatialIndex<K> for GridFile<K> {
    fn insert(&mut self, id: u64, bbox: Bbox<K>) {
        self.len += 1;
        match corner_point(&bbox) {
            None => self.empty.push(id),
            Some(p) => self.insert_point(p, id),
        }
    }

    fn remove(&mut self, id: u64, bbox: Bbox<K>) -> bool {
        match corner_point(&bbox) {
            None => match self.empty.iter().position(|&i| i == id) {
                Some(pos) => {
                    self.empty.swap_remove(pos);
                    self.len -= 1;
                    true
                }
                None => false,
            },
            Some(p) => {
                let key = self.key_of(&p);
                let Some(bucket) = self.buckets.get_mut(&key) else {
                    return false;
                };
                let Some(pos) = bucket.iter().position(|&(pt, i)| i == id && pt == p) else {
                    return false;
                };
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    self.buckets.remove(&key);
                }
                self.len -= 1;
                // Amortize the merge scan: one full slab-count pass per
                // `capacity` removals keeps per-removal cost O(1)-ish
                // while still shrinking the directory under sustained
                // deletion.
                self.removals_since_coarsen += 1;
                if self.removals_since_coarsen >= self.capacity {
                    self.removals_since_coarsen = 0;
                    self.coarsen();
                }
                true
            }
        }
    }

    fn query_corner(&self, query: &CornerQuery<K>, out: &mut Vec<u64>) {
        if query.is_unsatisfiable() || self.buckets.is_empty() {
            return;
        }
        // Scratch for the cell ranges and the odometer key lives on the
        // stack — queries are the executors' inner loop and must not
        // allocate. `2K ≤ 16` covers every dimension the workspace
        // uses; higher dimensions fall back to one heap scratch.
        const MAX_SCRATCH: usize = 16;
        if 2 * K <= MAX_SCRATCH {
            let mut ranges = [(0u16, 0u16); MAX_SCRATCH];
            let mut key = [0u16; MAX_SCRATCH];
            self.query_with_scratch(query, &mut ranges[..2 * K], &mut key[..2 * K], out);
        } else {
            let mut ranges = vec![(0u16, 0u16); 2 * K];
            let mut key = vec![0u16; 2 * K];
            self.query_with_scratch(query, &mut ranges, &mut key, out);
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanIndex;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_box(rng: &mut StdRng) -> Bbox<2> {
        let lo = [rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)];
        let w = [rng.random_range(0.1..10.0), rng.random_range(0.1..10.0)];
        Bbox::new(lo, [lo[0] + w[0], lo[1] + w[1]])
    }

    fn assert_same(gf: &GridFile<2>, scan: &ScanIndex<2>, q: &CornerQuery<2>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        gf.query_corner(q, &mut a);
        scan.query_corner(q, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_scan_incremental() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut gf = GridFile::<2>::new(8);
        let mut scan = ScanIndex::new();
        for id in 0..800u64 {
            let b = random_box(&mut rng);
            gf.insert(id, b);
            scan.insert(id, b);
        }
        assert!(gf.cell_count() > 4, "refinement must have split cells");
        for _ in 0..40 {
            let probe = random_box(&mut rng);
            assert_same(
                &gf,
                &scan,
                &CornerQuery::unconstrained().and_overlaps(&probe),
            );
            assert_same(
                &gf,
                &scan,
                &CornerQuery::unconstrained().and_contained_in(&probe),
            );
            assert_same(
                &gf,
                &scan,
                &CornerQuery::unconstrained().and_contains(&probe),
            );
        }
    }

    #[test]
    fn agrees_with_scan_bulk() {
        let mut rng = StdRng::seed_from_u64(11);
        let items: Vec<(u64, Bbox<2>)> =
            (0..1500u64).map(|id| (id, random_box(&mut rng))).collect();
        let gf = GridFile::bulk_load(16, items.clone());
        let scan = ScanIndex::from_items(items);
        for _ in 0..40 {
            let probe = random_box(&mut rng);
            let q = CornerQuery::unconstrained()
                .and_contained_in(&Bbox::new(
                    [probe.lo().unwrap()[0] - 20.0, probe.lo().unwrap()[1] - 20.0],
                    [probe.hi().unwrap()[0] + 20.0, probe.hi().unwrap()[1] + 20.0],
                ))
                .and_overlaps(&probe);
            assert_same(&gf, &scan, &q);
        }
    }

    #[test]
    fn unbounded_query_returns_everything_nonempty() {
        let mut gf = GridFile::<1>::new(4);
        for id in 0..50u64 {
            gf.insert(id, Bbox::new([id as f64], [id as f64 + 1.0]));
        }
        gf.insert(50, Bbox::Empty);
        let mut out = Vec::new();
        gf.query_corner(&CornerQuery::unconstrained(), &mut out);
        assert_eq!(out.len(), 50);
        assert_eq!(gf.len(), 51);
    }

    #[test]
    fn duplicate_points_chain_without_refinement_loop() {
        let mut gf = GridFile::<1>::new(2);
        let b = Bbox::new([1.0], [2.0]);
        for id in 0..20u64 {
            gf.insert(id, b); // identical corner points cannot be split
        }
        let mut out = Vec::new();
        gf.query_overlaps(&b, &mut out);
        assert_eq!(out.len(), 20);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        GridFile::<1>::new(0);
    }

    #[test]
    fn remove_agrees_with_scan() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut gf = GridFile::<2>::new(8);
        let mut scan = ScanIndex::new();
        let mut items: Vec<(u64, Bbox<2>)> = Vec::new();
        for id in 0..600u64 {
            let b = random_box(&mut rng);
            gf.insert(id, b);
            scan.insert(id, b);
            items.push((id, b));
        }
        // remove two thirds, interleaving queries
        for step in 0..400 {
            let pos = (step * 7919) % items.len();
            let (id, b) = items.swap_remove(pos);
            assert!(gf.remove(id, b), "entry must be found");
            assert!(scan.remove(id, b));
            if step % 50 == 0 {
                let probe = random_box(&mut rng);
                assert_same(
                    &gf,
                    &scan,
                    &CornerQuery::unconstrained().and_overlaps(&probe),
                );
            }
        }
        assert_eq!(gf.len(), items.len());
        for _ in 0..40 {
            let probe = random_box(&mut rng);
            assert_same(
                &gf,
                &scan,
                &CornerQuery::unconstrained().and_overlaps(&probe),
            );
            assert_same(
                &gf,
                &scan,
                &CornerQuery::unconstrained().and_contained_in(&probe),
            );
        }
    }

    #[test]
    fn removal_coarsens_the_directory() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut gf = GridFile::<2>::new(4);
        let items: Vec<(u64, Bbox<2>)> = (0..500u64).map(|id| (id, random_box(&mut rng))).collect();
        for &(id, b) in &items {
            gf.insert(id, b);
        }
        let grown = gf.scale_points();
        assert!(grown > 2, "insertion must have refined the scales");
        for &(id, b) in &items[..490] {
            assert!(gf.remove(id, b));
        }
        assert!(
            gf.scale_points() < grown,
            "mass removal must coarsen: {} vs {}",
            gf.scale_points(),
            grown
        );
        // the survivors are still all answerable
        let mut out = Vec::new();
        gf.query_corner(&CornerQuery::unconstrained(), &mut out);
        out.sort_unstable();
        let mut expect: Vec<u64> = items[490..].iter().map(|&(id, _)| id).collect();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn remove_missing_and_empty_entries() {
        let mut gf = GridFile::<1>::new(4);
        gf.insert(1, Bbox::new([0.0], [1.0]));
        gf.insert(2, Bbox::Empty);
        assert!(!gf.remove(1, Bbox::new([5.0], [6.0])), "box must match");
        assert!(!gf.remove(9, Bbox::new([0.0], [1.0])), "id must match");
        assert!(!gf.remove(9, Bbox::Empty), "empty removal matches by id");
        assert!(gf.remove(2, Bbox::Empty));
        assert!(!gf.remove(2, Bbox::Empty), "empty pool exhausted");
        assert!(gf.remove(1, Bbox::new([0.0], [1.0])));
        assert_eq!(gf.len(), 0);
        // index remains usable after emptying
        gf.insert(3, Bbox::new([2.0], [3.0]));
        let mut out = Vec::new();
        gf.query_corner(&CornerQuery::unconstrained(), &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn update_moves_an_entry() {
        let mut gf = GridFile::<1>::new(4);
        gf.insert(1, Bbox::new([0.0], [1.0]));
        assert!(gf.update(1, Bbox::new([0.0], [1.0]), Bbox::new([8.0], [9.0])));
        let mut out = Vec::new();
        gf.query_overlaps(&Bbox::new([8.0], [9.0]), &mut out);
        assert_eq!(out, vec![1]);
        out.clear();
        gf.query_overlaps(&Bbox::new([0.0], [1.0]), &mut out);
        assert!(out.is_empty());
        assert!(!gf.update(1, Bbox::new([0.0], [1.0]), Bbox::new([2.0], [3.0])));
        assert_eq!(gf.len(), 1);
    }

    #[test]
    fn empty_gridfile_queries() {
        let gf = GridFile::<2>::new(8);
        let mut out = Vec::new();
        gf.query_corner(&CornerQuery::unconstrained(), &mut out);
        assert!(out.is_empty());
    }
}
