//! The linear-scan baseline index.

use scq_bbox::{Bbox, CornerQuery};

use crate::traits::SpatialIndex;

/// A trivially correct index: a vector of `(box, id)` pairs filtered on
/// every query. Serves as the oracle for the tree indexes' tests and as
/// the baseline of benchmark B4.
#[derive(Clone, Debug, Default)]
pub struct ScanIndex<const K: usize> {
    entries: Vec<(Bbox<K>, u64)>,
}

impl<const K: usize> ScanIndex<K> {
    /// Creates an empty scan index.
    pub fn new() -> Self {
        ScanIndex {
            entries: Vec::new(),
        }
    }

    /// Creates from an iterator of `(id, bbox)` pairs.
    pub fn from_items<I: IntoIterator<Item = (u64, Bbox<K>)>>(items: I) -> Self {
        let mut s = Self::new();
        for (id, b) in items {
            s.insert(id, b);
        }
        s
    }

    /// Direct access to the stored entries.
    pub fn entries(&self) -> &[(Bbox<K>, u64)] {
        &self.entries
    }
}

impl<const K: usize> SpatialIndex<K> for ScanIndex<K> {
    fn insert(&mut self, id: u64, bbox: Bbox<K>) {
        self.entries.push((bbox, id));
    }

    fn remove(&mut self, id: u64, bbox: Bbox<K>) -> bool {
        match self.entries.iter().position(|&(b, i)| i == id && b == bbox) {
            Some(pos) => {
                self.entries.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    fn query_corner(&self, query: &CornerQuery<K>, out: &mut Vec<u64>) {
        if query.is_unsatisfiable() {
            return;
        }
        out.extend(
            self.entries
                .iter()
                .filter(|(b, _)| query.matches(b))
                .map(|&(_, id)| id),
        );
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut s = ScanIndex::<2>::new();
        s.insert(1, Bbox::new([0.0, 0.0], [1.0, 1.0]));
        s.insert(2, Bbox::new([5.0, 5.0], [6.0, 6.0]));
        s.insert(3, Bbox::Empty);
        assert_eq!(s.len(), 3);
        let mut out = Vec::new();
        s.query_overlaps(&Bbox::new([0.5, 0.5], [5.5, 5.5]), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn empty_boxes_never_match() {
        let mut s = ScanIndex::<1>::new();
        s.insert(7, Bbox::Empty);
        let mut out = Vec::new();
        s.query_corner(&CornerQuery::unconstrained(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn unsatisfiable_query_is_fast_path() {
        let s = ScanIndex::<1>::from_items([(1, Bbox::new([0.0], [1.0]))]);
        let mut out = Vec::new();
        s.query_corner(&CornerQuery::unsatisfiable(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn remove_and_update() {
        let mut s = ScanIndex::<1>::from_items([
            (1, Bbox::new([0.0], [1.0])),
            (2, Bbox::new([5.0], [6.0])),
        ]);
        assert!(!s.remove(1, Bbox::new([5.0], [6.0])), "box must match");
        assert!(s.remove(1, Bbox::new([0.0], [1.0])));
        assert_eq!(s.len(), 1);
        assert!(s.update(2, Bbox::new([5.0], [6.0]), Bbox::new([0.0], [1.0])));
        let mut out = Vec::new();
        s.query_overlaps(&Bbox::new([0.0], [2.0]), &mut out);
        assert_eq!(out, vec![2]);
        assert!(!s.update(9, Bbox::new([0.0], [1.0]), Bbox::Empty));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn containment_helpers() {
        let s = ScanIndex::<1>::from_items([
            (1, Bbox::new([0.0], [10.0])),
            (2, Bbox::new([2.0], [3.0])),
        ]);
        let mut out = Vec::new();
        s.query_contained_in(&Bbox::new([1.0], [4.0]), &mut out);
        assert_eq!(out, vec![2]);
        out.clear();
        s.query_containing(&Bbox::new([1.0], [4.0]), &mut out);
        assert_eq!(out, vec![1]);
    }
}
