//! The [`SpatialIndex`] trait shared by all index structures.

use scq_bbox::{Bbox, CornerQuery};

/// A spatial index over `(id, bounding box)` pairs supporting the
/// combined range query of the paper's Figure 3.
///
/// Implementations may return candidates in any order; callers that need
/// determinism sort the output. Queries are *exact* with respect to
/// [`CornerQuery::matches`] — indexes must return precisely the ids whose
/// boxes match (no false positives or negatives at the bbox level; the
/// *regions* behind the boxes are verified by the query engine).
pub trait SpatialIndex<const K: usize> {
    /// Inserts an object. Ids need not be unique; duplicates are
    /// returned once per insertion.
    fn insert(&mut self, id: u64, bbox: Bbox<K>);

    /// Removes one entry with the given id whose stored box equals
    /// `bbox`. Returns `true` when an entry was removed. The structure
    /// maintains itself incrementally — no rebuild, and subsequent
    /// queries are exact over the surviving entries.
    fn remove(&mut self, id: u64, bbox: Bbox<K>) -> bool;

    /// Replaces the box of one entry: a remove of `(id, old)` followed
    /// by an insert of `(id, new)`. Returns `false` (and inserts
    /// nothing) when `(id, old)` was not present.
    fn update(&mut self, id: u64, old: Bbox<K>, new: Bbox<K>) -> bool {
        if self.remove(id, old) {
            self.insert(id, new);
            true
        } else {
            false
        }
    }

    /// Appends to `out` the ids of all objects whose bounding box
    /// satisfies `query`.
    fn query_corner(&self, query: &CornerQuery<K>, out: &mut Vec<u64>);

    /// Number of stored objects (including ones with empty boxes).
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convenience: all objects overlapping `b`.
    fn query_overlaps(&self, b: &Bbox<K>, out: &mut Vec<u64>) {
        self.query_corner(&CornerQuery::unconstrained().and_overlaps(b), out);
    }

    /// Convenience: all objects contained in `b`.
    fn query_contained_in(&self, b: &Bbox<K>, out: &mut Vec<u64>) {
        self.query_corner(&CornerQuery::unconstrained().and_contained_in(b), out);
    }

    /// Convenience: all objects containing `b`.
    fn query_containing(&self, b: &Bbox<K>, out: &mut Vec<u64>) {
        self.query_corner(&CornerQuery::unconstrained().and_contains(b), out);
    }
}
