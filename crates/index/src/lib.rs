#![warn(missing_docs)]

//! Spatial data structures answering the *range queries* of the paper's
//! Section 1: queries over a single unknown `x` of the form
//! `x ⊑ a`, `b ⊑ x`, `x ⊓ c ≠ ∅` on bounding boxes — and conjunctions
//! thereof, expressed as a [`CornerQuery`].
//!
//! Three implementations of the common [`SpatialIndex`] trait:
//!
//! * [`RTree`] — Guttman's R-tree (reference \[6\] of the paper) with both
//!   the linear and the quadratic split heuristics;
//! * [`GridFile`] — a grid file over the **corner transform** (reference
//!   \[9\]; boxes stored as points in `X²ᵏ`, exactly the Figure 3 story);
//! * [`ScanIndex`] — a linear scan, the honesty baseline.
//!
//! Objects with *empty* bounding boxes (empty regions) are accepted but
//! never returned by corner queries, matching [`CornerQuery::matches`]
//! which rejects `∅`.

pub mod gridfile;
pub mod rtree;
pub mod scan;
pub mod traits;

pub use gridfile::GridFile;
pub use rtree::{RTree, SplitStrategy};
pub use scan::ScanIndex;
pub use traits::SpatialIndex;

pub use scq_bbox::{Bbox, CornerQuery};
