//! Shared helpers for the experiment benches (B1–B8).
//!
//! Each bench in `benches/` regenerates one experiment row/series from
//! EXPERIMENTS.md. The helpers here build deterministic databases and
//! query sets so that criterion timings and the printed auxiliary
//! statistics (solution counts, candidate counts, false-positive rates)
//! are reproducible.

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use scq_bbox::Bbox;
use scq_engine::workload::{map_workload, MapParams};
use scq_engine::{ObjectRef, Query, SpatialDatabase};
use scq_region::{AaBox, Region};
use scq_shard::ShardedDatabase;

/// Criterion tuned for a large suite: short warm-up, few samples. The
/// shapes (who wins, scaling exponents) are robust to this; absolute
/// numbers are machine-specific anyway.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
        .configure_from_args()
}

/// Random boxes with the given count inside the 0..100 square.
pub fn random_bboxes(seed: u64, n: usize, max_size: f64) -> Vec<(u64, Bbox<2>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            let lo = [rng.random_range(0.0..95.0), rng.random_range(0.0..95.0)];
            let w = [
                rng.random_range(0.1..max_size),
                rng.random_range(0.1..max_size),
            ];
            (
                id,
                Bbox::new(lo, [(lo[0] + w[0]).min(100.0), (lo[1] + w[1]).min(100.0)]),
            )
        })
        .collect()
}

/// Random single-box regions.
pub fn random_regions(seed: u64, n: usize, max_size: f64) -> Vec<Region<2>> {
    random_bboxes(seed, n, max_size)
        .into_iter()
        .map(|(_, b)| Region::from_box(AaBox::new(b.lo().unwrap(), b.hi().unwrap())))
        .collect()
}

/// The smuggler benchmark database at a given scale.
pub fn smuggler_setup(seed: u64, n_roads: usize) -> (SpatialDatabase<2>, Query<2>) {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    let w = map_workload(
        &mut db,
        seed,
        &MapParams {
            n_states: 8,
            n_towns: n_roads / 4,
            n_roads,
            useful_road_fraction: 0.05,
        },
    );
    let sys =
        scq_core::parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C")
            .expect("parses");
    let q = Query::new(sys)
        .known("C", w.country.clone())
        .known("A", w.area.clone())
        .from_collection("T", w.towns)
        .from_collection("R", w.roads)
        .from_collection("B", w.states)
        .with_order(&["T", "R", "B"]);
    (db, q)
}

/// The smuggler benchmark database partitioned across `n_shards`,
/// plus two queries: the full smuggler join and a **district** query
/// (`T` contained in a small corner window) whose containment row lets
/// the z-order router prune shards.
pub fn sharded_smuggler_setup(
    seed: u64,
    n_roads: usize,
    n_shards: usize,
) -> (ShardedDatabase, Query<2>, Query<2>) {
    let universe = AaBox::new([0.0, 0.0], [1000.0, 1000.0]);
    let mut plain = SpatialDatabase::new(universe);
    let w = map_workload(
        &mut plain,
        seed,
        &MapParams {
            n_states: 8,
            n_towns: n_roads / 4,
            n_roads,
            useful_road_fraction: 0.05,
        },
    );
    let mut db = ShardedDatabase::new(universe, n_shards);
    for coll in plain.collections() {
        let dst = db.collection(plain.collection_name(coll));
        assert_eq!(dst, coll, "collection ids stay aligned");
        for index in plain.object_indices(coll) {
            let obj = ObjectRef {
                collection: coll,
                index,
            };
            db.insert(dst, plain.region(obj).clone());
        }
    }
    let sys =
        scq_core::parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C")
            .expect("parses");
    let smuggler = Query::new(sys)
        .known("C", w.country.clone())
        .known("A", w.area.clone())
        .from_collection("T", w.towns)
        .from_collection("R", w.roads)
        .from_collection("B", w.states)
        .with_order(&["T", "R", "B"]);
    let district_sys = scq_core::parse_system("T <= W; R & T != 0").expect("parses");
    let district = Query::new(district_sys)
        .known(
            "W",
            Region::from_box(AaBox::new([100.0, 100.0], [360.0, 360.0])),
        )
        .from_collection("T", w.towns)
        .from_collection("R", w.roads);
    (db, smuggler, district)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_deterministic() {
        assert_eq!(random_bboxes(1, 10, 5.0), random_bboxes(1, 10, 5.0));
        let (db1, _) = smuggler_setup(3, 40);
        let (db2, _) = smuggler_setup(3, 40);
        assert_eq!(
            db1.collection_len(db1.collection_id("roads").unwrap()),
            db2.collection_len(db2.collection_id("roads").unwrap())
        );
    }

    #[test]
    fn sharded_setup_matches_unsharded_answers() {
        let (plain, q) = smuggler_setup(9, 40);
        let (sharded, sq, district) = sharded_smuggler_setup(9, 40, 8);
        let a = scq_engine::bbox_execute(&plain, &q, scq_engine::IndexKind::RTree).unwrap();
        let b = scq_shard::execute(
            &sharded,
            &sq,
            scq_engine::IndexKind::RTree,
            scq_engine::ExecOptions::all(),
        )
        .unwrap();
        assert_eq!(a.stats.solutions, b.stats.solutions);
        let d = scq_shard::execute(
            &sharded,
            &district,
            scq_engine::IndexKind::RTree,
            scq_engine::ExecOptions::all(),
        )
        .unwrap();
        assert!(
            d.stats.shards_pruned > 0,
            "district query must prune shards: {}",
            d.stats
        );
    }
}

// ── bench regression gate ───────────────────────────────────────────────

/// One measured row of a bench artifact: name and value (`*_ms` rows
/// are medians in milliseconds; other rows are counts).
pub type BenchRow = (String, f64);

/// Parses the `BENCH_*.json` artifact format written by the smoke
/// preset (`{"benches": [{"name": …, "median_ms": …}, …]}`). The
/// writer is in this repository, so the parser matches its exact
/// shape rather than dragging in a JSON dependency; anything it cannot
/// read is an error, not a silently empty baseline.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRow>, String> {
    let mut rows = Vec::new();
    for obj in text.split('{').skip(1) {
        let Some(name_at) = obj.find("\"name\"") else {
            continue; // the envelope object
        };
        let name = obj[name_at..]
            .split('"')
            .nth(3)
            .ok_or_else(|| format!("unterminated name near {:.40}…", &obj[name_at..]))?
            .to_string();
        let value_at = obj
            .find("\"median_ms\"")
            .ok_or_else(|| format!("row {name:?} has no median_ms field"))?;
        let raw = obj[value_at..]
            .split(':')
            .nth(1)
            .and_then(|v| v.split(['}', ',', '\n']).next())
            .ok_or_else(|| format!("row {name:?} has a malformed median_ms"))?
            .trim();
        let value: f64 = raw
            .parse()
            .map_err(|_| format!("row {name:?}: {raw:?} is not a number"))?;
        rows.push((name, value));
    }
    if rows.is_empty() {
        return Err("no bench rows found".into());
    }
    Ok(rows)
}

/// Compares a current bench artifact against a checked-in baseline.
///
/// * `*_ms` rows regress when the current median exceeds
///   `baseline × factor` **and** the absolute growth exceeds a small
///   noise floor (0.25 ms) — sub-millisecond rows on shared CI runners
///   jitter by integer factors without meaning anything.
/// * `*_us` rows (histogram-derived latency quantiles, e.g.
///   `sharded_district_p99_us`) gate the same way, with the same noise
///   floor expressed in microseconds — a *faster* p99 must never fail
///   the gate, so they are latency rows, not count rows.
/// * count rows (no `_ms`/`_us` suffix, e.g. shards pruned) regress
///   when the current value drops below the baseline — pruning counts
///   must never silently decay.
/// * **ceiling** count rows — names ending in `_retries`,
///   `_shards_unavailable`, `_failovers`, `_breaker_trips`,
///   `_torn_tails`, `_replay_errors`, `_slow_queries` or
///   `_row_checks` — regress when the current value *exceeds* the
///   baseline: the first seven are failure counters held at 0 on the
///   happy path (growth means connections flapped, shards vanished,
///   WAL recovery hit damage, or a query crossed the slow threshold),
///   while `_row_checks` rows bound the executor's enumeration work —
///   a cost-based plan that starts checking *more* rows than the
///   baseline has silently lost its selectivity advantage.
/// * a baseline row missing from the current artifact is a regression
///   (a deleted bench would otherwise vanish from the gate unnoticed);
///   new rows in the current artifact are fine.
///
/// Returns the per-row report lines on success, the violation lines on
/// failure.
pub fn gate_benches(
    baseline: &[BenchRow],
    current: &[BenchRow],
    factor: f64,
) -> Result<Vec<String>, Vec<String>> {
    let rows = gate_rows(baseline, current, factor);
    let failed: Vec<String> = rows
        .iter()
        .filter(|r| !r.passed)
        .map(|r| r.detail.clone())
        .collect();
    if failed.is_empty() {
        Ok(rows.into_iter().map(|r| r.detail).collect())
    } else {
        Err(failed)
    }
}

/// One baseline row's gate verdict: the row name, a human-readable
/// detail line, and whether it passed. This is the structured form
/// behind [`gate_benches`], kept separate so callers can render a
/// per-row pass/fail table (the CI step summary) without re-parsing
/// the report strings.
pub struct GateRow {
    /// The bench row's name.
    pub name: String,
    /// The rendered comparison (`name: value vs baseline …`).
    pub detail: String,
    /// Whether the row is within its gate.
    pub passed: bool,
}

/// Evaluates every baseline row against the current artifact. See
/// [`gate_benches`] for the row classification rules.
pub fn gate_rows(baseline: &[BenchRow], current: &[BenchRow], factor: f64) -> Vec<GateRow> {
    const NOISE_FLOOR_MS: f64 = 0.25;
    let mut rows = Vec::new();
    let mut push = |name: &str, detail: String, passed: bool| {
        rows.push(GateRow {
            name: name.to_string(),
            detail,
            passed,
        });
    };
    for (name, base) in baseline {
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            push(
                name,
                format!("{name}: present in the baseline, missing from the run"),
                false,
            );
            continue;
        };
        let is_ceiling = name.ends_with("_retries")
            || name.ends_with("_shards_unavailable")
            || name.ends_with("_failovers")
            || name.ends_with("_breaker_trips")
            || name.ends_with("_torn_tails")
            || name.ends_with("_replay_errors")
            || name.ends_with("_slow_queries")
            || name.ends_with("_row_checks");
        if name.ends_with("_ms") {
            let limit = base * factor;
            if *cur > limit && cur - base > NOISE_FLOOR_MS {
                push(
                    name,
                    format!("{name}: {cur:.4} ms exceeds {factor}x baseline ({base:.4} ms)"),
                    false,
                );
            } else {
                push(
                    name,
                    format!("{name}: {cur:.4} ms (baseline {base:.4} ms) ok"),
                    true,
                );
            }
        } else if name.ends_with("_us") {
            // Histogram-derived latency quantiles: same factor gate as
            // the `_ms` rows (faster must never fail), same noise
            // floor in this unit.
            let limit = base * factor;
            if *cur > limit && cur - base > NOISE_FLOOR_MS * 1000.0 {
                push(
                    name,
                    format!("{name}: {cur:.1} us exceeds {factor}x baseline ({base:.1} us)"),
                    false,
                );
            } else {
                push(
                    name,
                    format!("{name}: {cur:.1} us (baseline {base:.1} us) ok"),
                    true,
                );
            }
        } else if is_ceiling && cur > base {
            push(
                name,
                format!(
                    "{name}: {cur} exceeds the baseline {base} (a ceiling row — failure counter \
                     or planner work bound — must stay at its baseline value)"
                ),
                false,
            );
        } else if !is_ceiling && cur < base {
            push(
                name,
                format!(
                    "{name}: {cur} fell below the baseline {base} (a pruning/count row must not \
                     decay)"
                ),
                false,
            );
        } else {
            push(name, format!("{name}: {cur} (baseline {base}) ok"), true);
        }
    }
    rows
}

#[cfg(test)]
mod gate_tests {
    use super::*;

    fn rows(pairs: &[(&str, f64)]) -> Vec<BenchRow> {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn artifact_format_round_trips() {
        let json = "{\n  \"schema\": 1,\n  \"preset\": \"ci\",\n  \"benches\": [\n    \
                    {\"name\": \"a_ms\", \"median_ms\": 1.2500},\n    \
                    {\"name\": \"b_count\", \"median_ms\": 6.0000}\n  ]\n}\n";
        let rows = parse_bench_json(json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "a_ms");
        assert!((rows[0].1 - 1.25).abs() < 1e-9);
        assert!(
            parse_bench_json("{}").is_err(),
            "empty artifact is an error"
        );
        assert!(parse_bench_json("not json at all").is_err());
    }

    #[test]
    fn time_rows_gate_on_factor_above_the_noise_floor() {
        let base = rows(&[("solve_ms", 2.0)]);
        assert!(gate_benches(&base, &rows(&[("solve_ms", 3.9)]), 2.0).is_ok());
        assert!(gate_benches(&base, &rows(&[("solve_ms", 4.5)]), 2.0).is_err());
        // a tiny row blowing past the factor but inside the noise
        // floor passes
        let tiny = rows(&[("q_ms", 0.01)]);
        assert!(gate_benches(&tiny, &rows(&[("q_ms", 0.2)]), 2.0).is_ok());
        assert!(gate_benches(&tiny, &rows(&[("q_ms", 0.9)]), 2.0).is_err());
    }

    #[test]
    fn count_rows_must_not_decay_and_rows_must_not_vanish() {
        let base = rows(&[("pruned", 6.0), ("solve_ms", 1.0)]);
        let ok = rows(&[("pruned", 7.0), ("solve_ms", 1.0), ("extra_ms", 9.0)]);
        assert!(
            gate_benches(&base, &ok, 10.0).is_ok(),
            "growth and new rows pass"
        );
        let decayed = rows(&[("pruned", 5.0), ("solve_ms", 1.0)]);
        assert!(gate_benches(&base, &decayed, 10.0).is_err());
        let missing = rows(&[("solve_ms", 1.0)]);
        let err = gate_benches(&base, &missing, 10.0).unwrap_err();
        assert!(err[0].contains("missing"), "{err:?}");
    }

    #[test]
    fn failure_counter_rows_gate_on_a_ceiling() {
        let base = rows(&[("q_retries", 0.0), ("q_shards_unavailable", 0.0)]);
        assert!(
            gate_benches(&base, &base, 10.0).is_ok(),
            "zero matches zero"
        );
        let flapping = rows(&[("q_retries", 2.0), ("q_shards_unavailable", 0.0)]);
        let err = gate_benches(&base, &flapping, 10.0).unwrap_err();
        assert!(err[0].contains("failure counter"), "{err:?}");
        let degraded = rows(&[("q_retries", 0.0), ("q_shards_unavailable", 1.0)]);
        assert!(gate_benches(&base, &degraded, 10.0).is_err());
        // replication counters are ceilings too: a happy-path run that
        // failed over or tripped a breaker is a regression, not growth
        let rep = rows(&[("q_failovers", 0.0), ("q_breaker_trips", 0.0)]);
        assert!(gate_benches(&rep, &rep, 10.0).is_ok());
        let failed_over = rows(&[("q_failovers", 1.0), ("q_breaker_trips", 0.0)]);
        assert!(gate_benches(&rep, &failed_over, 10.0).is_err());
        let tripped = rows(&[("q_failovers", 0.0), ("q_breaker_trips", 1.0)]);
        assert!(gate_benches(&rep, &tripped, 10.0).is_err());
        // durability counters: torn tails and replay errors are held
        // at zero, while fsync batching is a floor (group commit must
        // keep batching at least as well as the baseline).
        let wal = rows(&[
            ("wal_torn_tails", 0.0),
            ("wal_replay_errors", 0.0),
            ("wal_fsync_batches", 2.0),
        ]);
        assert!(gate_benches(&wal, &wal, 10.0).is_ok());
        let torn = rows(&[
            ("wal_torn_tails", 1.0),
            ("wal_replay_errors", 0.0),
            ("wal_fsync_batches", 2.0),
        ]);
        assert!(gate_benches(&wal, &torn, 10.0).is_err());
        let rejected = rows(&[
            ("wal_torn_tails", 0.0),
            ("wal_replay_errors", 1.0),
            ("wal_fsync_batches", 2.0),
        ]);
        assert!(gate_benches(&wal, &rejected, 10.0).is_err());
        let unbatched = rows(&[
            ("wal_torn_tails", 0.0),
            ("wal_replay_errors", 0.0),
            ("wal_fsync_batches", 1.0),
        ]);
        assert!(
            gate_benches(&wal, &unbatched, 10.0).is_err(),
            "records-per-fsync decaying below baseline means group commit stopped batching"
        );
        // planner work rows: `_row_checks` is a ceiling (a cost-based
        // plan must not start enumerating more rows than the
        // baseline), while plain counts like cache hits stay floors.
        let planner = rows(&[
            ("planned_district_row_checks", 40.0),
            ("district_corner_cache_hits", 12.0),
        ]);
        assert!(gate_benches(&planner, &planner, 10.0).is_ok());
        let wasteful = rows(&[
            ("planned_district_row_checks", 41.0),
            ("district_corner_cache_hits", 12.0),
        ]);
        assert!(
            gate_benches(&planner, &wasteful, 10.0).is_err(),
            "more row checks than baseline means the plan lost selectivity"
        );
        let cold = rows(&[
            ("planned_district_row_checks", 40.0),
            ("district_corner_cache_hits", 11.0),
        ]);
        assert!(
            gate_benches(&planner, &cold, 10.0).is_err(),
            "corner-cache hits are a floor like any other count row"
        );
    }
}
