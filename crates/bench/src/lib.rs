//! Shared helpers for the experiment benches (B1–B8).
//!
//! Each bench in `benches/` regenerates one experiment row/series from
//! EXPERIMENTS.md. The helpers here build deterministic databases and
//! query sets so that criterion timings and the printed auxiliary
//! statistics (solution counts, candidate counts, false-positive rates)
//! are reproducible.

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use scq_bbox::Bbox;
use scq_engine::workload::{map_workload, MapParams};
use scq_engine::{ObjectRef, Query, SpatialDatabase};
use scq_region::{AaBox, Region};
use scq_shard::ShardedDatabase;

/// Criterion tuned for a large suite: short warm-up, few samples. The
/// shapes (who wins, scaling exponents) are robust to this; absolute
/// numbers are machine-specific anyway.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
        .configure_from_args()
}

/// Random boxes with the given count inside the 0..100 square.
pub fn random_bboxes(seed: u64, n: usize, max_size: f64) -> Vec<(u64, Bbox<2>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|id| {
            let lo = [rng.random_range(0.0..95.0), rng.random_range(0.0..95.0)];
            let w = [
                rng.random_range(0.1..max_size),
                rng.random_range(0.1..max_size),
            ];
            (
                id,
                Bbox::new(lo, [(lo[0] + w[0]).min(100.0), (lo[1] + w[1]).min(100.0)]),
            )
        })
        .collect()
}

/// Random single-box regions.
pub fn random_regions(seed: u64, n: usize, max_size: f64) -> Vec<Region<2>> {
    random_bboxes(seed, n, max_size)
        .into_iter()
        .map(|(_, b)| Region::from_box(AaBox::new(b.lo().unwrap(), b.hi().unwrap())))
        .collect()
}

/// The smuggler benchmark database at a given scale.
pub fn smuggler_setup(seed: u64, n_roads: usize) -> (SpatialDatabase<2>, Query<2>) {
    let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    let w = map_workload(
        &mut db,
        seed,
        &MapParams {
            n_states: 8,
            n_towns: n_roads / 4,
            n_roads,
            useful_road_fraction: 0.05,
        },
    );
    let sys =
        scq_core::parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C")
            .expect("parses");
    let q = Query::new(sys)
        .known("C", w.country.clone())
        .known("A", w.area.clone())
        .from_collection("T", w.towns)
        .from_collection("R", w.roads)
        .from_collection("B", w.states)
        .with_order(&["T", "R", "B"]);
    (db, q)
}

/// The smuggler benchmark database partitioned across `n_shards`,
/// plus two queries: the full smuggler join and a **district** query
/// (`T` contained in a small corner window) whose containment row lets
/// the z-order router prune shards.
pub fn sharded_smuggler_setup(
    seed: u64,
    n_roads: usize,
    n_shards: usize,
) -> (ShardedDatabase, Query<2>, Query<2>) {
    let universe = AaBox::new([0.0, 0.0], [1000.0, 1000.0]);
    let mut plain = SpatialDatabase::new(universe);
    let w = map_workload(
        &mut plain,
        seed,
        &MapParams {
            n_states: 8,
            n_towns: n_roads / 4,
            n_roads,
            useful_road_fraction: 0.05,
        },
    );
    let mut db = ShardedDatabase::new(universe, n_shards);
    for coll in plain.collections() {
        let dst = db.collection(plain.collection_name(coll));
        assert_eq!(dst, coll, "collection ids stay aligned");
        for index in plain.object_indices(coll) {
            let obj = ObjectRef {
                collection: coll,
                index,
            };
            db.insert(dst, plain.region(obj).clone());
        }
    }
    let sys =
        scq_core::parse_system("A <= C; B <= C; R <= A | B | T; R & A != 0; R & T != 0; T < C")
            .expect("parses");
    let smuggler = Query::new(sys)
        .known("C", w.country.clone())
        .known("A", w.area.clone())
        .from_collection("T", w.towns)
        .from_collection("R", w.roads)
        .from_collection("B", w.states)
        .with_order(&["T", "R", "B"]);
    let district_sys = scq_core::parse_system("T <= W; R & T != 0").expect("parses");
    let district = Query::new(district_sys)
        .known(
            "W",
            Region::from_box(AaBox::new([100.0, 100.0], [360.0, 360.0])),
        )
        .from_collection("T", w.towns)
        .from_collection("R", w.roads);
    (db, smuggler, district)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_deterministic() {
        assert_eq!(random_bboxes(1, 10, 5.0), random_bboxes(1, 10, 5.0));
        let (db1, _) = smuggler_setup(3, 40);
        let (db2, _) = smuggler_setup(3, 40);
        assert_eq!(
            db1.collection_len(db1.collection_id("roads").unwrap()),
            db2.collection_len(db2.collection_id("roads").unwrap())
        );
    }

    #[test]
    fn sharded_setup_matches_unsharded_answers() {
        let (plain, q) = smuggler_setup(9, 40);
        let (sharded, sq, district) = sharded_smuggler_setup(9, 40, 8);
        let a = scq_engine::bbox_execute(&plain, &q, scq_engine::IndexKind::RTree).unwrap();
        let b = scq_shard::execute(
            &sharded,
            &sq,
            scq_engine::IndexKind::RTree,
            scq_engine::ExecOptions::all(),
        )
        .unwrap();
        assert_eq!(a.stats.solutions, b.stats.solutions);
        let d = scq_shard::execute(
            &sharded,
            &district,
            scq_engine::IndexKind::RTree,
            scq_engine::ExecOptions::all(),
        )
        .unwrap();
        assert!(
            d.stats.shards_pruned > 0,
            "district query must prune shards: {}",
            d.stats
        );
    }
}
