//! Regenerates the EXPERIMENTS.md summary table: one row per experiment
//! with the qualitative quantity the paper's claim is about (speedups,
//! pruning factors, false-positive rates, result counts), measured on
//! this machine.
//!
//! ```sh
//! cargo run --release -p scq-bench --bin experiments
//! ```
//!
//! Criterion (`cargo bench`) produces the detailed latency
//! distributions; this binary produces the compact paper-vs-measured
//! table.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use scq_algebra::{Assignment, BooleanAlgebra};
use scq_bbox::Bbox;
use scq_bench::{random_bboxes, sharded_smuggler_setup, smuggler_setup};
use scq_boolean::{Formula, Var};
use scq_core::plan::BboxPlan;
use scq_core::{parse_system, triangularize, NormalSystem};
use scq_engine::{bbox_execute, naive_execute, triangular_execute, IndexKind};
use scq_index::{GridFile, RTree, ScanIndex, SpatialIndex, SplitStrategy};
use scq_region::{AaBox, Region, RegionAlgebra};
use scq_zorder::{zorder_join, ZCurve};

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64() * 1e3)
}

fn b1() {
    println!("## B1 — join executors (smuggler query)");
    println!("| n_roads | naive ms | triangular ms | bbox(R-tree) ms | bad-order ms | first-only ms | solutions | naive partials | bbox partials |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for n in [40usize, 120, 360] {
        let (db, q) = smuggler_setup(1000 + n as u64, n);
        let (rb, tb) = time(|| bbox_execute(&db, &q, IndexKind::RTree).unwrap());
        let (_rt, tt) = time(|| triangular_execute(&db, &q).unwrap());
        let q_bad = q.clone().with_order(&["B", "R", "T"]);
        let (_rbad, tbad) = time(|| bbox_execute(&db, &q_bad, IndexKind::RTree).unwrap());
        let (_rf, tf) = time(|| {
            scq_engine::bbox_execute_opts(
                &db,
                &q,
                IndexKind::RTree,
                scq_engine::ExecOptions::first(),
            )
            .unwrap()
        });
        let (naive_str, naive_partials) = if n <= 120 {
            let (rn, tn) = time(|| naive_execute(&db, &q).unwrap());
            (format!("{tn:.2}"), rn.stats.partial_tuples.to_string())
        } else {
            ("—".into(), "—".into())
        };
        println!(
            "| {n} | {naive_str} | {tt:.2} | {tb:.2} | {tbad:.2} | {tf:.2} | {} | {naive_partials} | {} |",
            rb.stats.solutions, rb.stats.partial_tuples
        );
    }
}

fn b2() {
    println!("\n## B2 — Algorithm 1 compile time vs #vars (chain systems)");
    println!("| n vars | time ms |");
    println!("|---|---|");
    for n in [2u32, 4, 6, 8, 10] {
        let mut eq = Formula::Zero;
        let mut neqs = Vec::new();
        for i in 0..n - 1 {
            eq = Formula::or(
                eq,
                Formula::diff(Formula::var(Var(i)), Formula::var(Var(i + 1))),
            );
            neqs.push(Formula::and(Formula::var(Var(i)), Formula::var(Var(i + 1))));
        }
        let sys = NormalSystem { eq, neqs };
        let order: Vec<Var> = (0..n).map(Var).collect();
        let (_, t) = time(|| triangularize(&sys, &order));
        println!("| {n} | {t:.3} |");
    }
}

fn b3() {
    println!("\n## B3 — Blake canonical form vs #vars (random SOP, 2n cubes)");
    println!("| n vars | time ms | prime implicants |");
    println!("|---|---|---|");
    for n in [4u32, 6, 8, 10, 12] {
        let mut rng = StdRng::seed_from_u64(42 + n as u64);
        let sop = scq_boolean::random::random_sop(&mut rng, n, n * 2, 3);
        let (bcf, t) = time(|| scq_boolean::bcf::bcf_of_sop(sop));
        println!("| {n} | {t:.3} | {} |", bcf.len());
    }
}

fn b4() {
    println!("\n## B4 — range-query latency (16 mixed queries, total ms)");
    println!("| n | rtree-lin | rtree-quad | gridfile | scan |");
    println!("|---|---|---|---|---|");
    for n in [1_000usize, 10_000, 50_000] {
        let items = random_bboxes(7, n, 3.0);
        let rt_lin = RTree::from_items(SplitStrategy::Linear, items.iter().copied());
        let rt_quad = RTree::from_items(SplitStrategy::Quadratic, items.iter().copied());
        let grid = GridFile::bulk_load(32, items.iter().copied());
        let scan = ScanIndex::from_items(items.iter().copied());
        let queries: Vec<_> = (0..16)
            .map(|i| {
                let x = (i * 6) as f64;
                scq_bbox::CornerQuery::unconstrained()
                    .and_overlaps(&Bbox::new([x, x], [x + 8.0, x + 8.0]))
            })
            .collect();
        let run = |idx: &dyn Fn(&scq_bbox::CornerQuery<2>, &mut Vec<u64>)| {
            let mut out = Vec::new();
            let t = Instant::now();
            for _ in 0..10 {
                for q in &queries {
                    out.clear();
                    idx(q, &mut out);
                }
            }
            t.elapsed().as_secs_f64() * 1e3 / 10.0
        };
        let t1 = run(&|q, out| rt_lin.query_corner(q, out));
        let t2 = run(&|q, out| rt_quad.query_corner(q, out));
        let t3 = run(&|q, out| grid.query_corner(q, out));
        let t4 = run(&|q, out| scan.query_corner(q, out));
        println!("| {n} | {t1:.3} | {t2:.3} | {t3:.3} | {t4:.3} |");
    }
}

fn b5() {
    println!("\n## B5 — one corner query vs three passes (R-tree, total ms)");
    println!("| n | one query | three passes |");
    println!("|---|---|---|");
    for n in [1_000usize, 10_000, 50_000] {
        let items = random_bboxes(21, n, 4.0);
        let rtree = RTree::from_items(SplitStrategy::Quadratic, items.iter().copied());
        let a = Bbox::new([33.0, 33.0], [34.0, 34.0]);
        let b = Bbox::new([30.0, 30.0], [50.0, 50.0]);
        let c = Bbox::new([38.0, 38.0], [42.0, 42.0]);
        let (_, t_one) = time(|| {
            let mut out = Vec::new();
            for _ in 0..50 {
                out.clear();
                let q = scq_bbox::CornerQuery::unconstrained()
                    .and_contains(&a)
                    .and_contained_in(&b)
                    .and_overlaps(&c);
                rtree.query_corner(&q, &mut out);
            }
            out.len()
        });
        let (_, t_three) = time(|| {
            let mut total = 0;
            for _ in 0..50 {
                let mut q1 = Vec::new();
                rtree.query_corner(
                    &scq_bbox::CornerQuery::unconstrained().and_contains(&a),
                    &mut q1,
                );
                let mut q2 = Vec::new();
                rtree.query_corner(
                    &scq_bbox::CornerQuery::unconstrained().and_contained_in(&b),
                    &mut q2,
                );
                let mut q3 = Vec::new();
                rtree.query_corner(
                    &scq_bbox::CornerQuery::unconstrained().and_overlaps(&c),
                    &mut q3,
                );
                let s1: std::collections::HashSet<u64> = q1.into_iter().collect();
                let s2: std::collections::HashSet<u64> = q2.into_iter().collect();
                total += q3
                    .into_iter()
                    .filter(|id| s1.contains(id) && s2.contains(id))
                    .count();
            }
            total
        });
        println!("| {n} | {t_one:.3} | {t_three:.3} |");
    }
}

fn b6() {
    println!("\n## B6 — bbox filter vs exact region check (400 candidates)");
    println!("| frags | bbox ms | exact ms | bbox passes | exact passes | fp rate |");
    println!("|---|---|---|---|---|---|");
    let sys = parse_system("X <= A | B; X & B != 0").unwrap();
    let (a, b, x) = (
        sys.table.get("A").unwrap(),
        sys.table.get("B").unwrap(),
        sys.table.get("X").unwrap(),
    );
    let tri = triangularize(&sys.normalize(), &[a, b, x]);
    let plan: BboxPlan<2> = BboxPlan::compile(&tri);
    let row = plan.row_for(x).unwrap();
    let alg = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
    for frags in [1usize, 4, 16] {
        let mk = |seed: u64, n: usize| -> Vec<Region<2>> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n)
                .map(|_| {
                    Region::from_boxes((0..frags).map(|_| {
                        let lo = [rng.random_range(0.0..90.0), rng.random_range(0.0..90.0)];
                        let w = [rng.random_range(1.0..8.0), rng.random_range(1.0..8.0)];
                        AaBox::new(lo, [lo[0] + w[0], lo[1] + w[1]])
                    }))
                })
                .collect()
        };
        let known = mk(5, 2);
        // Stratified candidates: sub-boxes of B fragments (exact pass),
        // jittered fragment copies (bbox-only), uniform noise (miss).
        let candidates: Vec<Region<2>> = {
            let mut rng = StdRng::seed_from_u64(77);
            let pool: Vec<AaBox<2>> = known
                .iter()
                .flat_map(|r| r.boxes().iter().copied())
                .collect();
            let b_frags: Vec<AaBox<2>> = known[1].boxes().to_vec();
            (0..400usize)
                .map(|i| match i % 3 {
                    0 => {
                        let src = b_frags[rng.random_range(0..b_frags.len())];
                        let (lo, hi) = (src.lo(), src.hi());
                        let cx = [lo[0] / 2.0 + hi[0] / 2.0, lo[1] / 2.0 + hi[1] / 2.0];
                        Region::from_box(AaBox::new(
                            [lo[0] / 2.0 + cx[0] / 2.0, lo[1] / 2.0 + cx[1] / 2.0],
                            [hi[0] / 2.0 + cx[0] / 2.0, hi[1] / 2.0 + cx[1] / 2.0],
                        ))
                    }
                    1 => {
                        let src = pool[rng.random_range(0..pool.len())];
                        let (lo, hi) = (src.lo(), src.hi());
                        let jit = rng.random_range(0.5..4.0);
                        Region::from_box(AaBox::new(
                            [lo[0] + jit * 0.5, lo[1] + jit],
                            [hi[0] + jit, hi[1] + jit * 1.5],
                        ))
                    }
                    _ => {
                        let lo = [rng.random_range(0.0..90.0), rng.random_range(0.0..90.0)];
                        let w = [rng.random_range(1.0..8.0), rng.random_range(1.0..8.0)];
                        Region::from_box(AaBox::new(lo, [lo[0] + w[0], lo[1] + w[1]]))
                    }
                })
                .collect()
        };
        let mut var_boxes = [Bbox::Empty; 3];
        var_boxes[a.index()] = known[0].bbox();
        var_boxes[b.index()] = known[1].bbox();
        let lookup = |i: usize| var_boxes.get(i).copied().unwrap_or(Bbox::Empty);
        let q = row.corner_query(lookup);
        let (n_bbox, t_bbox) = time(|| candidates.iter().filter(|r| q.matches(&r.bbox())).count());
        let mut assign = Assignment::new();
        assign.bind(a, known[0].clone());
        assign.bind(b, known[1].clone());
        let (n_exact, t_exact) = time(|| {
            candidates
                .iter()
                .filter(|r| {
                    assign.bind(x, (*r).clone());
                    row.exact.check(&alg, &assign).unwrap()
                })
                .count()
        });
        println!(
            "| {frags} | {t_bbox:.3} | {t_exact:.3} | {n_bbox} | {n_exact} | {:.1}% |",
            100.0 * (n_bbox.saturating_sub(n_exact)) as f64 / n_bbox.max(1) as f64
        );
    }
}

fn b7() {
    println!("\n## B7 — overlay join: z-order vs engine vs nested loop");
    println!("| n per side | zorder ms | engine ms | nested ms | pairs |");
    println!("|---|---|---|---|---|");
    for n in [500usize, 2_000, 8_000] {
        let left = random_bboxes(100, n, 2.0);
        let right = random_bboxes(200, n, 2.0);
        let l_items: Vec<_> = left.iter().map(|&(id, b)| (b, id)).collect();
        let r_items: Vec<_> = right.iter().map(|&(id, b)| (b, id)).collect();
        let curve = ZCurve::new(Bbox::new([0.0, 0.0], [100.0, 100.0]), 10);
        let (pairs, t_z) = time(|| zorder_join(&curve, &l_items, &r_items).len());
        let mut db = scq_engine::SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let cx = db.collection("X");
        let cy = db.collection("Y");
        for (_, bx) in &left {
            db.insert(
                cx,
                Region::from_box(AaBox::new(bx.lo().unwrap(), bx.hi().unwrap())),
            );
        }
        for (_, bx) in &right {
            db.insert(
                cy,
                Region::from_box(AaBox::new(bx.lo().unwrap(), bx.hi().unwrap())),
            );
        }
        let sys = parse_system("X & Y != 0").unwrap();
        let q = scq_engine::Query::new(sys)
            .from_collection("X", cx)
            .from_collection("Y", cy);
        let (_, t_e) = time(|| bbox_execute(&db, &q, IndexKind::RTree).unwrap());
        let t_n = if n <= 2_000 {
            let (_, t) = time(|| {
                l_items
                    .iter()
                    .map(|(lb, _)| r_items.iter().filter(|(rb, _)| lb.overlaps(rb)).count())
                    .sum::<usize>()
            });
            format!("{t:.2}")
        } else {
            "—".into()
        };
        println!("| {n} | {t_z:.2} | {t_e:.2} | {t_n} | {pairs} |");
    }
}

fn b8() {
    println!("\n## B8 — region-algebra operation cost vs fragments (ms)");
    println!("| frags | union | intersection | complement | bbox |");
    println!("|---|---|---|---|---|");
    let alg = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
    for frags in [4usize, 16, 64, 256] {
        let mk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            Region::from_boxes((0..frags).map(|_| {
                let lo = [rng.random_range(0.0..90.0), rng.random_range(0.0..90.0)];
                let w = [rng.random_range(0.5..6.0), rng.random_range(0.5..6.0)];
                AaBox::new(lo, [lo[0] + w[0], lo[1] + w[1]])
            }))
        };
        let a = mk(1);
        let b = mk(2);
        let (_, tu) = time(|| a.union(&b));
        let (_, ti) = time(|| a.intersection(&b));
        let (_, tc) = time(|| alg.complement(&a));
        let (_, tb) = time(|| a.bbox());
        println!("| {frags} | {tu:.3} | {ti:.3} | {tc:.3} | {tb:.4} |");
    }
}

fn b9() {
    println!("\n## B9 — constructive solver (chain of proper subsets)");
    println!("| n vars | compile ms | solve ms |");
    println!("|---|---|---|");
    use scq_core::constraint::{normalize, Constraint};
    let alg = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
    for n in [2u32, 4, 6, 8] {
        let mut cs = vec![Constraint::NotSubset(Formula::var(Var(0)), Formula::Zero)];
        for i in 0..n - 1 {
            cs.push(Constraint::ProperSubset(
                Formula::var(Var(i)),
                Formula::var(Var(i + 1)),
            ));
        }
        cs.push(Constraint::Subset(
            Formula::var(Var(n - 1)),
            Formula::var(Var(n)),
        ));
        let sys = normalize(&cs);
        let mut order: Vec<Var> = vec![Var(n)];
        order.extend((0..n).rev().map(Var));
        let (tri, t_compile) = time(|| triangularize(&sys, &order));
        let knowns = Assignment::new().with(
            Var(n),
            Region::from_box(AaBox::new([10.0, 10.0], [90.0, 90.0])),
        );
        let (res, t_solve) = time(|| scq_core::solve(&tri, &alg, &knowns).unwrap());
        assert!(res.is_some());
        println!("| {n} | {t_compile:.3} | {t_solve:.3} |");
    }
}

fn b10() {
    println!("\n## B10 — parallel executor and z-order index");
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host CPUs: {cpus} (speedup requires >1)");
    println!("| threads | overlay join ms |");
    println!("|---|---|");
    let (db, q) = {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use scq_engine::workload::clustered_boxes;
        let universe = AaBox::new([0.0, 0.0], [1000.0, 1000.0]);
        let mut db = scq_engine::SpatialDatabase::new(universe);
        let mut rng = StdRng::seed_from_u64(777);
        let xs = db.collection("xs");
        let ys = db.collection("ys");
        for r in clustered_boxes(&mut rng, 30, 60, &universe, 60.0, 14.0) {
            db.insert(xs, r);
        }
        for r in clustered_boxes(&mut rng, 30, 60, &universe, 60.0, 14.0) {
            db.insert(ys, r);
        }
        let sys = parse_system("X & Y != 0; X & K != 0").unwrap();
        let q = scq_engine::Query::new(sys)
            .known(
                "K",
                Region::from_box(AaBox::new([100.0, 100.0], [900.0, 900.0])),
            )
            .from_collection("X", xs)
            .from_collection("Y", ys);
        (db, q)
    };
    let (_, t_seq) = time(|| bbox_execute(&db, &q, IndexKind::RTree).unwrap());
    println!("| 1 (sequential) | {t_seq:.2} |");
    for t in [2usize, 4] {
        let (_, ms) = time(|| {
            scq_engine::bbox_execute_parallel(
                &db,
                &q,
                IndexKind::RTree,
                t,
                scq_engine::ExecOptions::all(),
            )
            .unwrap()
        });
        println!("| {t} | {ms:.2} |");
    }
    println!("\n| n | z-order index ms | rtree ms | (16 overlap queries) |");
    println!("|---|---|---|---|");
    for n in [1_000usize, 10_000, 50_000] {
        let items = random_bboxes(5, n, 3.0);
        let z = scq_zorder::ZOrderIndex::from_items(
            Bbox::new([0.0, 0.0], [100.0, 100.0]),
            10,
            items.iter().copied(),
        );
        let rt = RTree::from_items(SplitStrategy::Quadratic, items.iter().copied());
        let queries: Vec<scq_bbox::CornerQuery<2>> = (0..16)
            .map(|i| {
                let x = (i * 6) as f64;
                scq_bbox::CornerQuery::unconstrained()
                    .and_overlaps(&Bbox::new([x, x], [x + 8.0, x + 8.0]))
            })
            .collect();
        let run = |f: &dyn Fn(&scq_bbox::CornerQuery<2>, &mut Vec<u64>)| {
            let mut out = Vec::new();
            let t = Instant::now();
            for q in &queries {
                out.clear();
                f(q, &mut out);
            }
            t.elapsed().as_secs_f64() * 1e3
        };
        let tz = run(&|q, out| z.query_corner(q, out));
        let tr = run(&|q, out| rt.query_corner(q, out));
        println!("| {n} | {tz:.3} | {tr:.3} | |");
    }
}

fn b11() {
    println!("\n## B11 — sharded database (z-order range partitioning)");
    println!("| shards | smuggler ms | fan-out ms | district ms | shards pruned (district) |");
    println!("|---|---|---|---|---|");
    for n_shards in [1usize, 4, 8, 16] {
        let (db, sq, dq) = sharded_smuggler_setup(1120, 120, n_shards);
        let (_, t_s) = time(|| {
            scq_shard::execute(&db, &sq, IndexKind::RTree, scq_engine::ExecOptions::all()).unwrap()
        });
        let (_, t_f) = time(|| {
            scq_shard::execute_fanout(&db, &sq, IndexKind::RTree, scq_engine::ExecOptions::all())
                .unwrap()
        });
        let (d, t_d) = time(|| {
            scq_shard::execute(&db, &dq, IndexKind::RTree, scq_engine::ExecOptions::all()).unwrap()
        });
        println!(
            "| {n_shards} | {t_s:.2} | {t_f:.2} | {t_d:.2} | {} |",
            d.stats.shards_pruned
        );
    }
}

/// Median of `reps` timed runs of `f`, in milliseconds.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// CI smoke preset: a handful of representative measurements on small
/// inputs, emitted as a JSON artifact (`BENCH_ci.json`) so the perf
/// trajectory across PRs is machine-readable. Runs in seconds — it
/// exists to catch order-of-magnitude regressions and keep the bench
/// path building, not to replace `cargo bench`.
fn smoke(path: &str) {
    let mut rows: Vec<(&str, f64)> = Vec::new();

    // Join executors on the small smuggler map.
    let (db, q) = smuggler_setup(1120, 120);
    rows.push((
        "b1_bbox_rtree_120_roads_ms",
        median_ms(5, || {
            bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        }),
    ));
    rows.push((
        "b1_triangular_120_roads_ms",
        median_ms(5, || {
            triangular_execute(&db, &q).unwrap();
        }),
    ));

    // Range-query latency, 16 mixed probes per run.
    let items = random_bboxes(7, 10_000, 3.0);
    let rt = RTree::from_items(SplitStrategy::Quadratic, items.iter().copied());
    let grid = GridFile::bulk_load(32, items.iter().copied());
    let queries: Vec<scq_bbox::CornerQuery<2>> = (0..16)
        .map(|i| {
            let x = (i * 6) as f64;
            scq_bbox::CornerQuery::unconstrained()
                .and_overlaps(&Bbox::new([x, x], [x + 8.0, x + 8.0]))
        })
        .collect();
    let mut out = Vec::new();
    rows.push((
        "b4_rtree_10k_16_queries_ms",
        median_ms(5, || {
            for q in &queries {
                out.clear();
                rt.query_corner(q, &mut out);
            }
        }),
    ));
    rows.push((
        "b4_gridfile_10k_16_queries_ms",
        median_ms(5, || {
            for q in &queries {
                out.clear();
                grid.query_corner(q, &mut out);
            }
        }),
    ));

    // Incremental mutation maintenance: seeded churn over two
    // collections, all three indexes maintained per op.
    rows.push((
        "mutation_churn_4k_ops_ms",
        median_ms(3, || {
            let mut db = scq_engine::SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
            let a = db.collection("a");
            let b = db.collection("b");
            scq_engine::workload::churn(&mut db, 99, &[a, b], 4_000);
        }),
    ));

    // Snapshot round trip of a mutated database.
    let mut snap_db = scq_engine::SpatialDatabase::new(AaBox::new([0.0, 0.0], [1000.0, 1000.0]));
    let a = snap_db.collection("a");
    let b = snap_db.collection("b");
    scq_engine::workload::churn(&mut snap_db, 7, &[a, b], 2_000);
    rows.push((
        "snapshot_roundtrip_churned_ms",
        median_ms(5, || {
            let bytes = scq_engine::snapshot::save(&snap_db);
            let _db: scq_engine::SpatialDatabase<2> = scq_engine::snapshot::load(&bytes).unwrap();
        }),
    ));

    // Sharded preset: the same smuggler workload partitioned across 8
    // z-order range shards, queried through the sharded view. The
    // district query's containment row must let the router prune — the
    // assert keeps the pruning property from silently regressing.
    let (sharded, sq, dq) = sharded_smuggler_setup(1120, 120, 8);
    rows.push((
        "sharded_b1_bbox_rtree_8shards_120_roads_ms",
        median_ms(5, || {
            scq_shard::execute(
                &sharded,
                &sq,
                IndexKind::RTree,
                scq_engine::ExecOptions::all(),
            )
            .unwrap();
        }),
    ));
    rows.push((
        "sharded_fanout_rtree_8shards_120_roads_ms",
        median_ms(5, || {
            scq_shard::execute_fanout(
                &sharded,
                &sq,
                IndexKind::RTree,
                scq_engine::ExecOptions::all(),
            )
            .unwrap();
        }),
    ));
    let district = scq_shard::execute(
        &sharded,
        &dq,
        IndexKind::RTree,
        scq_engine::ExecOptions::all(),
    )
    .unwrap();
    assert!(
        district.stats.shards_pruned > 0,
        "sharded preset lost its pruning: {}",
        district.stats
    );
    rows.push((
        "sharded_district_query_rtree_8shards_ms",
        median_ms(5, || {
            scq_shard::execute(
                &sharded,
                &dq,
                IndexKind::RTree,
                scq_engine::ExecOptions::all(),
            )
            .unwrap();
        }),
    ));
    rows.push((
        "sharded_district_shards_pruned",
        district.stats.shards_pruned as f64,
    ));
    // Tail latency through the observability plane: the district query
    // repeats into a log2-bucket histogram and the artifact carries the
    // derived p99 (gated like a latency row — faster never fails).
    // `slow_queries` counts runs at or past 100 ms and is ceiling-held
    // at 0: an in-process district query crossing that line means the
    // executor, not the runner, went sideways.
    let district_hist = scq_obs::Histogram::new();
    let mut district_slow = 0u64;
    for _ in 0..32 {
        let t0 = std::time::Instant::now();
        scq_shard::execute(
            &sharded,
            &dq,
            IndexKind::RTree,
            scq_engine::ExecOptions::all(),
        )
        .unwrap();
        let elapsed = t0.elapsed();
        district_hist.observe(elapsed);
        if elapsed.as_millis() >= 100 {
            district_slow += 1;
        }
    }
    rows.push((
        "sharded_district_p99_us",
        district_hist.snapshot().quantile_us(0.99) as f64,
    ));
    rows.push(("sharded_district_slow_queries", district_slow as f64));
    // The router's own probe histogram (every corner query above went
    // through it) proves the registry path, not just a local stopwatch.
    let probe = sharded.obs().snapshot();
    let probe_hist = probe
        .histogram("shard.probe.latency")
        .expect("probe latency histogram is always registered");
    rows.push(("sharded_probe_p99_us", probe_hist.quantile_us(0.99) as f64));
    // Failure counters, ceiling-gated at 0: on an all-local happy-path
    // run nothing may retry and no shard may be unavailable — these
    // rows existing in the artifact is what lets the gate hold the
    // degraded-read machinery at zero cost when nothing is degraded.
    assert!(
        !district.outcome.is_partial(),
        "happy-path district query must be complete"
    );
    rows.push(("sharded_district_retries", district.stats.retries as f64));
    rows.push((
        "sharded_district_shards_unavailable",
        district.stats.shards_unavailable as f64,
    ));
    rows.push((
        "sharded_district_failovers",
        district.stats.failovers as f64,
    ));
    let breaker_trips: usize = (0..sharded.n_shards())
        .map(|s| {
            scq_shard::ShardBackend::health(sharded.backend(s))
                .iter()
                .map(|r| r.stats.breaker_trips)
                .sum::<usize>()
        })
        .sum();
    rows.push(("sharded_district_breaker_trips", breaker_trips as f64));
    // Cost-based planning rows. `planned_district_row_checks` is a
    // ceiling (the `_row_checks` suffix): the selectivity-planned
    // district execution is held to its baseline enumeration work, so
    // a planner change that picks a worse order — more exact row
    // checks for the same answer — trips the gate even if wall-clock
    // noise hides it.
    let planned_dq = scq_engine::with_selectivity_order(&sharded, &dq, IndexKind::RTree)
        .expect("selectivity planner runs over the sharded view");
    let planned = scq_shard::execute(
        &sharded,
        &planned_dq,
        IndexKind::RTree,
        scq_engine::ExecOptions::all(),
    )
    .unwrap();
    assert_eq!(
        planned.solutions.len(),
        district.solutions.len(),
        "selectivity planning must not change the district answer"
    );
    rows.push((
        "planned_district_row_checks",
        planned.stats.exact_row_checks as f64,
    ));
    rows.push((
        "planned_district_query_rtree_8shards_ms",
        median_ms(5, || {
            let q = scq_engine::with_selectivity_order(&sharded, &dq, IndexKind::RTree).unwrap();
            scq_shard::execute(
                &sharded,
                &q,
                IndexKind::RTree,
                scq_engine::ExecOptions::all(),
            )
            .unwrap();
        }),
    ));
    // Sibling corner-query cache: in the box join `T <= W; R <= W`
    // the R level's corner query references only the known window, so
    // every town candidate after the first reuses the cached roads
    // probe. Floor-gated: these hits vanishing means the cache broke.
    let towns = sharded
        .collection_id("towns")
        .expect("smuggler map has towns");
    let roads = sharded
        .collection_id("roads")
        .expect("smuggler map has roads");
    let boxq_sys = parse_system("T <= W; R <= W").expect("parses");
    let boxq = scq_engine::Query::new(boxq_sys)
        .known(
            "W",
            Region::from_box(AaBox::new([100.0, 100.0], [360.0, 360.0])),
        )
        .from_collection("T", towns)
        .from_collection("R", roads);
    let boxq_result = scq_shard::execute(
        &sharded,
        &boxq,
        IndexKind::RTree,
        scq_engine::ExecOptions::all(),
    )
    .unwrap();
    assert!(
        boxq_result.stats.corner_cache_hits > 0,
        "semi-join-free box join must hit the sibling corner cache: {}",
        boxq_result.stats
    );
    rows.push((
        "sharded_boxjoin_corner_cache_hits",
        boxq_result.stats.corner_cache_hits as f64,
    ));
    rows.push((
        "sharded_snapshot_roundtrip_8shards_ms",
        median_ms(5, || {
            let manifest = scq_shard::snapshot::save_manifest(&sharded);
            let payloads: Vec<_> = (0..sharded.n_shards())
                .map(|s| scq_shard::snapshot::save_shard(&sharded, s).unwrap())
                .collect();
            scq_shard::snapshot::load(&manifest, &payloads).unwrap();
        }),
    ));

    // Durability counters: one in-process WAL write/replay cycle.
    // `wal_fsync_batches` carries records-per-fsync and is floor-gated
    // (group commit must keep batching at least as well as the
    // baseline); torn tails and replay errors are ceilings held at 0 —
    // a clean log that replays with damage is a recovery bug, not
    // noise.
    {
        let dir = std::env::temp_dir().join(format!("scq_bench_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let universe = AaBox::new([0.0, 0.0], [1000.0, 1000.0]);
        let mut cfg = scq_shard::WalConfig::new(&dir);
        cfg.group_commit = std::time::Duration::from_millis(25);
        let (wal, mut db) = scq_shard::Wal::open(&cfg, universe).expect("open wal");
        let coll = db.collection("w");
        wal.append_durable(&scq_shard::wire::Request::Create { name: "w".into() })
            .expect("log create");
        let mut last = None;
        for i in 0..400u32 {
            let (x, y) = ((i % 90) as f64, ((i * 7) % 90) as f64);
            let region = Region::from_box(AaBox::new([x, y], [x + 3.0, y + 2.0]));
            db.insert(coll, region.clone());
            last = Some(
                wal.append(&scq_shard::wire::Request::Insert { coll, region })
                    .expect("append"),
            );
        }
        if let Some(ticket) = last {
            wal.wait_durable(ticket).expect("group commit lands");
        }
        let write_stats = wal.stats();
        rows.push((
            "wal_fsync_batches",
            write_stats.appended as f64 / write_stats.fsync_batches.max(1) as f64,
        ));
        let live = db.live_len(coll);
        drop(wal);
        let replay_errors = match scq_shard::Wal::open(&cfg, universe) {
            Ok((replayed_wal, replayed_db)) => {
                let s = replayed_wal.stats();
                rows.push(("wal_torn_tails", s.torn_tails as f64));
                let diverged =
                    s.replayed != write_stats.appended || replayed_db.live_len(coll) != live;
                diverged as u64 as f64
            }
            Err(_) => {
                rows.push(("wal_torn_tails", 0.0));
                1.0
            }
        };
        rows.push(("wal_replay_errors", replay_errors));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Multiplexed wire-protocol rows, measured over real sockets.
    // `mux_inflight_depth` is deterministic, not statistical: a
    // FaultProxy gate parks 8 query frames at once, so the row proves
    // 8 requests were simultaneously in flight on ONE multiplexed
    // connection (floor-gated — the depth must never decay).
    // `stream_chunks` counts the MUX_CHUNK frames of a multi-megabyte
    // snapshot answer on a raw v4 session (floor-gated — the server
    // must keep streaming chunked answers, not regress to
    // buffer-and-send). `mux_district_p99_us` is the district tail
    // latency through a real 2-shard remote cluster — the same query
    // as `sharded_district_p99_us`, but over the multiplexed wire.
    {
        use scq_shard::wire;
        use scq_shard::{
            serve_shard, ClusterSpec, Direction, FaultAction, FaultGate, FaultProxy, FaultRule,
            FrameMatch, ProbeTrace, RemoteShard, ShardBackend, ShardServerConfig,
        };
        use std::io::Write;
        use std::time::Duration;

        let universe = AaBox::new([0.0, 0.0], [1000.0, 1000.0]);
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            universe_size: 1000.0,
            ..ShardServerConfig::default()
        })
        .expect("bind shard server");
        let proxy = FaultProxy::start(&server.addr().to_string()).expect("bind proxy");
        let mut remote =
            RemoteShard::connect(&proxy.addr().to_string(), universe, Duration::from_secs(5))
                .expect("connect through the proxy");
        let c = remote.create_collection("objs").expect("create");
        remote
            .insert(c, Region::from_box(AaBox::new([10.0, 10.0], [15.0, 15.0])))
            .expect("insert");

        let gate = FaultGate::new();
        proxy.inject(FaultRule {
            direction: Direction::ClientToServer,
            matches: FrameMatch::Opcode(wire::OP_QUERY),
            action: FaultAction::Hold(gate.clone()),
            remaining: 8,
            skip: 0,
        });
        {
            let remote = &remote;
            std::thread::scope(|scope| {
                let waiters: Vec<_> = (0..8)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            remote
                                .try_corner_query(
                                    c,
                                    IndexKind::RTree,
                                    &scq_bbox::CornerQuery::unconstrained(),
                                    &mut out,
                                    &mut ProbeTrace::default(),
                                )
                                .expect("held query completes once the gate opens");
                            out.len()
                        })
                    })
                    .collect();
                assert!(
                    gate.wait_for_holding(8, Duration::from_secs(30)),
                    "8 concurrent queries must park at the gate (holding = {})",
                    gate.holding()
                );
                gate.open();
                for w in waiters {
                    assert_eq!(w.join().expect("no panic"), 1);
                }
            });
        }
        let stats = remote.pool_stats();
        assert_eq!(
            stats.created, 1,
            "one connection must carry the whole depth: {stats:?}"
        );
        rows.push(("mux_inflight_depth", stats.peak_in_flight as f64));

        // Push the snapshot past several chunks with fat (64-box)
        // regions, then count the stream frames on a raw socket.
        for i in 0..2000u64 {
            let x = (i % 40) as f64 * 2.0;
            let y = (i / 40) as f64 * 2.0;
            let cells = (0..64u64).map(|j| {
                let fx = x + (j % 8) as f64 * 0.2;
                let fy = y + (j / 8) as f64 * 0.2;
                AaBox::new([fx, fy], [fx + 0.1, fy + 0.1])
            });
            remote
                .insert(c, Region::from_boxes(cells))
                .expect("insert fat region");
        }
        let mut sock = std::net::TcpStream::connect(server.addr()).expect("raw connect");
        sock.write_all(
            &wire::frame(&wire::encode_request(&wire::Request::Hello {
                version: wire::WIRE_VERSION,
            }))
            .expect("frame hello"),
        )
        .expect("send hello");
        let hello = wire::read_frame(&mut sock)
            .expect("read hello")
            .expect("hello reply");
        match wire::decode_response(&hello).expect("decode hello") {
            wire::Response::Hello { version } => assert!(version >= wire::MUX_MIN_VERSION),
            other => panic!("unexpected handshake reply: {other:?}"),
        }
        sock.write_all(
            &wire::frame(&wire::encode_mux(
                wire::MUX_REQ,
                1,
                &wire::encode_request(&wire::Request::SnapshotRead),
            ))
            .expect("frame snapshot request"),
        )
        .expect("send snapshot request");
        let mut chunks = 0u64;
        let mut streamed = 0usize;
        loop {
            let payload = wire::read_frame(&mut sock)
                .expect("read stream frame")
                .expect("stream must end with MUX_END, not EOF");
            let f = wire::decode_mux(&payload).expect("mux frame");
            assert_eq!(f.id, 1, "stream frames carry the request id");
            match f.kind {
                wire::MUX_CHUNK => {
                    chunks += 1;
                    streamed += f.body.len();
                }
                wire::MUX_END => break,
                wire::MUX_RESP => {
                    panic!("a multi-megabyte answer must stream, got one MUX_RESP")
                }
                k => panic!("unexpected mux kind 0x{k:02X}"),
            }
        }
        assert!(
            chunks >= 2,
            "snapshot must span chunks (got {chunks} chunks, {streamed} bytes)"
        );
        rows.push(("stream_chunks", chunks as f64));
        drop(sock);
        drop(remote);
        drop(proxy);
        server.shutdown();

        // District tail latency over the wire: a 2-shard remote
        // cluster on multiplexed connections, same workload and query
        // shape as the in-process district rows.
        let servers: Vec<_> = (0..2)
            .map(|_| {
                serve_shard(&ShardServerConfig {
                    addr: "127.0.0.1:0".into(),
                    threads: 2,
                    universe_size: 1000.0,
                    ..ShardServerConfig::default()
                })
                .expect("bind cluster shard")
            })
            .collect();
        let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();
        let spec = ClusterSpec::balanced(universe, 6, &addrs);
        let mut rdb = spec
            .connect(Duration::from_secs(15))
            .expect("connect cluster");
        let mut plain = scq_engine::SpatialDatabase::new(universe);
        let w = scq_engine::workload::map_workload(
            &mut plain,
            1120,
            &scq_engine::workload::MapParams {
                n_states: 8,
                n_towns: 30,
                n_roads: 120,
                useful_road_fraction: 0.05,
            },
        );
        for coll in plain.collections() {
            let dst = rdb.collection(plain.collection_name(coll));
            assert_eq!(dst, coll, "collection ids stay aligned");
            for index in plain.object_indices(coll) {
                let obj = scq_engine::ObjectRef {
                    collection: coll,
                    index,
                };
                rdb.insert(dst, plain.region(obj).clone());
            }
        }
        let district_sys = scq_core::parse_system("T <= W; R & T != 0").expect("parses");
        let rdq = scq_engine::Query::new(district_sys)
            .known(
                "W",
                Region::from_box(AaBox::new([100.0, 100.0], [360.0, 360.0])),
            )
            .from_collection("T", w.towns)
            .from_collection("R", w.roads);
        let hist = scq_obs::Histogram::new();
        for _ in 0..32 {
            let t0 = std::time::Instant::now();
            let res =
                scq_shard::execute(&rdb, &rdq, IndexKind::RTree, scq_engine::ExecOptions::all())
                    .expect("remote district query");
            assert!(
                !res.outcome.is_partial(),
                "remote district query must be complete"
            );
            hist.observe(t0.elapsed());
        }
        rows.push((
            "mux_district_p99_us",
            hist.snapshot().quantile_us(0.99) as f64,
        ));
        drop(rdb);
        for s in servers {
            s.shutdown();
        }
    }

    let mut json = String::from("{\n  \"schema\": 1,\n  \"preset\": \"ci\",\n  \"benches\": [\n");
    for (i, (name, ms)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"median_ms\": {ms:.4}}}{comma}\n"
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).expect("write bench artifact");
    println!("wrote {} measurements to {path}", rows.len());
}

/// `--gate <baseline.json> <current.json> [factor]`: the CI perf
/// regression gate. Exits nonzero when any `*_ms` median regresses
/// beyond `factor`× its baseline (default 10× — loose enough for
/// shared-runner noise, tight enough to catch order-of-magnitude
/// regressions) or any count row (e.g. shards pruned) decays.
fn gate(baseline_path: &str, current_path: &str, factor: f64) {
    let read = |path: &str| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read bench artifact {path}: {e}"));
        scq_bench::parse_bench_json(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    };
    let gate_rows = scq_bench::gate_rows(&read(baseline_path), &read(current_path), factor);
    let failed = gate_rows.iter().filter(|r| !r.passed).count();
    for r in &gate_rows {
        if r.passed {
            println!("{}", r.detail);
        } else {
            eprintln!("REGRESSION: {}", r.detail);
        }
    }
    step_summary(&gate_rows, baseline_path, factor, failed);
    if failed > 0 {
        eprintln!("bench gate FAILED ({factor}x tolerance vs {baseline_path})");
        std::process::exit(1);
    }
    println!("bench gate passed ({factor}x tolerance vs {baseline_path})");
}

/// Appends the gate's per-row pass/fail table to the file named by
/// `$GITHUB_STEP_SUMMARY` when set, so a CI run shows the verdicts on
/// the workflow summary page without digging through logs. A missing
/// or unwritable summary file never fails the gate — the gate's
/// verdict is the exit code, the table is a courtesy.
fn step_summary(rows: &[scq_bench::GateRow], baseline_path: &str, factor: f64, failed: usize) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut md = format!(
        "### Bench gate ({factor}x tolerance vs `{baseline_path}`)\n\n\
         | row | status | detail |\n|---|---|---|\n"
    );
    for r in rows {
        let status = if r.passed { "✅ pass" } else { "❌ FAIL" };
        let prefix = format!("{}: ", r.name);
        let detail = r.detail.strip_prefix(&prefix).unwrap_or(&r.detail);
        md.push_str(&format!("| `{}` | {status} | {detail} |\n", r.name));
    }
    md.push_str(&format!(
        "\n**{}** rows checked, **{failed}** failing.\n\n",
        rows.len()
    ));
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            if let Err(e) = f.write_all(md.as_bytes()) {
                eprintln!("write step summary {path}: {e}");
            }
        }
        Err(e) => eprintln!("open step summary {path}: {e}"),
    }
}

/// Open file descriptors of this process, via `/proc` (Linux-only, the
/// only platform CI runs on). 0 when `/proc` is unavailable, which
/// disables the leak assertion rather than failing it spuriously.
fn count_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count())
        .unwrap_or(0)
}

/// Live threads of this process, from `/proc/self/status`.
fn count_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// `--soak [seconds]`: the CI soak driver. Boots a 2-shard WAL-backed
/// cluster behind FaultProxies, runs 64 concurrent query clients over
/// multiplexed connections while the proxies garble and sever streamed
/// response frames, and then proves the damage stayed contained:
/// healed answers equal the pre-fault oracle, every shard's integrity
/// check is clean, at least one connection carried ≥8 requests in
/// flight, no file descriptors or threads leaked, and both WALs reopen
/// with zero torn tails. Panics (nonzero exit) on any violation.
fn soak(budget_secs: u64) {
    use scq_shard::{
        serve_shard, ClusterSpec, Direction, FaultAction, FaultProxy, FaultRule, FrameMatch,
        ShardBackend, ShardServerConfig, Wal, WalConfig,
    };
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    let t_start = Instant::now();
    let universe = AaBox::new([0.0, 0.0], [1000.0, 1000.0]);
    let base = std::env::temp_dir().join(format!("scq_soak_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let mut servers = Vec::new();
    let mut proxies = Vec::new();
    for i in 0..2 {
        let mut wal = WalConfig::new(base.join(format!("wal{i}")));
        wal.group_commit = Duration::from_millis(25);
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            universe_size: 1000.0,
            wal: Some(wal),
            ..ShardServerConfig::default()
        })
        .expect("bind soak shard");
        proxies.push(FaultProxy::start(&server.addr().to_string()).expect("bind soak proxy"));
        servers.push(server);
    }
    let addrs: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();
    let spec = ClusterSpec::balanced(universe, 6, &addrs);
    let mut db = spec
        .connect(Duration::from_secs(15))
        .expect("connect soak cluster");

    // Clean mutation phase: a deterministic fixture, no faults. The
    // fault phase below is read-only — reads retry transparently,
    // mutations never do, so corrupting a mutation's reply would turn
    // a transport fault into a (correct but noisy) client error.
    let towns = db.collection("towns");
    let roads = db.collection("roads");
    for i in 0..400u64 {
        let x = (i % 20) as f64 * 48.0 + 4.0;
        let y = (i / 20) as f64 * 48.0 + 4.0;
        db.insert(
            towns,
            Region::from_box(AaBox::new([x, y], [x + 6.0, y + 6.0])),
        );
        db.insert(
            roads,
            Region::from_box(AaBox::new([x - 2.0, y + 1.0], [x + 10.0, y + 2.5])),
        );
    }
    let sys = scq_core::parse_system("T <= W; R & T != 0").expect("parses");
    let dq = scq_engine::Query::new(sys)
        .known(
            "W",
            Region::from_box(AaBox::new([100.0, 100.0], [360.0, 360.0])),
        )
        .from_collection("T", towns)
        .from_collection("R", roads);
    let run = |db: &scq_shard::ShardedDatabase<scq_shard::RemoteShard>| {
        scq_shard::execute(db, &dq, IndexKind::RTree, scq_engine::ExecOptions::all())
    };
    let oracle = run(&db).expect("clean oracle query");
    assert!(!oracle.outcome.is_partial(), "oracle must be complete");
    let oracle_solutions = oracle.solutions.len();
    assert!(oracle_solutions > 0, "the soak query must select something");
    for s in 0..db.n_shards() {
        for h in ShardBackend::health(db.backend(s)) {
            assert_eq!(
                h.stats.created, 1,
                "the clean phase must multiplex on one connection per shard: {h:?}"
            );
            assert!(h.stats.wire_version >= 4, "soak speaks v4: {h:?}");
        }
    }

    // Leak baseline: everything long-lived (servers, proxies, one mux
    // connection per shard with its reader thread) already exists.
    let fd_baseline = count_fds();
    let thread_baseline = count_threads();

    let queries_done = AtomicUsize::new(0);
    let mut rounds = 0u64;
    let budget = Duration::from_secs(budget_secs);
    while rounds == 0 || t_start.elapsed() < budget {
        rounds += 1;
        for p in &proxies {
            // Transport faults only: a mid-frame close (Truncate) and
            // outright severs. Both surface as transport errors, which
            // the degraded-read path retries or reports as Partial.
            // Garble is deliberately absent here — a corrupted-but-
            // complete frame is a *protocol* error, which the router
            // treats as a bug (panic), not as weather; it has its own
            // scoped unit tests.
            p.inject(FaultRule {
                direction: Direction::ServerToClient,
                matches: FrameMatch::Any,
                action: FaultAction::Truncate { keep: 100 },
                remaining: 2,
                skip: 3,
            });
            p.inject(FaultRule {
                direction: Direction::ServerToClient,
                matches: FrameMatch::Any,
                action: FaultAction::Sever,
                remaining: 2,
                skip: 40,
            });
        }
        std::thread::scope(|scope| {
            for _ in 0..64 {
                let db = &db;
                let queries_done = &queries_done;
                let run = &run;
                scope.spawn(move || {
                    for _ in 0..4 {
                        // Degraded (partial or failed) reads are
                        // expected mid-fault; what matters is the
                        // post-heal convergence check below.
                        let _ = run(db);
                        queries_done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        for p in &proxies {
            p.clear_rules();
            p.heal();
        }
        let verdict = run(&db).expect("query after faults heal");
        assert!(
            !verdict.outcome.is_partial(),
            "healed cluster must answer completely (round {rounds})"
        );
        assert_eq!(
            verdict.solutions.len(),
            oracle_solutions,
            "faults must never change answers (round {rounds})"
        );
    }

    // Zero desyncs: every shard's integrity check stays clean.
    for s in 0..db.n_shards() {
        let complaints = db.backend(s).check();
        assert!(complaints.is_empty(), "shard {s} integrity: {complaints:?}");
    }
    let peak = (0..db.n_shards())
        .flat_map(|s| ShardBackend::health(db.backend(s)))
        .map(|h| h.stats.peak_in_flight)
        .max()
        .unwrap_or(0);
    assert!(
        peak >= 8,
        "64 clients over 2 shards must drive ≥8 concurrent in-flight requests (peak {peak})"
    );

    // Leak check: severed connections' reader and proxy pump threads
    // must exit and their sockets close. Poll briefly — thread exit is
    // asynchronous — then fail hard.
    let mut settled = false;
    for _ in 0..100 {
        if count_fds() <= fd_baseline && count_threads() <= thread_baseline {
            settled = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        settled,
        "leaked fds or threads: fds {} (baseline {fd_baseline}), threads {} (baseline {thread_baseline})",
        count_fds(),
        count_threads()
    );

    drop(db);
    drop(proxies);
    for s in servers {
        s.shutdown();
    }
    // Durability: both WALs reopen with zero torn tails after the
    // whole fault schedule.
    for i in 0..2 {
        let cfg = WalConfig::new(base.join(format!("wal{i}")));
        let (wal, _db) = Wal::open(&cfg, universe).expect("reopen soak wal");
        let stats = wal.stats();
        assert_eq!(
            stats.torn_tails, 0,
            "soak wal {i} must reopen with zero torn tails: {stats:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
    println!(
        "soak passed: {rounds} fault rounds, {} queries, peak in-flight {peak}, \
         fds/threads back to baseline ({fd_baseline}/{thread_baseline}), zero torn tails",
        queries_done.load(Ordering::Relaxed)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--gate") {
        let (Some(baseline), Some(current)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("usage: experiments --gate <baseline.json> <current.json> [factor]");
            std::process::exit(2);
        };
        let factor = args.get(i + 3).and_then(|f| f.parse().ok()).unwrap_or(10.0);
        gate(baseline, current, factor);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--soak") {
        let budget = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(90);
        soak(budget);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--smoke") {
        let path = args
            .get(i + 1)
            .map(String::as_str)
            .unwrap_or("BENCH_ci.json");
        smoke(path);
        return;
    }
    println!("# Experiment summary (generated by `cargo run --release -p scq-bench --bin experiments`)\n");
    b1();
    b2();
    b3();
    b4();
    b5();
    b6();
    b7();
    b8();
    b9();
    b10();
    b11();
}
