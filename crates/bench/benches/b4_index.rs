//! B4 — substrate cost: range queries on the R-tree (linear and
//! quadratic splits), the corner-space grid file, and the scan baseline.
//!
//! Series: query latency vs database size for overlap, containment and
//! combined Figure-3 queries.

use criterion::{BenchmarkId, Criterion};
use scq_bbox::{Bbox, CornerQuery};
use scq_bench::{quick_criterion, random_bboxes};
use scq_index::{GridFile, RTree, ScanIndex, SpatialIndex, SplitStrategy};
use std::hint::black_box;

fn probe_queries() -> Vec<CornerQuery<2>> {
    (0..16)
        .map(|i| {
            let x = (i * 6) as f64;
            let probe = Bbox::new([x, x], [x + 8.0, x + 8.0]);
            let inner = Bbox::new([x + 2.0, x + 2.0], [x + 3.0, x + 3.0]);
            match i % 3 {
                0 => CornerQuery::unconstrained().and_overlaps(&probe),
                1 => CornerQuery::unconstrained().and_contained_in(&probe),
                _ => CornerQuery::unconstrained()
                    .and_contained_in(&probe)
                    .and_contains(&inner)
                    .and_overlaps(&inner),
            }
        })
        .collect()
}

fn run_all<I: SpatialIndex<2>>(idx: &I, queries: &[CornerQuery<2>], out: &mut Vec<u64>) -> usize {
    let mut total = 0;
    for q in queries {
        out.clear();
        idx.query_corner(q, out);
        total += out.len();
    }
    total
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_index");
    let queries = probe_queries();
    for &n in &[1_000usize, 10_000, 50_000] {
        let items = random_bboxes(7, n, 3.0);
        let rt_lin = RTree::from_items(SplitStrategy::Linear, items.iter().copied());
        let rt_quad = RTree::from_items(SplitStrategy::Quadratic, items.iter().copied());
        let grid = GridFile::bulk_load(32, items.iter().copied());
        let scan = ScanIndex::from_items(items.iter().copied());

        let mut out = Vec::new();
        let hits = run_all(&scan, &queries, &mut out);
        println!("B4 n={n}: {hits} total hits over {} queries", queries.len());

        group.bench_with_input(BenchmarkId::new("rtree_linear", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| black_box(run_all(&rt_lin, &queries, &mut out)))
        });
        group.bench_with_input(BenchmarkId::new("rtree_quadratic", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| black_box(run_all(&rt_quad, &queries, &mut out)))
        });
        group.bench_with_input(BenchmarkId::new("gridfile", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| black_box(run_all(&grid, &queries, &mut out)))
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| black_box(run_all(&scan, &queries, &mut out)))
        });
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
