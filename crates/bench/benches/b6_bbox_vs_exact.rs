//! B6 — the paper's §4 motivation for compile-time bounding-box
//! functions: evaluating `L/U` on boxes is much cheaper than evaluating
//! the Boolean functions on exact regions, at the price of false
//! positives that the exact verification then rejects.
//!
//! Measures per-candidate filter cost (bbox-function filter vs exact
//! region row check) and prints the observed false-positive rate of the
//! bbox filter for increasingly fragmented regions.

use criterion::{BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use scq_algebra::Assignment;
use scq_bbox::Bbox;
use scq_bench::quick_criterion;
use scq_core::plan::BboxPlan;
use scq_core::{parse_system, triangularize};
use scq_region::{AaBox, Region, RegionAlgebra};
use std::hint::black_box;

/// Regions made of `frags` fragments each.
fn fragmented_regions(seed: u64, n: usize, frags: usize) -> Vec<Region<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Region::from_boxes((0..frags).map(|_| {
                let lo = [rng.random_range(0.0..90.0), rng.random_range(0.0..90.0)];
                let w = [rng.random_range(1.0..8.0), rng.random_range(1.0..8.0)];
                AaBox::new(lo, [lo[0] + w[0], lo[1] + w[1]])
            }))
        })
        .collect()
}

/// Candidate X regions stratified by outcome: one third are shrunken
/// sub-boxes of B fragments (exact passes), one third are jittered
/// fragment copies (mostly bbox-only passes — false positives), one
/// third are uniform noise (mostly misses).
fn candidates_near(a: &Region<2>, b: &Region<2>, seed: u64, n: usize) -> Vec<Region<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<AaBox<2>> = a.boxes().iter().chain(b.boxes().iter()).copied().collect();
    let b_frags: Vec<AaBox<2>> = b.boxes().to_vec();
    (0..n)
        .map(|i| match i % 3 {
            0 => {
                // sub-box of a B fragment: X ⊆ B ⊆ A∪B and X∩B ≠ ∅.
                let src = b_frags[rng.random_range(0..b_frags.len())];
                let (lo, hi) = (src.lo(), src.hi());
                let cx = [lo[0] / 2.0 + hi[0] / 2.0, lo[1] / 2.0 + hi[1] / 2.0];
                Region::from_box(AaBox::new(
                    [lo[0] / 2.0 + cx[0] / 2.0, lo[1] / 2.0 + cx[1] / 2.0],
                    [hi[0] / 2.0 + cx[0] / 2.0, hi[1] / 2.0 + cx[1] / 2.0],
                ))
            }
            1 => {
                // jittered fragment copy: bbox often still fits, region
                // usually does not.
                let src = pool[rng.random_range(0..pool.len())];
                let (lo, hi) = (src.lo(), src.hi());
                let jit = rng.random_range(0.5..4.0);
                Region::from_box(AaBox::new(
                    [lo[0] + jit * 0.5, lo[1] + jit],
                    [hi[0] + jit, hi[1] + jit * 1.5],
                ))
            }
            _ => {
                let lo = [rng.random_range(0.0..90.0), rng.random_range(0.0..90.0)];
                let w = [rng.random_range(1.0..8.0), rng.random_range(1.0..8.0)];
                Region::from_box(AaBox::new(lo, [lo[0] + w[0], lo[1] + w[1]]))
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b6_bbox_vs_exact");
    // Row: X ⊆ A ∪ B, X ∩ B ≠ ∅ — upper bound is a real bbox function.
    let sys = parse_system("X <= A | B; X & B != 0").unwrap();
    let (a, b, x) = (
        sys.table.get("A").unwrap(),
        sys.table.get("B").unwrap(),
        sys.table.get("X").unwrap(),
    );
    let tri = triangularize(&sys.normalize(), &[a, b, x]);
    let plan: BboxPlan<2> = BboxPlan::compile(&tri);
    let row = plan.row_for(x).unwrap();
    let alg = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));

    for &frags in &[1usize, 4, 16] {
        let known = fragmented_regions(5, 2, frags);
        let candidates = candidates_near(&known[0], &known[1], 77, 400);
        let mut var_boxes = [Bbox::Empty; 3];
        var_boxes[a.index()] = known[0].bbox();
        var_boxes[b.index()] = known[1].bbox();
        let lookup = move |i: usize| var_boxes.get(i).copied().unwrap_or(Bbox::Empty);

        // Printed row: false-positive rate of the bbox filter.
        let q = row.corner_query(lookup);
        let mut assign = Assignment::new();
        assign.bind(a, known[0].clone());
        assign.bind(b, known[1].clone());
        let mut pass_bbox = 0usize;
        let mut pass_exact = 0usize;
        for cand in &candidates {
            if q.matches(&cand.bbox()) {
                pass_bbox += 1;
                assign.bind(x, cand.clone());
                if row.exact.check(&alg, &assign).unwrap() {
                    pass_exact += 1;
                }
            }
        }
        println!(
            "B6 frags={frags}: bbox passes {pass_bbox}/400, exact {pass_exact} (fp rate {:.1}%)",
            100.0 * (pass_bbox - pass_exact) as f64 / pass_bbox.max(1) as f64
        );

        group.bench_with_input(BenchmarkId::new("bbox_filter", frags), &frags, |bch, _| {
            bch.iter(|| {
                let q = row.corner_query(lookup);
                let mut n = 0;
                for cand in &candidates {
                    if q.matches(&cand.bbox()) {
                        n += 1;
                    }
                }
                black_box(n)
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_rows", frags), &frags, |bch, _| {
            let mut assign = Assignment::new();
            assign.bind(a, known[0].clone());
            assign.bind(b, known[1].clone());
            bch.iter(|| {
                let mut n = 0;
                for cand in &candidates {
                    assign.bind(x, cand.clone());
                    if row.exact.check(&alg, &assign).unwrap() {
                        n += 1;
                    }
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
