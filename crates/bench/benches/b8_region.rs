//! B8 — substrate cost: exact region-algebra operations (union,
//! intersection, complement, symmetric difference) as a function of
//! fragment count. This is the cost the paper's compile-time bbox
//! functions avoid at query time (see B6 for the head-to-head).

use criterion::{BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use scq_algebra::BooleanAlgebra;
use scq_bench::quick_criterion;
use scq_region::{AaBox, Region, RegionAlgebra};
use std::hint::black_box;

fn region_with_fragments(seed: u64, frags: usize) -> Region<2> {
    let mut rng = StdRng::seed_from_u64(seed);
    Region::from_boxes((0..frags).map(|_| {
        let lo = [rng.random_range(0.0..90.0), rng.random_range(0.0..90.0)];
        let w = [rng.random_range(0.5..6.0), rng.random_range(0.5..6.0)];
        AaBox::new(lo, [lo[0] + w[0], lo[1] + w[1]])
    }))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b8_region");
    let alg = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
    for &frags in &[4usize, 16, 64, 256] {
        let a = region_with_fragments(1, frags);
        let b = region_with_fragments(2, frags);
        println!(
            "B8 frags={frags}: |a|={} |b|={} (stored fragments)",
            a.fragment_count(),
            b.fragment_count()
        );
        group.bench_with_input(BenchmarkId::new("union", frags), &frags, |bch, _| {
            bch.iter(|| black_box(a.union(&b).fragment_count()))
        });
        group.bench_with_input(BenchmarkId::new("intersection", frags), &frags, |bch, _| {
            bch.iter(|| black_box(a.intersection(&b).fragment_count()))
        });
        group.bench_with_input(BenchmarkId::new("complement", frags), &frags, |bch, _| {
            bch.iter(|| black_box(alg.complement(&a).fragment_count()))
        });
        group.bench_with_input(BenchmarkId::new("sym_diff", frags), &frags, |bch, _| {
            bch.iter(|| black_box(a.sym_diff(&b).fragment_count()))
        });
        group.bench_with_input(BenchmarkId::new("bbox", frags), &frags, |bch, _| {
            bch.iter(|| black_box(a.bbox()))
        });
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
