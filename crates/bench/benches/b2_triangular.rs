//! B2 — the paper's §4 complexity remark: Algorithm 1 is exponential in
//! the number of variables but runs at query-compilation time, where
//! systems are small.
//!
//! Series: triangularization time vs number of variables for chained
//! constraint systems (the worst realistic shape: every variable
//! interacts with its neighbours).

use criterion::{BenchmarkId, Criterion};
use scq_bench::quick_criterion;
use scq_boolean::{Formula, Var};
use scq_core::{triangularize, NormalSystem};
use std::hint::black_box;

/// A chain system over n variables:
/// eq = ⋁ᵢ (xᵢ ∧ ¬xᵢ₊₁)  (containment chain x₁ ⊆ x₂ ⊆ …)
/// neqs: overlap of consecutive pairs.
fn chain_system(n: u32) -> NormalSystem {
    let mut eq = Formula::Zero;
    let mut neqs = Vec::new();
    for i in 0..n.saturating_sub(1) {
        eq = Formula::or(
            eq,
            Formula::diff(Formula::var(Var(i)), Formula::var(Var(i + 1))),
        );
        neqs.push(Formula::and(Formula::var(Var(i)), Formula::var(Var(i + 1))));
    }
    NormalSystem { eq, neqs }
}

/// A dense system: every pair interacts (worst case).
fn dense_system(n: u32) -> NormalSystem {
    let mut eq = Formula::Zero;
    let mut neqs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            eq = Formula::or(
                eq,
                Formula::and(Formula::var(Var(i)), Formula::not(Formula::var(Var(j)))),
            );
            if (i + j) % 3 == 0 {
                neqs.push(Formula::and(Formula::var(Var(i)), Formula::var(Var(j))));
            }
        }
    }
    NormalSystem { eq, neqs }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_triangular");
    for n in [2u32, 4, 6, 8, 10] {
        let sys = chain_system(n);
        let order: Vec<Var> = (0..n).map(Var).collect();
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, _| {
            b.iter(|| black_box(triangularize(&sys, &order).rows.len()))
        });
    }
    for n in [2u32, 3, 4, 5, 6] {
        let sys = dense_system(n);
        let order: Vec<Var> = (0..n).map(Var).collect();
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| black_box(triangularize(&sys, &order).rows.len()))
        });
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
