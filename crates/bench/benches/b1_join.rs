//! B1 — the paper's §1 claim: eliminating useless partial solution
//! tuples early (triangular rows) and filtering retrievals with range
//! queries (bbox plans) beats the naive nested-loop join.
//!
//! Series: execution time of the smuggler 3-way join vs database size,
//! for naive / triangular-exact / bbox(R-tree) / bbox(grid file).

use criterion::{BenchmarkId, Criterion};
use scq_bench::{quick_criterion, smuggler_setup};
use scq_engine::{bbox_execute, naive_execute, triangular_execute, IndexKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_join");
    for &n_roads in &[40usize, 120, 360] {
        let (db, q) = smuggler_setup(1000 + n_roads as u64, n_roads);
        // Sanity + printed row: all executors agree on the answer count.
        let expected = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
        println!(
            "B1 n_roads={n_roads}: solutions={} bbox_partials={} ",
            expected.stats.solutions, expected.stats.partial_tuples
        );

        // Naive only at the small sizes (it is cubic in practice).
        if n_roads <= 120 {
            group.bench_with_input(BenchmarkId::new("naive", n_roads), &n_roads, |b, _| {
                b.iter(|| black_box(naive_execute(&db, &q).unwrap().stats.solutions))
            });
        }
        group.bench_with_input(BenchmarkId::new("triangular", n_roads), &n_roads, |b, _| {
            b.iter(|| black_box(triangular_execute(&db, &q).unwrap().stats.solutions))
        });
        group.bench_with_input(BenchmarkId::new("bbox_rtree", n_roads), &n_roads, |b, _| {
            b.iter(|| {
                black_box(
                    bbox_execute(&db, &q, IndexKind::RTree)
                        .unwrap()
                        .stats
                        .solutions,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("bbox_grid", n_roads), &n_roads, |b, _| {
            b.iter(|| {
                black_box(
                    bbox_execute(&db, &q, IndexKind::GridFile)
                        .unwrap()
                        .stats
                        .solutions,
                )
            })
        });
        // Ablation: retrieval-order sensitivity. The paper picks the
        // order "arbitrarily"; B,R,T retrieves the least selective
        // collection first and shows how much that costs.
        let q_bad = q.clone().with_order(&["B", "R", "T"]);
        group.bench_with_input(
            BenchmarkId::new("bbox_rtree_bad_order", n_roads),
            &n_roads,
            |b, _| {
                b.iter(|| {
                    black_box(
                        bbox_execute(&db, &q_bad, IndexKind::RTree)
                            .unwrap()
                            .stats
                            .solutions,
                    )
                })
            },
        );
        // Ablation: existence query (first solution only).
        group.bench_with_input(
            BenchmarkId::new("bbox_rtree_first", n_roads),
            &n_roads,
            |b, _| {
                b.iter(|| {
                    black_box(
                        scq_engine::bbox_execute_opts(
                            &db,
                            &q,
                            IndexKind::RTree,
                            scq_engine::ExecOptions::first(),
                        )
                        .unwrap()
                        .stats
                        .solutions,
                    )
                })
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
