//! B3 — the paper's §4 remark: computing the Blake canonical form is
//! exponential in the number of variables ("in practice this will not
//! be a problem since both algorithms are executed during query
//! compilation").
//!
//! Series: BCF time vs variable count on random sum-of-products inputs,
//! plus the classic worst-ish case of chained consensus.

use criterion::{BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scq_bench::quick_criterion;
use scq_boolean::bcf::bcf_of_sop;
use scq_boolean::random::random_sop;
use scq_boolean::{blake_canonical_form, Formula, Var};
use std::hint::black_box;

/// Chained consensus ladder: (x0∧y) ∨ (¬x0∧x1∧y) ∨ (¬x1∧x2∧y) ∨ …
/// produces a quadratic number of prime implicants.
fn ladder(n: u32) -> Formula {
    let y = Formula::var(Var(100));
    let mut f = Formula::and(Formula::var(Var(0)), y.clone());
    for i in 1..n {
        f = Formula::or(
            f,
            Formula::and_all([
                Formula::not(Formula::var(Var(i - 1))),
                Formula::var(Var(i)),
                y.clone(),
            ]),
        );
    }
    f
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b3_bcf");
    for nvars in [4u32, 6, 8, 10, 12] {
        let mut rng = StdRng::seed_from_u64(42 + nvars as u64);
        let sop = random_sop(&mut rng, nvars, nvars * 2, 3);
        group.bench_with_input(BenchmarkId::new("random_sop", nvars), &nvars, |b, _| {
            b.iter(|| black_box(bcf_of_sop(sop.clone()).len()))
        });
    }
    for n in [4u32, 8, 12, 16] {
        let f = ladder(n);
        group.bench_with_input(BenchmarkId::new("ladder", n), &n, |b, _| {
            b.iter(|| black_box(blake_canonical_form(&f).len()))
        });
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
