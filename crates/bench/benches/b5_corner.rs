//! B5 — Figure 3 ablation: answering the combined constraint
//! `a ⊑ ⌈x⌉ ⊑ b ∧ ⌈x⌉ ⊓ c ≠ ∅` with ONE corner-transform range query
//! versus three separate single-constraint queries intersected
//! afterwards.

use criterion::{BenchmarkId, Criterion};
use scq_bbox::{Bbox, CornerQuery};
use scq_bench::{quick_criterion, random_bboxes};
use scq_index::{GridFile, RTree, SpatialIndex, SplitStrategy};
use std::collections::HashSet;
use std::hint::black_box;

struct Scenario {
    a: Bbox<2>,
    b: Bbox<2>,
    c: Bbox<2>,
}

fn scenarios() -> Vec<Scenario> {
    (0..8)
        .map(|i| {
            let base = (i * 11) as f64;
            Scenario {
                a: Bbox::new([base + 3.0, base + 3.0], [base + 4.0, base + 4.0]),
                b: Bbox::new([base, base], [base + 20.0, base + 20.0]),
                c: Bbox::new([base + 8.0, base + 8.0], [base + 12.0, base + 12.0]),
            }
        })
        .collect()
}

fn combined<I: SpatialIndex<2>>(idx: &I, s: &Scenario, out: &mut Vec<u64>) -> usize {
    out.clear();
    let q = CornerQuery::unconstrained()
        .and_contains(&s.a)
        .and_contained_in(&s.b)
        .and_overlaps(&s.c);
    idx.query_corner(&q, out);
    out.len()
}

fn three_pass<I: SpatialIndex<2>>(idx: &I, s: &Scenario) -> usize {
    let mut q1 = Vec::new();
    idx.query_corner(&CornerQuery::unconstrained().and_contains(&s.a), &mut q1);
    let mut q2 = Vec::new();
    idx.query_corner(
        &CornerQuery::unconstrained().and_contained_in(&s.b),
        &mut q2,
    );
    let mut q3 = Vec::new();
    idx.query_corner(&CornerQuery::unconstrained().and_overlaps(&s.c), &mut q3);
    let s1: HashSet<u64> = q1.into_iter().collect();
    let s2: HashSet<u64> = q2.into_iter().collect();
    q3.into_iter()
        .filter(|id| s1.contains(id) && s2.contains(id))
        .count()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b5_corner");
    let ss = scenarios();
    for &n in &[1_000usize, 10_000, 50_000] {
        let items = random_bboxes(21, n, 4.0);
        let rtree = RTree::from_items(SplitStrategy::Quadratic, items.iter().copied());
        let grid = GridFile::bulk_load(32, items.iter().copied());

        // correctness cross-check + printed row
        let mut out = Vec::new();
        let single: usize = ss.iter().map(|s| combined(&rtree, s, &mut out)).sum();
        let multi: usize = ss.iter().map(|s| three_pass(&rtree, s)).sum();
        assert_eq!(single, multi);
        println!("B5 n={n}: combined hits={single}");

        group.bench_with_input(BenchmarkId::new("one_query_rtree", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                black_box(
                    ss.iter()
                        .map(|s| combined(&rtree, s, &mut out))
                        .sum::<usize>(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("three_pass_rtree", n), &n, |b, _| {
            b.iter(|| black_box(ss.iter().map(|s| three_pass(&rtree, s)).sum::<usize>()))
        });
        group.bench_with_input(BenchmarkId::new("one_query_grid", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                black_box(
                    ss.iter()
                        .map(|s| combined(&grid, s, &mut out))
                        .sum::<usize>(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("three_pass_grid", n), &n, |b, _| {
            b.iter(|| black_box(ss.iter().map(|s| three_pass(&grid, s)).sum::<usize>()))
        });
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
