//! B9 — the constructive solver (Theorem 7 made executable): cost of
//! synthesizing region assignments for chain systems of growing length,
//! and of rejecting unsatisfiable inputs.

use criterion::{BenchmarkId, Criterion};
use scq_algebra::Assignment;
use scq_bench::quick_criterion;
use scq_boolean::{Formula, Var};
use scq_core::constraint::{normalize, Constraint};
use scq_core::{solve, triangularize};
use scq_region::{AaBox, Region, RegionAlgebra};
use std::hint::black_box;

fn v(i: u32) -> Formula {
    Formula::var(Var(i))
}

/// x0 ⊂ x1 ⊂ … ⊂ x_{n-1}, x0 ≠ ∅, all inside a known envelope.
fn chain(n: u32) -> Vec<Constraint> {
    let mut cs = vec![Constraint::NotSubset(v(0), Formula::Zero)];
    for i in 0..n - 1 {
        cs.push(Constraint::ProperSubset(v(i), v(i + 1)));
    }
    cs.push(Constraint::Subset(v(n - 1), v(n))); // envelope var
    cs
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b9_solver");
    let alg = RegionAlgebra::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
    for n in [2u32, 4, 6, 8] {
        let sys = normalize(&chain(n));
        let mut order: Vec<Var> = vec![Var(n)];
        order.extend((0..n).rev().map(Var));
        let tri = triangularize(&sys, &order);
        let knowns = Assignment::new().with(
            Var(n),
            Region::from_box(AaBox::new([10.0, 10.0], [90.0, 90.0])),
        );
        // sanity: it solves
        assert!(solve(&tri, &alg, &knowns).unwrap().is_some());
        group.bench_with_input(BenchmarkId::new("chain_solve", n), &n, |b, _| {
            b.iter(|| black_box(solve(&tri, &alg, &knowns).unwrap().is_some()))
        });
        // compilation separately
        group.bench_with_input(BenchmarkId::new("chain_compile", n), &n, |b, _| {
            b.iter(|| black_box(triangularize(&sys, &order).rows.len()))
        });
    }
    // unsat detection cost: contradictory chain
    let mut cs = chain(5);
    cs.push(Constraint::Subset(v(4), Formula::Zero)); // top of chain empty
    let sys = normalize(&cs);
    let mut order: Vec<Var> = vec![Var(5)];
    order.extend((0..5).rev().map(Var));
    let tri = triangularize(&sys, &order);
    let knowns = Assignment::new().with(
        Var(5),
        Region::from_box(AaBox::new([10.0, 10.0], [90.0, 90.0])),
    );
    assert!(solve(&tri, &alg, &knowns).unwrap().is_none());
    group.bench_function("unsat_detection", |b| {
        b.iter(|| black_box(solve(&tri, &alg, &knowns).unwrap().is_none()))
    });
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
