//! B10 — engine extensions: parallel execution speedup over the
//! sequential bbox executor, and the z-order index as a fourth range
//! query backend (the paper's closing remark).

use criterion::{BenchmarkId, Criterion};
use scq_bbox::CornerQuery;
use scq_bench::{quick_criterion, random_bboxes};
use scq_engine::{bbox_execute, bbox_execute_parallel, ExecOptions, IndexKind};
use scq_index::{RTree, SpatialIndex, SplitStrategy};
use scq_zorder::ZOrderIndex;
use std::hint::black_box;

/// A wide overlay join: thousands of top-level candidates with real
/// region work per candidate — the shape that parallelizes.
fn overlay_workload() -> (scq_engine::SpatialDatabase<2>, scq_engine::Query<2>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scq_engine::workload::clustered_boxes;
    use scq_region::{AaBox, Region};
    let universe = AaBox::new([0.0, 0.0], [1000.0, 1000.0]);
    let mut db = scq_engine::SpatialDatabase::new(universe);
    let mut rng = StdRng::seed_from_u64(777);
    let xs = db.collection("xs");
    let ys = db.collection("ys");
    for r in clustered_boxes(&mut rng, 30, 60, &universe, 60.0, 14.0) {
        db.insert(xs, r);
    }
    for r in clustered_boxes(&mut rng, 30, 60, &universe, 60.0, 14.0) {
        db.insert(ys, r);
    }
    let sys = scq_core::parse_system("X & Y != 0; X & K != 0").unwrap();
    let q = scq_engine::Query::new(sys)
        .known(
            "K",
            Region::from_box(AaBox::new([100.0, 100.0], [900.0, 900.0])),
        )
        .from_collection("X", xs)
        .from_collection("Y", ys);
    (db, q)
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("b10_parallel");
    let (db, q) = overlay_workload();
    let seq = bbox_execute(&db, &q, IndexKind::RTree).unwrap();
    println!(
        "B10: {} solutions over {} × {} objects; host has {} CPU(s) — speedup \
is only observable with >1",
        seq.stats.solutions,
        1800,
        1800,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    group.bench_function("sequential", |b| {
        b.iter(|| {
            black_box(
                bbox_execute(&db, &q, IndexKind::RTree)
                    .unwrap()
                    .stats
                    .solutions,
            )
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(
                    bbox_execute_parallel(&db, &q, IndexKind::RTree, t, ExecOptions::all())
                        .unwrap()
                        .stats
                        .solutions,
                )
            })
        });
    }
    group.finish();
}

fn bench_zindex(c: &mut Criterion) {
    let mut group = c.benchmark_group("b10_zindex");
    for &n in &[1_000usize, 10_000, 50_000] {
        let items = random_bboxes(5, n, 3.0);
        let universe = scq_bbox::Bbox::new([0.0, 0.0], [100.0, 100.0]);
        let z = ZOrderIndex::from_items(universe, 10, items.iter().copied());
        let rt = RTree::from_items(SplitStrategy::Quadratic, items.iter().copied());
        let queries: Vec<CornerQuery<2>> = (0..16)
            .map(|i| {
                let x = (i * 6) as f64;
                CornerQuery::unconstrained()
                    .and_overlaps(&scq_bbox::Bbox::new([x, x], [x + 8.0, x + 8.0]))
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("zorder", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                let mut total = 0;
                for q in &queries {
                    out.clear();
                    z.query_corner(q, &mut out);
                    total += out.len();
                }
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("rtree", n), &n, |b, _| {
            let mut out = Vec::new();
            b.iter(|| {
                let mut total = 0;
                for q in &queries {
                    out.clear();
                    rt.query_corner(q, &mut out);
                    total += out.len();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_parallel(&mut c);
    bench_zindex(&mut c);
    c.final_summary();
}
