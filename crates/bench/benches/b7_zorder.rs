//! B7 — related-work comparison (paper §1): the Orenstein–Manola z-order
//! spatial join supports exactly the binary overlay query `X ∩ Y ≠ ∅`;
//! the constraint optimizer supports it too (and much more). Compare
//! both, plus the naive quadratic join, on the shared query shape.

use criterion::{BenchmarkId, Criterion};
use scq_bbox::Bbox;
use scq_bench::{quick_criterion, random_bboxes};
use scq_engine::{bbox_execute, IndexKind, Query, SpatialDatabase};
use scq_region::{AaBox, Region};
use scq_zorder::{zorder_join, ZCurve};
use std::hint::black_box;

fn to_items(v: &[(u64, Bbox<2>)]) -> Vec<(Bbox<2>, u64)> {
    v.iter().map(|&(id, b)| (b, id)).collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b7_zorder");
    for &n in &[500usize, 2_000, 8_000] {
        let left = random_bboxes(100, n, 2.0);
        let right = random_bboxes(200, n, 2.0);
        let l_items = to_items(&left);
        let r_items = to_items(&right);
        let curve = ZCurve::new(Bbox::new([0.0, 0.0], [100.0, 100.0]), 10);

        // engine setup for the same query
        let mut db = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let cx = db.collection("X");
        let cy = db.collection("Y");
        for (_, b) in &left {
            db.insert(
                cx,
                Region::from_box(AaBox::new(b.lo().unwrap(), b.hi().unwrap())),
            );
        }
        for (_, b) in &right {
            db.insert(
                cy,
                Region::from_box(AaBox::new(b.lo().unwrap(), b.hi().unwrap())),
            );
        }
        let sys = scq_core::parse_system("X & Y != 0").unwrap();
        let q = Query::new(sys)
            .from_collection("X", cx)
            .from_collection("Y", cy);

        // printed row: result sizes must agree
        let z_pairs = zorder_join(&curve, &l_items, &r_items).len();
        let e_pairs = bbox_execute(&db, &q, IndexKind::RTree)
            .unwrap()
            .stats
            .solutions;
        // Half-open vs closed boxes: region overlap is strictly-inside
        // overlap, z-order verification uses closed boxes, so edge-touch
        // pairs can differ; report both.
        println!("B7 n={n}: zorder pairs={z_pairs} engine pairs={e_pairs}");

        group.bench_with_input(BenchmarkId::new("zorder_join", n), &n, |b, _| {
            b.iter(|| black_box(zorder_join(&curve, &l_items, &r_items).len()))
        });
        group.bench_with_input(BenchmarkId::new("engine_rtree", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    bbox_execute(&db, &q, IndexKind::RTree)
                        .unwrap()
                        .stats
                        .solutions,
                )
            })
        });
        if n <= 2_000 {
            group.bench_with_input(BenchmarkId::new("nested_loop", n), &n, |b, _| {
                b.iter(|| {
                    let mut count = 0usize;
                    for (lb, _) in &l_items {
                        for (rb, _) in &r_items {
                            if lb.overlaps(rb) {
                                count += 1;
                            }
                        }
                    }
                    black_box(count)
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
