//! Umbrella crate hosting the workspace-level integration tests
//! (`/tests`) and runnable examples (`/examples`).
//!
//! It re-exports the full public API so tests and examples read like
//! downstream user code:
//!
//! ```
//! use scq_integration::prelude::*;
//! let sys = parse_system("A <= C; A != 0").unwrap();
//! assert_eq!(sys.constraints.len(), 2);
//! ```

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use scq_algebra::{
        eval_formula, Assignment, Atomless, BitsetAlgebra, Bool2, BooleanAlgebra,
    };
    pub use scq_bbox::{corner_point, Bbox, BboxExpr, CornerQuery};
    pub use scq_boolean::{
        blake_canonical_form, parse_formula, prime_implicants, Bdd, Cube, Formula, Literal, Sop,
        Var, VarTable,
    };
    pub use scq_core::{
        check_constraint, check_normal, check_system, lower_bbox_fn, parse_system, proj, simplify,
        solve, solve_system, triangularize, upper_bbox_fn, witness, BboxPlan, Constraint,
        ConstraintSystem, NormalSystem, TriangularSystem, UpperBound,
    };
    pub use scq_engine::{
        bbox_execute, naive_execute, triangular_execute, IndexKind, ObjectRef, ProbeReport, Query,
        QueryOutcome, SpatialDatabase, VarBinding,
    };
    pub use scq_index::{GridFile, RTree, ScanIndex, SpatialIndex, SplitStrategy};
    pub use scq_region::{AaBox, Region, RegionAlgebra};
    pub use scq_shard::{
        BreakerConfig, BreakerState, ClusterSpec, Direction, FaultAction, FaultGate, FaultProxy,
        FaultRule, FrameMatch, LocalShard, ProbeTrace, RemoteShard, ShardBackend, ShardRouter,
        ShardSpec, ShardedDatabase,
    };
    pub use scq_zorder::{
        decompose, morton_decode, morton_encode, zorder_join, ZCurve, ZOrderIndex,
    };
}
