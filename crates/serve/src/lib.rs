#![warn(missing_docs)]

//! `scq-serve`: a concurrent query-serving front end over the sharded
//! spatial database.
//!
//! The server speaks a **line-oriented text protocol** over TCP
//! (`std::net` only — no async runtime, no framing library): one
//! command per line in, one response line out, every response starting
//! with `OK` or `ERR`. Connection handling is a **readiness-driven
//! event loop** (the same shape as the shard server's): one loop
//! thread owns the nonblocking listener and every connection socket
//! through an epoll instance, assembles lines, and hands complete
//! commands to a worker pool ([`ServerConfig::threads`]) — commands
//! must not run on the loop thread, because in cluster mode they do
//! network I/O to the shard tier. Workers push finished response
//! lines to a completion queue and wake the loop through a self-pipe;
//! the loop writes them out, parking partial writes behind `EPOLLOUT`.
//! Idle connections therefore cost a file descriptor each, not a
//! thread each. Each connection runs one command at a time (pipelined
//! lines queue), preserving the protocol's strict request/response
//! order. The database sits behind an `RwLock`, so queries run
//! concurrently across connections while mutations serialize — the
//! classic read-mostly serving posture.
//!
//! # Protocol
//!
//! ```text
//! PING                                         → OK pong
//! CREATE <name>                                → OK coll=<id>
//! INSERT <coll> <x0> <y0> <x1> <y1>            → OK ref=<slot>
//! INSERT <coll> empty                          → OK ref=<slot>
//! REMOVE <coll> <slot>                         → OK removed | OK noop
//! UPDATE <coll> <slot> <x0> <y0> <x1> <y1>     → OK updated | OK noop
//! QUERY <coll> <index> <mode> <x0> <y0> <x1> <y1>
//!                                              → OK n=<n> pruned=<p> ids=<a,b,…>
//!                                              | PARTIAL missing=<s,…> n=<n> pruned=<p> ids=<…>
//! SOLVE <index> <max> <bindings> <system>      → OK n=<n> pruned=<p> tuples=<…>
//!                                              | PARTIAL missing=<s,…> n=<n> pruned=<p> tuples=<…>
//! EXPLAIN <index> <bindings> <system>          → OK lines=<n> + the planner's per-unknown
//!                                                   selectivity estimates, the retrieval order the
//!                                                   server's --plan mode would execute, and the
//!                                                   compiled per-level range-query plan
//! STAT                                         → OK shards=<s> collections=<c> live=<n> backend=<b>
//!                                                   retries=<r> shards_unavailable=<u> partial_answers=<q>
//!                                                   failovers=<f> stale_answers=<a> health=<per-shard…>
//! STAT <coll>                                  → OK len=<slots> live=<n>
//! METRICS [SHARD <i>]                          → OK lines=<n> + n lines of Prometheus-style
//!                                                   text exposition (serve, router and shard tiers)
//! TRACE <id>                                   → OK trace=<id> lines=<n> + n span-tree lines
//! SHARDS                                       → OK n=<s> live=<l0,l1,…> backend=<b>
//! COMPACT                                      → OK reclaimed=<n>
//! SNAPSHOT SAVE <dir>                          → OK saved shards=<s>
//! SNAPSHOT LOAD <dir>                          → OK loaded collections=<c>
//! LOAD map <seed> <roads>                      → OK towns=<t> roads=<r> states=<s>
//! QUIT                                         → OK bye (closes the connection)
//! ```
//!
//! * `<coll>` is a collection **name**; `CREATE` is idempotent.
//! * `<index>` is `rtree`, `grid` or `scan`; `<mode>` is `overlaps`,
//!   `within` or `contains` (the three corner-query shapes).
//! * `<max>` is `all` or a solution cap.
//! * `<bindings>` is comma-separated `VAR=coll:<name>` and
//!   `VAR=box:<x0>:<y0>:<x1>:<y1>` entries; `<system>` is the rest of
//!   the line in the engine's constraint syntax (`;`-separated).
//! * `pruned` reports [`scq_engine::ExecStats::shards_pruned`] — how
//!   many shards the z-order router proved disjoint and never probed.
//! * a `PARTIAL` response is a **degraded read**: every id/tuple
//!   listed is correct, but the shard processes named in `missing=`
//!   could not answer, so their contributions are absent. `OK n=0`
//!   means "no matches"; `PARTIAL … n=0` means "don't know yet".
//! * `STAT`'s `retries` / `shards_unavailable` / `partial_answers` /
//!   `failovers` / `stale_answers` are cumulative per-process failure
//!   counters ([`ServeMetrics`]); all of them stay 0 on a healthy
//!   cluster. `health=` lists every shard's replicas — address, role,
//!   breaker position (`closed` / `tripped` / `half-open`), trip
//!   count, connection counters and sync state — so a single sick
//!   replica is visible from the front end.
//! * a read answered by a non-primary replica (the primary was dead or
//!   breaker-skipped) stays complete but is flagged: `QUERY` appends
//!   `stale=<shards>`, `SOLVE` appends `stale_answers=<n>`.
//! * `backend` names where the shards live: `local` (in this process)
//!   or `remote:<addr>` (a cluster of shard processes; `<addr>` is the
//!   first range's write primary).
//! * every command runs under a fresh **trace**; `QUERY`/`SOLVE`
//!   responses end with ` trace=<id>`, and `TRACE <id>` replays the
//!   span tree (route → per-shard probes → merge, with failover /
//!   retry / breaker-skip events) while it is still in the ring.
//! * `METRICS` merges three tiers into one scrape: the serve tier's
//!   per-command latency histograms and failure counters
//!   (`tier="serve"`), the router's routing/probe/transport
//!   instruments (`tier="router"`), and — in cluster mode — every
//!   shard process's registry fetched over the wire (`tier="shard"`,
//!   labelled by shard index). `--slow-ms <t>` adds a slow-query log:
//!   queries at or above the threshold bump `serve.slow_queries` and
//!   keep their traces.
//! * `--plan selectivity|size|given` picks how `SOLVE` orders its
//!   retrieval levels ([`PlanMode`]); `EXPLAIN` shows the decision
//!   without executing. In `selectivity` mode the computed orders are
//!   cached and invalidated by the bound collections' mutation epochs
//!   (`plan_cache_hits`/`plan_cache_misses` in `STAT`).
//! * repeated `QUERY`s are answered from a cross-query **candidate
//!   cache** keyed by `(collection, index, mode, box, epoch)`; any
//!   effective write to the collection bumps its epoch and retires the
//!   entries (`candidate_cache_hits`/`candidate_cache_misses` in
//!   `STAT`). Only complete, primary-fresh answers are ever cached.
//!
//! Mutations (`INSERT`, `REMOVE`, `UPDATE`, `COMPACT`, snapshot loads)
//! never degrade: a shard process that cannot acknowledge one yields a
//! plain `ERR` line and **no retry** — replaying a mutation whose ack
//! was lost could double-apply it.
//!
//! # Cluster mode
//!
//! The front end is generic over the [`ShardBackend`]: [`serve`] boots
//! the classic in-process sharded store, [`serve_db`] fronts **any**
//! sharded database — in particular one whose shards are separate OS
//! processes reached through [`scq_shard::ClusterSpec::connect`]
//! (`scq-serve --cluster <spec>`), each process running the shard wire
//! protocol server (`scq-serve --shard`). The command table is
//! identical either way.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use epoll::{Epoll, Event, WakePipe, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use scq_region::AaBox;
use scq_shard::{ClusterSpec, LocalShard, ShardBackend, ShardedDatabase};

mod proto;

pub use proto::{handle_command, PlanMode, ServeContext, ServeMetrics};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Number of shards of the database.
    pub shards: usize,
    /// Worker threads accepting connections.
    pub threads: usize,
    /// Universe half-open square side (the database spans
    /// `[0, size]²`).
    pub universe_size: f64,
    /// Slow-query threshold in milliseconds: a `QUERY`/`SOLVE` at or
    /// above it is counted (`serve.slow_queries`), logged to stderr
    /// and keeps its trace replayable via `TRACE <id>`. `None` (the
    /// default) disables the log.
    pub slow_ms: Option<u64>,
    /// How `SOLVE` orders its retrieval levels (`--plan`). The default
    /// is [`PlanMode::Size`] — the executor's classic
    /// smallest-collection-first order, no planning probes.
    pub plan: PlanMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 4,
            threads: 4,
            universe_size: 1000.0,
            slow_ms: None,
            plan: PlanMode::Size,
        }
    }
}

/// A running server: the bound address, the event-loop thread and its
/// command worker pool.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the event loop (closing every connection) and the worker
    /// pool, and joins them all. The loop notices the stop flag at its
    /// next wakeup — forced immediately through the wake pipe.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.wake();
        self.shared.work.ready.notify_all();
        let _ = self.event_loop.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// State shared between the event loop and the worker pool. The
/// database itself is NOT here: workers capture it directly, so the
/// queue plumbing stays non-generic.
struct Shared {
    work: WorkQueue,
    /// Finished response lines awaiting delivery by the loop thread.
    done: Mutex<Vec<Completion>>,
    wake: Arc<WakePipe>,
    stop: AtomicBool,
}

struct WorkQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

/// One complete command line's worth of work for the pool.
struct Job {
    /// The connection the response line goes back to.
    token: u64,
    /// The command, already stripped of its newline.
    line: String,
}

/// A finished response on its way back through the loop thread.
struct Completion {
    token: u64,
    /// The response, newline included (possibly multi-line: `METRICS`
    /// and `TRACE` carry a body).
    bytes: Vec<u8>,
    /// Close the connection once these bytes flush (`QUIT`).
    close: bool,
}

/// Starts the server over the classic in-process sharded store: binds,
/// spawns the worker pool, returns immediately.
pub fn serve(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let universe = AaBox::new([0.0, 0.0], [config.universe_size, config.universe_size]);
    serve_db(
        config,
        ShardedDatabase::<LocalShard>::new(universe, config.shards.max(1)),
    )
}

/// Starts the server over an arbitrary sharded database — the cluster
/// entry point: pass a `ShardedDatabase<RemoteShard>` from
/// [`ClusterSpec::connect`] and this process becomes a pure router
/// tier over N shard processes.
pub fn serve_db<B: ShardBackend + 'static>(
    config: &ServerConfig,
    db: ShardedDatabase<B>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let db = Arc::new(RwLock::new(db));
    let ctx = Arc::new(ServeContext::new(config.slow_ms).with_plan(config.plan));
    let epoll = Epoll::new()?;
    let wake = Arc::new(WakePipe::new()?);
    epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(wake.read_fd(), EPOLLIN, TOKEN_WAKE)?;
    let shared = Arc::new(Shared {
        work: WorkQueue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        },
        done: Mutex::new(Vec::new()),
        wake,
        stop: AtomicBool::new(false),
    });
    let mut workers = Vec::new();
    for _ in 0..config.threads.max(1) {
        let shared = Arc::clone(&shared);
        let db = Arc::clone(&db);
        let ctx = Arc::clone(&ctx);
        workers.push(std::thread::spawn(move || worker_loop(&shared, &db, &ctx)));
    }
    let loop_shared = Arc::clone(&shared);
    let event_loop = std::thread::spawn(move || event_loop(listener, epoll, &loop_shared));
    Ok(ServerHandle {
        addr,
        shared,
        event_loop,
        workers,
    })
}

// ── the event loop ──────────────────────────────────────────────────────

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// A command line longer than this earns an error and a closed
/// connection — the alternative is an unbounded input buffer.
const MAX_LINE: usize = 1 << 20;

/// Outbound bytes with a write cursor, so partially-flushed responses
/// never shift their remaining bytes.
#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    fn push(&mut self, bytes: &[u8]) {
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn unwritten(&self) -> &[u8] {
        &self.buf[self.pos.min(self.buf.len())..]
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
    }
}

/// One connection's loop-side state.
struct Conn {
    stream: TcpStream,
    /// Raw inbound bytes not yet terminated by a newline.
    inbuf: Vec<u8>,
    out: OutBuf,
    /// A command is executing; later complete lines wait in `pending`
    /// so one-command-one-response ordering holds exactly.
    busy: bool,
    pending: VecDeque<String>,
    /// Close once `out` drains; stop consuming inbound lines.
    closing: bool,
    /// `EPOLLOUT` currently registered.
    wants_out: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            out: OutBuf::default(),
            busy: false,
            pending: VecDeque::new(),
            closing: false,
            wants_out: false,
        }
    }
}

fn event_loop(listener: TcpListener, epoll: Epoll, shared: &Shared) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = [Event::new(0, 0); 64];
    loop {
        // The timeout is the shutdown heartbeat; the wake pipe makes
        // completions (and shutdown itself) immediate, not 100ms late.
        let n = epoll.wait(100, &mut events).unwrap_or(0);
        if shared.stop.load(Ordering::SeqCst) {
            // Dropping the map closes every socket.
            return;
        }
        for ev in &events[..n] {
            match ev.token() {
                TOKEN_LISTENER => accept_ready(&listener, &epoll, &mut conns, &mut next_token),
                TOKEN_WAKE => shared.wake.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue; // already closed earlier in this batch
                    };
                    if ev.events() & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
                        && !read_ready(conn, token, shared)
                    {
                        conns.remove(&token);
                    }
                    // EPOLLOUT needs no per-event work: the flush pass
                    // below writes every connection with queued bytes.
                }
            }
        }
        for done in std::mem::take(&mut *shared.done.lock().expect("completion queue")) {
            deliver(&mut conns, shared, done);
        }
        // Flush pass: write what the sockets will take, keep EPOLLOUT
        // registered exactly while bytes are queued, reap dead conns.
        conns.retain(|&token, conn| {
            if !flush(conn) {
                return false;
            }
            let want = !conn.out.is_empty();
            if want != conn.wants_out {
                let interest = EPOLLIN | EPOLLRDHUP | (if want { EPOLLOUT } else { 0 });
                if epoll
                    .modify(conn.stream.as_raw_fd(), interest, token)
                    .is_err()
                {
                    return false;
                }
                conn.wants_out = want;
            }
            true
        });
    }
}

fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                if epoll
                    .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                    .is_err()
                {
                    continue;
                }
                conns.insert(token, Conn::new(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Reads everything the socket has, assembling and dispatching complete
/// lines. Returns `false` when the connection is dead and must be
/// dropped.
fn read_ready(conn: &mut Conn, token: u64, shared: &Shared) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if conn.closing {
            // Answered QUIT or a fatal error; ignore further input.
            return true;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // Peer hung up. A command already executing still
                // finishes, but its answer has nowhere to go.
                return false;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                dispatch_lines(conn, token, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Splits every complete line out of the input buffer and dispatches
/// it: straight to the pool when the connection is idle, queued behind
/// the executing command otherwise.
fn dispatch_lines(conn: &mut Conn, token: u64, shared: &Shared) {
    while !conn.closing {
        let Some(nl) = conn.inbuf.iter().position(|&b| b == b'\n') else {
            if conn.inbuf.len() > MAX_LINE {
                conn.out.push(b"ERR line too long\n");
                conn.closing = true;
            }
            break;
        };
        let line = String::from_utf8_lossy(&conn.inbuf[..nl])
            .trim()
            .to_string();
        conn.inbuf.drain(..=nl);
        if line.is_empty() {
            continue; // blank lines get no response, as before
        }
        if conn.busy {
            conn.pending.push_back(line);
        } else {
            conn.busy = true;
            enqueue(shared, Job { token, line });
        }
    }
}

fn enqueue(shared: &Shared, job: Job) {
    shared.work.jobs.lock().expect("work queue").push_back(job);
    shared.work.ready.notify_one();
}

/// Hands one finished response to its connection and releases the next
/// queued line to the pool.
fn deliver(conns: &mut HashMap<u64, Conn>, shared: &Shared, done: Completion) {
    let Some(conn) = conns.get_mut(&done.token) else {
        return; // connection died while the command ran
    };
    conn.out.push(&done.bytes);
    if done.close {
        conn.closing = true;
        conn.pending.clear();
    } else {
        conn.busy = false;
        if let Some(next) = conn.pending.pop_front() {
            conn.busy = true;
            enqueue(
                shared,
                Job {
                    token: done.token,
                    line: next,
                },
            );
        }
    }
}

/// Writes what the socket will take. Returns `false` when the
/// connection is finished (dead socket, or `closing` fully flushed).
fn flush(conn: &mut Conn) -> bool {
    while !conn.out.is_empty() {
        match conn.stream.write(conn.out.unwritten()) {
            Ok(0) => return false,
            Ok(n) => conn.out.consume(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    !(conn.closing && conn.out.is_empty())
}

// ── the worker pool ─────────────────────────────────────────────────────

fn worker_loop<B: ShardBackend>(
    shared: &Shared,
    db: &Arc<RwLock<ShardedDatabase<B>>>,
    ctx: &ServeContext,
) {
    loop {
        let job = {
            let mut jobs = shared.work.jobs.lock().expect("work queue");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                // The timeout is a belt-and-braces stop check; the
                // shutdown notify_all makes exit immediate.
                let (guard, _) = shared
                    .work
                    .ready
                    .wait_timeout(jobs, Duration::from_millis(100))
                    .expect("work queue");
                jobs = guard;
            }
        };
        let (response, quit) = handle_command(db, ctx, &job.line);
        let mut bytes = response.into_bytes();
        bytes.push(b'\n');
        shared
            .done
            .lock()
            .expect("completion queue")
            .push(Completion {
                token: job.token,
                bytes,
                close: quit,
            });
        shared.wake.wake();
    }
}

// ── scripted client + self test ─────────────────────────────────────────

/// One scripted exchange: a command and the prefix its response must
/// carry.
pub type ScriptStep<'a> = (&'a str, &'a str);

/// The scripted session the CI smoke test runs: exercises create /
/// insert / remove / update / query / solve / stat / compact /
/// snapshot round-trip end to end against a live server.
pub fn smoke_script(snapshot_dir: &str) -> Vec<(String, String)> {
    let own = |steps: Vec<(&str, &str)>| -> Vec<(String, String)> {
        steps
            .into_iter()
            .map(|(c, r)| (c.to_string(), r.to_string()))
            .collect()
    };
    let mut steps = own(vec![
        ("PING", "OK pong"),
        ("CREATE towns", "OK coll=0"),
        ("CREATE roads", "OK coll=1"),
        ("CREATE towns", "OK coll=0"), // idempotent
        ("INSERT towns 10 42 14 46", "OK ref=0"),
        ("INSERT towns 10 70 14 74", "OK ref=1"),
        ("INSERT towns 880 880 890 890", "OK ref=2"),
        ("INSERT towns empty", "OK ref=3"),
        ("INSERT roads 12 43 65 45", "OK ref=0"),
        ("INSERT roads 12 45 14 72", "OK ref=1"),
        ("STAT", "OK shards=4 collections=2 live=6"),
        ("STAT towns", "OK len=4 live=4"),
        ("QUERY towns rtree within 0 0 100 100", "OK n=2 pruned="),
        ("QUERY towns grid overlaps 11 43 13 44", "OK n=1"),
        ("QUERY towns scan contains 11 43 13 44", "OK n=1"),
        ("REMOVE towns 1", "OK removed"),
        ("REMOVE towns 1", "OK noop"),
        ("UPDATE towns 2 10 60 16 66", "OK updated"),
        ("STAT towns", "OK len=4 live=3"),
        (
            "SOLVE rtree all T=coll:towns,R=coll:roads,C=box:0:0:100:100 T <= C; R & T != 0",
            "OK n=3",
        ),
        // Verbatim repeat at the same epochs: in selectivity mode the
        // planned order comes from the plan cache, no fresh probes.
        (
            "SOLVE rtree all T=coll:towns,R=coll:roads,C=box:0:0:100:100 T <= C; R & T != 0",
            "OK n=3",
        ),
        (
            "SOLVE grid all T=coll:towns,R=coll:roads,C=box:0:0:50:50 T <= C; R & T != 0",
            "OK n=2",
        ),
    ]);
    steps.extend(own(vec![("COMPACT", "OK reclaimed=1")]));
    steps.push((
        format!("SNAPSHOT SAVE {snapshot_dir}"),
        "OK saved shards=4".into(),
    ));
    steps.push((
        format!("SNAPSHOT LOAD {snapshot_dir}"),
        "OK loaded collections=2".into(),
    ));
    steps.extend(own(vec![
        ("STAT towns", "OK len=3 live=3"),
        ("QUERY towns rtree within 0 0 100 100", "OK n=2"),
        (
            "EXPLAIN rtree T=coll:towns,R=coll:roads,C=box:0:0:100:100 T <= C; R & T != 0",
            "OK lines=",
        ),
        // Candidate cache: a verbatim repeat at the same epoch is a
        // hit; the INSERT bumps towns' mutation epoch and the same
        // probe misses again with the fresh answer.
        ("QUERY towns grid within 0 0 100 100", "OK n=2"),
        ("QUERY towns grid within 0 0 100 100", "OK n=2"),
        ("INSERT towns 30 30 34 34", "OK ref=3"),
        ("QUERY towns grid within 0 0 100 100", "OK n=3"),
        ("LOAD map 7 40", "OK towns="),
        ("STAT states", "OK len=8 live=8"),
        // Full STAT again so the transcript carries the final cache
        // counters (self_test parses them).
        ("STAT", "OK shards=4 collections="),
        ("METRICS", "OK lines="),
        ("TRACE 999999", "ERR unknown trace"),
        ("BOGUS", "ERR unknown command"),
        ("QUIT", "OK bye"),
    ]));
    steps
}

/// Parses the cumulative cache counters out of a scripted transcript's
/// last full `STAT` response and asserts the epoch-keyed caches did
/// real work during the session: the scripts repeat a `QUERY` verbatim
/// (must hit), issue fresh probes (must miss), and mutate between
/// repeats (the post-mutation repeat must miss again — epoch
/// invalidation). With `want_plan_hit`, a verbatim `SOLVE` repeat in
/// selectivity mode must have reused its cached retrieval order.
pub fn verify_cache_counters(transcript: &[String], want_plan_hit: bool) -> Result<(), String> {
    let stat = transcript
        .iter()
        .rev()
        .find(|t| t.contains("candidate_cache_hits="))
        .ok_or("no STAT response with cache counters in transcript")?;
    let field = |name: &str| -> Result<u64, String> {
        stat.split_whitespace()
            .find_map(|f| f.strip_prefix(name))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("missing {name} in {stat:?}"))
    };
    let hits = field("candidate_cache_hits=")?;
    let misses = field("candidate_cache_misses=")?;
    if hits == 0 {
        return Err(format!(
            "candidate cache never hit despite a repeated QUERY: {stat:?}"
        ));
    }
    if misses < 2 {
        return Err(format!(
            "expected >= 2 candidate cache misses (first probe + \
             post-mutation epoch invalidation), got {misses}: {stat:?}"
        ));
    }
    if want_plan_hit && field("plan_cache_hits=")? == 0 {
        return Err(format!(
            "plan cache never hit despite a repeated SOLVE in \
             selectivity mode: {stat:?}"
        ));
    }
    Ok(())
}

/// The `lines=<n>` field of a multi-line response header (`METRICS`,
/// `TRACE`), if present: how many body lines follow the header.
pub fn body_lines(header: &str) -> Option<usize> {
    if !header.starts_with("OK") {
        return None;
    }
    header
        .split_whitespace()
        .find_map(|f| f.strip_prefix("lines="))
        .and_then(|n| n.parse().ok())
}

/// Runs a scripted session against `addr`, asserting every response
/// prefix (multi-line responses are consumed whole; the prefix applies
/// to the header line). Returns the transcript; errors carry the first
/// divergence.
pub fn run_script(addr: SocketAddr, script: &[(String, String)]) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut transcript = Vec::new();
    for (cmd, want_prefix) in script {
        writer
            .write_all(format!("{cmd}\n").as_bytes())
            .map_err(|e| format!("send {cmd:?}: {e}"))?;
        writer.flush().map_err(|e| e.to_string())?;
        let mut response = String::new();
        reader
            .read_line(&mut response)
            .map_err(|e| format!("read after {cmd:?}: {e}"))?;
        let response = response.trim_end().to_string();
        let mut body = String::new();
        for _ in 0..body_lines(&response).unwrap_or(0) {
            reader
                .read_line(&mut body)
                .map_err(|e| format!("read body after {cmd:?}: {e}"))?;
        }
        let body = body.trim_end();
        transcript.push(if body.is_empty() {
            format!("> {cmd}\n< {response}")
        } else {
            format!("> {cmd}\n< {response}\n{body}")
        });
        if !response.starts_with(want_prefix.as_str()) {
            return Err(format!(
                "command {cmd:?}: expected prefix {want_prefix:?}, got {response:?}\n\
                 transcript so far:\n{}",
                transcript.join("\n")
            ));
        }
    }
    Ok(transcript)
}

/// The scripted session the cluster smoke runs against a router tier
/// fronting **two** shard processes: placement across shards,
/// cross-shard migration on update, router pruning over real sockets
/// (`pruned=1` with 2 shards), compaction, and a snapshot save/load
/// round trip through the remote backends. Prefixes assert the
/// interesting invariants: `SHARDS` live counts prove objects actually
/// move between processes.
pub fn cluster_script(snapshot_dir: &str) -> Vec<(String, String)> {
    let own = |steps: Vec<(&str, &str)>| -> Vec<(String, String)> {
        steps
            .into_iter()
            .map(|(c, r)| (c.to_string(), r.to_string()))
            .collect()
    };
    let mut steps = own(vec![
        ("PING", "OK pong"),
        ("SHARDS", "OK n=2 live=0,0 backend=remote:"),
        ("CREATE objs", "OK coll=0"),
        // low corner → shard 0; high corner → shard 1
        ("INSERT objs 50 50 60 60", "OK ref=0"),
        ("INSERT objs 900 900 920 920", "OK ref=1"),
        ("INSERT objs 100 80 140 120", "OK ref=2"),
        ("SHARDS", "OK n=2 live=2,1"),
        // the router proves the high-z shard disjoint: pruned=1 of 2
        ("QUERY objs rtree within 0 0 200 200", "OK n=2 pruned=1"),
        // cross-process migration: ref 1 moves shard 1 → shard 0
        ("UPDATE objs 1 20 20 40 40", "OK updated"),
        ("SHARDS", "OK n=2 live=3,0"),
        ("QUERY objs rtree within 0 0 200 200", "OK n=3 pruned=1"),
        (
            "QUERY objs rtree within 800 800 1000 1000",
            "OK n=0 pruned=1",
        ),
        (
            "SOLVE rtree all A=coll:objs,C=box:0:0:200:200 A <= C",
            "OK n=3",
        ),
        ("REMOVE objs 2", "OK removed"),
        ("COMPACT", "OK reclaimed=1"),
    ]);
    steps.push((
        format!("SNAPSHOT SAVE {snapshot_dir}"),
        "OK saved shards=2".into(),
    ));
    steps.push((
        format!("SNAPSHOT LOAD {snapshot_dir}"),
        "OK loaded collections=1".into(),
    ));
    steps.extend(own(vec![
        ("QUERY objs rtree within 0 0 200 200", "OK n=2 pruned=1"),
        // Planner over live shard processes: estimates come from real
        // wire probes.
        (
            "EXPLAIN rtree A=coll:objs,C=box:0:0:200:200 A <= C",
            "OK lines=",
        ),
        // Candidate cache against remote shards: verbatim repeat hits;
        // the INSERT write-through bumps the logical epoch and the
        // same probe misses with the fresh (n=3) answer.
        ("QUERY objs rtree within 0 0 200 200", "OK n=2 pruned=1"),
        ("INSERT objs 70 70 80 80", "OK ref="),
        ("QUERY objs rtree within 0 0 200 200", "OK n=3 pruned=1"),
        // Verbatim SOLVE repeat: selectivity mode reuses the cached
        // retrieval order.
        (
            "SOLVE rtree all A=coll:objs,C=box:0:0:200:200 A <= C",
            "OK n=3",
        ),
        (
            "SOLVE rtree all A=coll:objs,C=box:0:0:200:200 A <= C",
            "OK n=3",
        ),
        ("STAT", "OK shards=2 collections=1 live=3 backend=remote:"),
        // both tiers answer the scrape: the serve/router instruments
        // plus each shard process's registry fetched over the wire
        ("METRICS", "OK lines="),
        ("QUIT", "OK bye"),
    ]));
    steps
}

/// Boots a complete in-process cluster — two shard servers speaking
/// the wire protocol plus a router tier connected over real sockets —
/// and drives [`cluster_script`] through the line protocol. This is
/// the same topology the CI `cluster-smoke` job builds out of OS
/// processes; `scq-serve --cluster-self-test` runs this variant.
pub fn cluster_self_test() -> Result<Vec<String>, String> {
    let universe_size = 1000.0;
    let shard_config = scq_shard::ShardServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        universe_size,
        ..scq_shard::ShardServerConfig::default()
    };
    let shard_a = scq_shard::serve_shard(&shard_config).map_err(|e| format!("shard a: {e}"))?;
    let shard_b = scq_shard::serve_shard(&shard_config).map_err(|e| format!("shard b: {e}"))?;
    let spec = ClusterSpec::balanced(
        AaBox::new([0.0, 0.0], [universe_size, universe_size]),
        scq_shard::DEFAULT_ROUTER_BITS,
        &[shard_a.addr().to_string(), shard_b.addr().to_string()],
    );
    let result = (|| {
        let db = spec
            .connect(Duration::from_secs(10))
            .map_err(|e| format!("cluster connect: {e}"))?;
        let handle = serve_db(
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                // The cluster smoke proves cost-based planning works
                // against live shard processes end to end.
                plan: PlanMode::Selectivity,
                ..ServerConfig::default()
            },
            db,
        )
        .map_err(|e| format!("router bind: {e}"))?;
        let dir = std::env::temp_dir().join(format!("scq_cluster_selftest_{}", std::process::id()));
        let script = cluster_script(&dir.display().to_string());
        let result = run_script(handle.addr(), &script)
            .and_then(|t| verify_cache_counters(&t, true).map(|()| t));
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        result
    })();
    shard_a.shutdown();
    shard_b.shutdown();
    result
}

/// Boots an ephemeral server, runs the smoke script against it over
/// real TCP, and shuts down. The CI server-smoke job calls this through
/// `scq-serve --self-test`.
pub fn self_test() -> Result<Vec<String>, String> {
    let handle = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        shards: 4,
        threads: 2,
        universe_size: 1000.0,
        // Selectivity mode so the smoke exercises the planner and the
        // plan cache alongside the candidate cache.
        plan: PlanMode::Selectivity,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let dir = std::env::temp_dir().join(format!("scq_serve_selftest_{}", std::process::id()));
    let script = smoke_script(&dir.display().to_string());
    let result = run_script(handle.addr(), &script)
        .and_then(|t| verify_cache_counters(&t, true).map(|()| t));
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes_end_to_end() {
        let transcript = self_test().expect("scripted session succeeds");
        assert!(transcript.len() >= 20);
    }

    #[test]
    fn cluster_self_test_passes_end_to_end() {
        let transcript = cluster_self_test().expect("cluster session succeeds");
        assert!(transcript.len() >= 15);
        // the transcript proves the shards are remote processes
        assert!(
            transcript.iter().any(|t| t.contains("backend=remote:")),
            "router must report remote backends"
        );
    }

    #[test]
    fn concurrent_clients_are_served() {
        let handle = serve(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 3,
            threads: 3,
            universe_size: 100.0,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = handle.addr();
        let own = |steps: Vec<(&str, &str)>| {
            steps
                .into_iter()
                .map(|(c, r)| (c.to_string(), r.to_string()))
                .collect::<Vec<_>>()
        };
        // Writer sets up data, three readers query concurrently.
        run_script(
            addr,
            &own(vec![
                ("CREATE objs", "OK coll=0"),
                ("INSERT objs 1 1 5 5", "OK ref=0"),
                ("INSERT objs 90 90 95 95", "OK ref=1"),
                ("QUIT", "OK bye"),
            ]),
        )
        .unwrap();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(move || {
                    run_script(
                        addr,
                        &own(vec![
                            ("QUERY objs rtree within 0 0 10 10", "OK n=1"),
                            ("QUERY objs scan overlaps 0 0 100 100", "OK n=2"),
                            ("QUIT", "OK bye"),
                        ]),
                    )
                    .unwrap();
                });
            }
        });
        handle.shutdown();
    }

    /// A raw session (no script helper): a QUERY's response names its
    /// trace, `TRACE <id>` replays a span tree that reaches the probe
    /// layer, and `METRICS` parses as exposition carrying the query's
    /// latency observation.
    #[test]
    fn metrics_and_trace_round_trip_over_the_wire() {
        let handle = serve(&ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut exchange = |cmd: &str| -> (String, Vec<String>) {
            writer.write_all(format!("{cmd}\n").as_bytes()).unwrap();
            writer.flush().unwrap();
            let mut head = String::new();
            reader.read_line(&mut head).unwrap();
            let head = head.trim_end().to_string();
            let body: Vec<String> = (0..body_lines(&head).unwrap_or(0))
                .map(|_| {
                    let mut l = String::new();
                    reader.read_line(&mut l).unwrap();
                    l.trim_end().to_string()
                })
                .collect();
            (head, body)
        };
        exchange("CREATE objs");
        exchange("INSERT objs 10 10 20 20");
        exchange("INSERT objs 700 700 720 720");
        let (q, _) = exchange("QUERY objs rtree within 0 0 100 100");
        let trace_id = q
            .split_whitespace()
            .find_map(|f| f.strip_prefix("trace="))
            .expect("QUERY response names its trace")
            .to_string();
        let (head, spans) = exchange(&format!("TRACE {trace_id}"));
        assert!(
            head.starts_with(&format!("OK trace={trace_id} lines=")),
            "bad TRACE header: {head:?}"
        );
        assert!(
            spans.iter().any(|l| l.contains("serve.command"))
                && spans.iter().any(|l| l.trim_start().starts_with("probe ")),
            "span tree must span serve → probe: {spans:?}"
        );
        let (head, body) = exchange("METRICS");
        assert!(
            head.starts_with("OK lines="),
            "bad METRICS header: {head:?}"
        );
        let samples = scq_obs::parse_exposition(&body.join("\n")).expect("scrape parses");
        let count = samples
            .iter()
            .find(|s| {
                s.name == "serve_query_latency_us_count" && s.labels.contains("tier=\"serve\"")
            })
            .expect("query latency histogram is in the scrape");
        assert!(count.value >= 1.0, "the QUERY above must be observed");
        assert!(
            samples
                .iter()
                .any(|s| s.name == "shard_probe_latency_us_count"
                    && s.labels.contains("tier=\"router\"")),
            "router-tier probe histogram is in the scrape"
        );
        exchange("QUIT");
        handle.shutdown();
    }

    #[test]
    fn shutdown_returns_despite_an_idle_connection() {
        // A client that connects and never sends anything must not
        // wedge shutdown(): the per-connection read timeout lets the
        // worker notice the stop flag.
        let handle = serve(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            threads: 1,
            universe_size: 100.0,
            ..ServerConfig::default()
        })
        .unwrap();
        let idle = TcpStream::connect(handle.addr()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        handle.shutdown();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "shutdown must not hang on the idle connection"
        );
        drop(idle);
    }

    #[test]
    fn malformed_commands_error_without_dropping_the_connection() {
        let handle = serve(&ServerConfig::default()).unwrap();
        let own = |steps: Vec<(&str, &str)>| {
            steps
                .into_iter()
                .map(|(c, r)| (c.to_string(), r.to_string()))
                .collect::<Vec<_>>()
        };
        run_script(
            handle.addr(),
            &own(vec![
                ("INSERT", "ERR"),
                ("INSERT nosuch 1 2 3 4", "ERR unknown collection"),
                (
                    "QUERY nosuch rtree within 0 0 1 1",
                    "ERR unknown collection",
                ),
                ("INSERT bad 1 2 three 4", "ERR"),
                ("SOLVE rtree all X=coll:none X != 0", "ERR"),
                ("PING", "OK pong"), // still alive
                ("QUIT", "OK bye"),
            ]),
        )
        .unwrap();
        handle.shutdown();
    }
}
