//! Command parsing and execution for the line protocol.
//!
//! Every command handler returns `OK …` or `ERR <reason>` as one line;
//! parse errors never tear down the connection. Read-only commands
//! (`QUERY`, `SOLVE`, `STAT`, `PING`) take the database's read lock and
//! run concurrently; mutations (`INSERT`, `REMOVE`, `UPDATE`,
//! `CREATE`, `COMPACT`, `LOAD`, `SNAPSHOT LOAD`) take the write lock.

use std::path::Path;
use std::sync::{Arc, RwLock};

use scq_bbox::{Bbox, CornerQuery};
use scq_core::parse_system;
use scq_engine::workload::{map_workload, MapParams};
use scq_engine::{
    CollectionId, ExecOptions, IndexKind, ObjectRef, Query, SpatialDatabase, VarBinding,
};
use scq_region::{AaBox, Region};
use scq_shard::ShardedDatabase;

/// Parses and runs one command line. Returns the response line (no
/// trailing newline) and whether the connection should close.
pub fn handle_command(db: &Arc<RwLock<ShardedDatabase>>, line: &str) -> (String, bool) {
    if line.trim() == "QUIT" {
        return ("OK bye".into(), true);
    }
    match dispatch(db, line) {
        Ok(r) => (r, false),
        Err(e) => (format!("ERR {e}"), false),
    }
}

fn lock_poisoned<T>(_: T) -> String {
    "database lock poisoned".to_string()
}

/// Cap on ids / tuples listed inline in a response line; `n=` always
/// carries the true count.
const MAX_LISTED: usize = 16;

fn dispatch(db: &Arc<RwLock<ShardedDatabase>>, line: &str) -> Result<String, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or("empty command")?;
    let rest: Vec<&str> = parts.collect();
    match verb {
        "PING" => Ok("OK pong".into()),
        "CREATE" => {
            let [name] = rest[..] else {
                return Err("usage: CREATE <name>".into());
            };
            // Snapshot formats frame collection names with a u16
            // length; reject anything unserializable up front.
            if name.len() > 255 {
                return Err(format!(
                    "collection name too long ({} > 255 bytes)",
                    name.len()
                ));
            }
            let mut d = db.write().map_err(lock_poisoned)?;
            let id = d.collection(name);
            Ok(format!("OK coll={}", id.0))
        }
        "INSERT" => {
            let (name, coords) = rest.split_first().ok_or("usage: INSERT <coll> <region>")?;
            let region = parse_region(coords)?;
            let mut d = db.write().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let obj = d.insert(coll, region);
            Ok(format!("OK ref={}", obj.index))
        }
        "REMOVE" => {
            let [name, slot] = rest[..] else {
                return Err("usage: REMOVE <coll> <slot>".into());
            };
            let mut d = db.write().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let obj = object_ref(&d, coll, slot)?;
            Ok(if d.remove(obj) {
                "OK removed".into()
            } else {
                "OK noop".into()
            })
        }
        "UPDATE" => {
            let (name, more) = rest
                .split_first()
                .ok_or("usage: UPDATE <coll> <slot> <region>")?;
            let (slot, coords) = more
                .split_first()
                .ok_or("usage: UPDATE <coll> <slot> <region>")?;
            let region = parse_region(coords)?;
            let mut d = db.write().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let obj = object_ref(&d, coll, slot)?;
            Ok(if d.update(obj, region) {
                "OK updated".into()
            } else {
                "OK noop".into()
            })
        }
        "QUERY" => {
            let [name, kind, mode, x0, y0, x1, y1] = rest[..] else {
                return Err(
                    "usage: QUERY <coll> <rtree|grid|scan> <overlaps|within|contains> \
                            <x0> <y0> <x1> <y1>"
                        .into(),
                );
            };
            let kind = parse_kind(kind)?;
            let probe = Bbox::new(
                [parse_f64(x0)?, parse_f64(y0)?],
                [parse_f64(x1)?, parse_f64(y1)?],
            );
            let q = match mode {
                "overlaps" => CornerQuery::unconstrained().and_overlaps(&probe),
                "within" => CornerQuery::unconstrained().and_contained_in(&probe),
                "contains" => CornerQuery::unconstrained().and_contains(&probe),
                other => return Err(format!("unknown mode {other:?}")),
            };
            let d = db.read().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let mut ids = Vec::new();
            let pruned = d.query_collection(coll, kind, &q, &mut ids);
            ids.sort_unstable();
            // `n=` carries the true count; the listing is capped so a
            // broad query cannot blow the response line up to megabytes
            // (same shape as SOLVE's tuple cap).
            let shown = ids.len().min(MAX_LISTED);
            let mut id_list = ids[..shown]
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",");
            if ids.len() > shown {
                id_list.push_str(",+more");
            }
            Ok(format!("OK n={} pruned={pruned} ids={id_list}", ids.len()))
        }
        "SOLVE" => solve(db, &rest),
        "STAT" => {
            let d = db.read().map_err(lock_poisoned)?;
            match rest[..] {
                [] => {
                    let live: usize = d.collections().map(|c| d.live_len(c)).sum();
                    Ok(format!(
                        "OK shards={} collections={} live={live}",
                        d.n_shards(),
                        d.collections().count()
                    ))
                }
                [name] => {
                    let coll = lookup(&d, name)?;
                    Ok(format!(
                        "OK len={} live={}",
                        d.collection_len(coll),
                        d.live_len(coll)
                    ))
                }
                _ => Err("usage: STAT [<coll>]".into()),
            }
        }
        "COMPACT" => {
            let mut d = db.write().map_err(lock_poisoned)?;
            let report = d.compact();
            Ok(format!("OK reclaimed={}", report.slots_reclaimed))
        }
        "SNAPSHOT" => {
            let [action, dir] = rest[..] else {
                return Err("usage: SNAPSHOT <SAVE|LOAD> <dir>".into());
            };
            match action {
                "SAVE" => {
                    let d = db.read().map_err(lock_poisoned)?;
                    scq_shard::save_to_dir(&d, Path::new(dir)).map_err(|e| e.to_string())?;
                    Ok(format!("OK saved shards={}", d.n_shards()))
                }
                "LOAD" => {
                    let loaded =
                        scq_shard::load_from_dir(Path::new(dir)).map_err(|e| e.to_string())?;
                    let collections = loaded.collections().count();
                    *db.write().map_err(lock_poisoned)? = loaded;
                    Ok(format!("OK loaded collections={collections}"))
                }
                other => Err(format!("unknown snapshot action {other:?}")),
            }
        }
        "LOAD" => {
            let [preset, seed, size] = rest[..] else {
                return Err("usage: LOAD map <seed> <roads>".into());
            };
            if preset != "map" {
                return Err(format!("unknown preset {preset:?}"));
            }
            let seed: u64 = seed.parse().map_err(|_| "bad seed")?;
            let roads: usize = size.parse().map_err(|_| "bad road count")?;
            let mut d = db.write().map_err(lock_poisoned)?;
            load_map(&mut d, seed, roads)
        }
        _ => Err(format!("unknown command {verb:?}")),
    }
}

/// `SOLVE <kind> <max> <bindings> <system…>`: run a constraint query
/// against the sharded database through the engine executor.
fn solve(db: &Arc<RwLock<ShardedDatabase>>, rest: &[&str]) -> Result<String, String> {
    let usage = "usage: SOLVE <rtree|grid|scan> <all|N> \
                 VAR=coll:<name>,VAR=box:<x0>:<y0>:<x1>:<y1>,… <system>";
    if rest.len() < 4 {
        return Err(usage.into());
    }
    let kind = parse_kind(rest[0])?;
    let options = exec_options(rest[1])?;
    let bindings_src = rest[2];
    let system_src = rest[3..].join(" ");
    let sys = parse_system(&system_src).map_err(|e| e.to_string())?;
    let d = db.read().map_err(lock_poisoned)?;
    let mut query = Query::new(sys);
    for b in bindings_src.split(',') {
        let (var_name, spec) = b
            .split_once('=')
            .ok_or_else(|| format!("bad binding {b:?}"))?;
        let var = query
            .system
            .table
            .get(var_name)
            .ok_or_else(|| format!("variable {var_name:?} is not in the system"))?;
        if let Some(name) = spec.strip_prefix("coll:") {
            let coll = lookup(&d, name)?;
            query.bindings.insert(var, VarBinding::Collection(coll));
        } else if let Some(coords) = spec.strip_prefix("box:") {
            let cs: Vec<&str> = coords.split(':').collect();
            let region = parse_region(&cs)?;
            query.bindings.insert(var, VarBinding::Known(region));
        } else {
            return Err(format!("bad binding spec {spec:?} (coll:… or box:…)"));
        }
    }
    let result = scq_shard::execute(&d, &query, kind, options).map_err(|e| e.to_string())?;
    let mut tuples: Vec<String> = result
        .solutions
        .iter()
        .map(|s| {
            s.iter()
                .map(|(v, o)| format!("{}={}", query.system.table.display(*v), o.index))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    tuples.sort();
    let shown = tuples.len().min(MAX_LISTED);
    let mut listing = tuples[..shown].join("|");
    if tuples.len() > shown {
        listing.push_str("|+more");
    }
    Ok(format!(
        "OK n={} pruned={} tuples={listing}",
        result.solutions.len(),
        result.stats.shards_pruned
    ))
}

/// `LOAD map`: generate the GIS workload into a scratch single-store
/// database, then stream its live objects into the shared sharded one
/// (appending to `towns` / `roads` / `states`).
fn load_map(d: &mut ShardedDatabase, seed: u64, roads: usize) -> Result<String, String> {
    let mut scratch = SpatialDatabase::new(*d.universe());
    let w = map_workload(
        &mut scratch,
        seed,
        &MapParams {
            n_states: 8,
            n_towns: roads / 4,
            n_roads: roads,
            useful_road_fraction: 0.08,
        },
    );
    let mut copied = [0usize; 3];
    for (i, (name, src)) in [("towns", w.towns), ("roads", w.roads), ("states", w.states)]
        .into_iter()
        .enumerate()
    {
        let dst = d.collection(name);
        for index in scratch.live_indices(src).collect::<Vec<_>>() {
            let obj = ObjectRef {
                collection: src,
                index,
            };
            d.insert(dst, scratch.region(obj).clone());
            copied[i] += 1;
        }
    }
    Ok(format!(
        "OK towns={} roads={} states={}",
        copied[0], copied[1], copied[2]
    ))
}

fn lookup(db: &ShardedDatabase, name: &str) -> Result<CollectionId, String> {
    db.collection_id(name)
        .ok_or_else(|| format!("unknown collection {name:?}"))
}

fn parse_kind(s: &str) -> Result<IndexKind, String> {
    match s {
        "rtree" => Ok(IndexKind::RTree),
        "grid" => Ok(IndexKind::GridFile),
        "scan" => Ok(IndexKind::Scan),
        other => Err(format!("unknown index kind {other:?} (rtree|grid|scan)")),
    }
}

fn parse_f64(s: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("not a number: {s:?}"))?;
    if !v.is_finite() {
        return Err(format!("not finite: {s:?}"));
    }
    Ok(v)
}

fn parse_region(coords: &[&str]) -> Result<Region<2>, String> {
    if coords.len() == 1 && coords[0] == "empty" {
        return Ok(Region::empty());
    }
    let [x0, y0, x1, y1] = coords[..] else {
        return Err("expected <x0> <y0> <x1> <y1> or `empty`".into());
    };
    Ok(Region::from_box(AaBox::new(
        [parse_f64(x0)?, parse_f64(y0)?],
        [parse_f64(x1)?, parse_f64(y1)?],
    )))
}

fn object_ref(db: &ShardedDatabase, coll: CollectionId, slot: &str) -> Result<ObjectRef, String> {
    let index: usize = slot.parse().map_err(|_| format!("bad slot {slot:?}"))?;
    if index >= db.collection_len(coll) {
        return Err(format!(
            "slot {index} out of range (collection has {} slots)",
            db.collection_len(coll)
        ));
    }
    Ok(ObjectRef {
        collection: coll,
        index,
    })
}

fn exec_options(max: &str) -> Result<ExecOptions, String> {
    if max == "all" {
        return Ok(ExecOptions::all());
    }
    let n: usize = max
        .parse()
        .map_err(|_| format!("bad max {max:?} (number or `all`)"))?;
    Ok(ExecOptions {
        max_solutions: Some(n),
    })
}
