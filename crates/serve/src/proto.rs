//! Command parsing and execution for the line protocol.
//!
//! Every command handler returns `OK …` or `ERR <reason>` as one line;
//! parse errors never tear down the connection. Read-only commands
//! (`QUERY`, `SOLVE`, `STAT`, `SHARDS`, `PING`) take the database's
//! read lock and run concurrently; mutations (`INSERT`, `REMOVE`,
//! `UPDATE`, `CREATE`, `COMPACT`, `LOAD`, `SNAPSHOT LOAD`) take the
//! write lock.
//!
//! Everything is generic over the [`ShardBackend`]: the same command
//! table serves an in-process sharded store and a cluster of shard
//! processes. Mutations go through the database's fallible `try_*`
//! forms, so a lost shard process surfaces as an `ERR` line on the
//! client's connection instead of tearing the server down. Reads
//! **degrade**: when a shard process cannot answer, `QUERY` and
//! `SOLVE` respond with a `PARTIAL` line — the surviving shards'
//! (correct) answers plus the ids of the shards that are missing — so
//! a client can tell an empty answer from a half-blind one. The
//! cumulative failure counters surface through `STAT`.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use scq_bbox::{Bbox, CornerQuery};
use scq_core::parse_system;
use scq_engine::workload::{map_workload, MapParams};
use scq_engine::{
    CollectionId, ExecOptions, IndexKind, ObjectRef, ProbeReport, Query, QueryOutcome,
    SpatialDatabase, VarBinding,
};
use scq_region::{AaBox, Region};
use scq_shard::{ShardBackend, ShardedDatabase};

/// Cumulative degraded-read counters of one serving process, shared by
/// every worker and reported by `STAT`. The CI smoke and the bench
/// gate hold `retries`, `shards_unavailable` and `failovers` at 0 on
/// the happy path — any drift there means connections are flapping or
/// a replica is standing in for its primary.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Transport reconnect-and-retry events across all commands.
    pub retries: AtomicUsize,
    /// Shard probes that found a shard process unavailable.
    pub shards_unavailable: AtomicUsize,
    /// `QUERY`/`SOLVE` responses that were partial.
    pub partial_answers: AtomicUsize,
    /// Replica failovers performed while answering reads.
    pub failovers: AtomicUsize,
    /// Shard probes answered by a non-primary replica (stale-flagged).
    pub stale_answers: AtomicUsize,
}

impl ServeMetrics {
    fn note(
        &self,
        retries: usize,
        unavailable: usize,
        partial: bool,
        failovers: usize,
        stale: usize,
    ) {
        self.retries.fetch_add(retries, Ordering::Relaxed);
        self.shards_unavailable
            .fetch_add(unavailable, Ordering::Relaxed);
        if partial {
            self.partial_answers.fetch_add(1, Ordering::Relaxed);
        }
        self.failovers.fetch_add(failovers, Ordering::Relaxed);
        self.stale_answers.fetch_add(stale, Ordering::Relaxed);
    }
}

/// Renders the per-shard health section of a plain `STAT` response:
/// one `shard<i>[…]` entry per shard so a single sick replica is
/// visible from the front end. For remote backends each replica is
/// listed as `addr,role,breaker,trips=<t>,conns=<created>/<discarded>/<idle>,sync`;
/// local (in-process) shards have no transport and report `local`.
fn shard_health<B: ShardBackend>(d: &ShardedDatabase<B>) -> String {
    let health = (0..d.n_shards())
        .map(|s| {
            let replicas = d.backend(s).health();
            if replicas.is_empty() {
                return format!("shard{s}[local]");
            }
            let listed = replicas
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},trips={},conns={}/{}/{},{}",
                        r.addr,
                        if r.primary { "primary" } else { "replica" },
                        r.stats.breaker.as_str(),
                        r.stats.breaker_trips,
                        r.stats.created,
                        r.stats.discarded,
                        r.stats.idle,
                        if r.desynced { "desynced" } else { "in-sync" }
                    )
                })
                .collect::<Vec<_>>()
                .join("|");
            format!("shard{s}[{listed}]")
        })
        .collect::<Vec<_>>()
        .join(";");
    format!("health={health}")
}

/// Renders the durability section of a plain `STAT` response: the
/// WAL counters merged across every shard process, or nothing at all
/// when no shard runs with a WAL (so the pre-WAL `STAT` shape is
/// unchanged for in-memory deployments).
fn wal_rows<B: ShardBackend>(d: &ShardedDatabase<B>) -> String {
    match d.wal_stats() {
        Some(s) => format!(
            " wal_appended={} wal_replayed={} wal_fsync_batches={} \
             wal_segments={} wal_bytes={} wal_torn_tails={}",
            s.appended, s.replayed, s.fsync_batches, s.segments, s.bytes, s.torn_tails
        ),
        None => String::new(),
    }
}

/// Renders the `missing=` field of a `PARTIAL` response.
fn missing_list(missing: &[usize]) -> String {
    missing
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses and runs one command line. Returns the response line (no
/// trailing newline) and whether the connection should close. Lines
/// start `OK`, `PARTIAL` (a degraded read — correct but possibly
/// incomplete answers, with the missing shards named) or `ERR`.
pub fn handle_command<B: ShardBackend>(
    db: &Arc<RwLock<ShardedDatabase<B>>>,
    metrics: &ServeMetrics,
    line: &str,
) -> (String, bool) {
    if line.trim() == "QUIT" {
        return ("OK bye".into(), true);
    }
    match dispatch(db, metrics, line) {
        Ok(r) => (r, false),
        Err(e) => (format!("ERR {e}"), false),
    }
}

fn lock_poisoned<T>(_: T) -> String {
    "database lock poisoned".to_string()
}

/// Cap on ids / tuples listed inline in a response line; `n=` always
/// carries the true count.
const MAX_LISTED: usize = 16;

fn dispatch<B: ShardBackend>(
    db: &Arc<RwLock<ShardedDatabase<B>>>,
    metrics: &ServeMetrics,
    line: &str,
) -> Result<String, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or("empty command")?;
    let rest: Vec<&str> = parts.collect();
    match verb {
        "PING" => Ok("OK pong".into()),
        "CREATE" => {
            let [name] = rest[..] else {
                return Err("usage: CREATE <name>".into());
            };
            // Snapshot formats frame collection names with a u16
            // length; reject anything unserializable up front.
            if name.len() > 255 {
                return Err(format!(
                    "collection name too long ({} > 255 bytes)",
                    name.len()
                ));
            }
            let mut d = db.write().map_err(lock_poisoned)?;
            let id = d.try_collection(name).map_err(|e| e.to_string())?;
            Ok(format!("OK coll={}", id.0))
        }
        "INSERT" => {
            let (name, coords) = rest.split_first().ok_or("usage: INSERT <coll> <region>")?;
            let region = parse_region(coords)?;
            let mut d = db.write().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let obj = d.try_insert(coll, region).map_err(|e| e.to_string())?;
            Ok(format!("OK ref={}", obj.index))
        }
        "REMOVE" => {
            let [name, slot] = rest[..] else {
                return Err("usage: REMOVE <coll> <slot>".into());
            };
            let mut d = db.write().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let obj = object_ref(&d, coll, slot)?;
            Ok(if d.try_remove(obj).map_err(|e| e.to_string())? {
                "OK removed".into()
            } else {
                "OK noop".into()
            })
        }
        "UPDATE" => {
            let (name, more) = rest
                .split_first()
                .ok_or("usage: UPDATE <coll> <slot> <region>")?;
            let (slot, coords) = more
                .split_first()
                .ok_or("usage: UPDATE <coll> <slot> <region>")?;
            let region = parse_region(coords)?;
            let mut d = db.write().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let obj = object_ref(&d, coll, slot)?;
            Ok(if d.try_update(obj, region).map_err(|e| e.to_string())? {
                "OK updated".into()
            } else {
                "OK noop".into()
            })
        }
        "QUERY" => {
            let [name, kind, mode, x0, y0, x1, y1] = rest[..] else {
                return Err(
                    "usage: QUERY <coll> <rtree|grid|scan> <overlaps|within|contains> \
                            <x0> <y0> <x1> <y1>"
                        .into(),
                );
            };
            let kind = parse_kind(kind)?;
            let probe = Bbox::new(
                [parse_f64(x0)?, parse_f64(y0)?],
                [parse_f64(x1)?, parse_f64(y1)?],
            );
            let q = match mode {
                "overlaps" => CornerQuery::unconstrained().and_overlaps(&probe),
                "within" => CornerQuery::unconstrained().and_contained_in(&probe),
                "contains" => CornerQuery::unconstrained().and_contains(&probe),
                other => return Err(format!("unknown mode {other:?}")),
            };
            let d = db.read().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let mut ids = Vec::new();
            let report: ProbeReport =
                contain_backend_panic(|| d.query_collection(coll, kind, &q, &mut ids))?;
            metrics.note(
                report.retries,
                report.missing_shards.len(),
                !report.is_complete(),
                report.failovers,
                report.stale_shards.len(),
            );
            ids.sort_unstable();
            // `n=` carries the true count; the listing is capped so a
            // broad query cannot blow the response line up to megabytes
            // (same shape as SOLVE's tuple cap).
            let shown = ids.len().min(MAX_LISTED);
            let mut id_list = ids[..shown]
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",");
            if ids.len() > shown {
                id_list.push_str(",+more");
            }
            let pruned = report.shards_pruned;
            // Answers that came from a non-primary replica are flagged
            // (only when any did, so healthy-path expectations hold).
            let stale = if report.stale_shards.is_empty() {
                String::new()
            } else {
                format!(" stale={}", missing_list(&report.stale_shards))
            };
            Ok(if report.is_complete() {
                format!("OK n={} pruned={pruned} ids={id_list}{stale}", ids.len())
            } else {
                format!(
                    "PARTIAL missing={} n={} pruned={pruned} ids={id_list}{stale}",
                    missing_list(&report.missing_shards),
                    ids.len()
                )
            })
        }
        "SOLVE" => solve(db, metrics, &rest),
        "SHARDS" => {
            let d = db.read().map_err(lock_poisoned)?;
            let live: Vec<String> = (0..d.n_shards())
                .map(|s| {
                    d.collections()
                        .map(|c| d.backend(s).live_len(c))
                        .sum::<usize>()
                        .to_string()
                })
                .collect();
            Ok(format!(
                "OK n={} live={} backend={}",
                d.n_shards(),
                live.join(","),
                d.backend(0).describe()
            ))
        }
        "STAT" => {
            let d = db.read().map_err(lock_poisoned)?;
            match rest[..] {
                [] => {
                    let live: usize = d.collections().map(|c| d.live_len(c)).sum();
                    Ok(format!(
                        "OK shards={} collections={} live={live} backend={} \
                         retries={} shards_unavailable={} partial_answers={} \
                         failovers={} stale_answers={}{} {}",
                        d.n_shards(),
                        d.collections().count(),
                        d.backend(0).describe(),
                        metrics.retries.load(Ordering::Relaxed),
                        metrics.shards_unavailable.load(Ordering::Relaxed),
                        metrics.partial_answers.load(Ordering::Relaxed),
                        metrics.failovers.load(Ordering::Relaxed),
                        metrics.stale_answers.load(Ordering::Relaxed),
                        wal_rows(&d),
                        shard_health(&d)
                    ))
                }
                [name] => {
                    let coll = lookup(&d, name)?;
                    Ok(format!(
                        "OK len={} live={}",
                        d.collection_len(coll),
                        d.live_len(coll)
                    ))
                }
                _ => Err("usage: STAT [<coll>]".into()),
            }
        }
        "RESYNC" => {
            // Catch lagging replicas up explicitly. A desynced
            // secondary is repaired from the primary's WAL when the
            // primary still holds the complete log, and by a full
            // snapshot ship otherwise; in-process deployments have
            // nothing to resync and report zeros.
            let mut d = db.write().map_err(lock_poisoned)?;
            let outcome = d.resync_all().map_err(|e| e.to_string())?;
            Ok(format!(
                "OK resynced={} via_wal={} via_snapshot={}",
                outcome.resynced, outcome.via_wal, outcome.via_snapshot
            ))
        }
        "COMPACT" => {
            let mut d = db.write().map_err(lock_poisoned)?;
            let report = d.try_compact().map_err(|e| e.to_string())?;
            Ok(format!("OK reclaimed={}", report.slots_reclaimed))
        }
        "SNAPSHOT" => {
            let [action, dir] = rest[..] else {
                return Err("usage: SNAPSHOT <SAVE|LOAD> <dir>".into());
            };
            match action {
                "SAVE" => {
                    let d = db.read().map_err(lock_poisoned)?;
                    scq_shard::save_to_dir(&d, Path::new(dir)).map_err(|e| e.to_string())?;
                    Ok(format!("OK saved shards={}", d.n_shards()))
                }
                "LOAD" => {
                    // In-place restore: each shard backend (possibly a
                    // remote process) swallows its own stream. The
                    // snapshot's topology must match the server's —
                    // shard processes cannot be conjured mid-flight.
                    let mut d = db.write().map_err(lock_poisoned)?;
                    scq_shard::reload_from_dir(&mut d, Path::new(dir))
                        .map_err(|e| e.to_string())?;
                    Ok(format!("OK loaded collections={}", d.collections().count()))
                }
                other => Err(format!("unknown snapshot action {other:?}")),
            }
        }
        "LOAD" => {
            let [preset, seed, size] = rest[..] else {
                return Err("usage: LOAD map <seed> <roads>".into());
            };
            if preset != "map" {
                return Err(format!("unknown preset {preset:?}"));
            }
            let seed: u64 = seed.parse().map_err(|_| "bad seed")?;
            let roads: usize = size.parse().map_err(|_| "bad road count")?;
            let mut d = db.write().map_err(lock_poisoned)?;
            load_map(&mut d, seed, roads)
        }
        _ => Err(format!("unknown command {verb:?}")),
    }
}

/// `SOLVE <kind> <max> <bindings> <system…>`: run a constraint query
/// against the sharded database through the engine executor.
fn solve<B: ShardBackend>(
    db: &Arc<RwLock<ShardedDatabase<B>>>,
    metrics: &ServeMetrics,
    rest: &[&str],
) -> Result<String, String> {
    let usage = "usage: SOLVE <rtree|grid|scan> <all|N> \
                 VAR=coll:<name>,VAR=box:<x0>:<y0>:<x1>:<y1>,… <system>";
    if rest.len() < 4 {
        return Err(usage.into());
    }
    let kind = parse_kind(rest[0])?;
    let options = exec_options(rest[1])?;
    let bindings_src = rest[2];
    let system_src = rest[3..].join(" ");
    let sys = parse_system(&system_src).map_err(|e| e.to_string())?;
    let d = db.read().map_err(lock_poisoned)?;
    let mut query = Query::new(sys);
    for b in bindings_src.split(',') {
        let (var_name, spec) = b
            .split_once('=')
            .ok_or_else(|| format!("bad binding {b:?}"))?;
        let var = query
            .system
            .table
            .get(var_name)
            .ok_or_else(|| format!("variable {var_name:?} is not in the system"))?;
        if let Some(name) = spec.strip_prefix("coll:") {
            let coll = lookup(&d, name)?;
            query.bindings.insert(var, VarBinding::Collection(coll));
        } else if let Some(coords) = spec.strip_prefix("box:") {
            let cs: Vec<&str> = coords.split(':').collect();
            let region = parse_region(&cs)?;
            query.bindings.insert(var, VarBinding::Known(region));
        } else {
            return Err(format!("bad binding spec {spec:?} (coll:… or box:…)"));
        }
    }
    let result = contain_backend_panic(|| scq_shard::execute(&d, &query, kind, options))?
        .map_err(|e| e.to_string())?;
    metrics.note(
        result.stats.retries,
        result.stats.shards_unavailable,
        result.outcome.is_partial(),
        result.stats.failovers,
        result.stats.stale_answers,
    );
    let mut tuples: Vec<String> = result
        .solutions
        .iter()
        .map(|s| {
            s.iter()
                .map(|(v, o)| format!("{}={}", query.system.table.display(*v), o.index))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    tuples.sort();
    let shown = tuples.len().min(MAX_LISTED);
    let mut listing = tuples[..shown].join("|");
    if tuples.len() > shown {
        listing.push_str("|+more");
    }
    // Stale marker only when a replica stood in for its primary, so
    // healthy-path expectations keep matching.
    let stale = if result.stats.stale_answers == 0 {
        String::new()
    } else {
        format!(" stale_answers={}", result.stats.stale_answers)
    };
    Ok(match &result.outcome {
        QueryOutcome::Complete => format!(
            "OK n={} pruned={} tuples={listing}{stale}",
            result.solutions.len(),
            result.stats.shards_pruned
        ),
        QueryOutcome::Partial { missing_shards } => format!(
            "PARTIAL missing={} n={} pruned={} tuples={listing}{stale}",
            missing_list(missing_shards),
            result.solutions.len(),
            result.stats.shards_pruned
        ),
    })
}

/// `LOAD map`: generate the GIS workload into a scratch single-store
/// database, then stream its live objects into the shared sharded one
/// (appending to `towns` / `roads` / `states`).
fn load_map<B: ShardBackend>(
    d: &mut ShardedDatabase<B>,
    seed: u64,
    roads: usize,
) -> Result<String, String> {
    let mut scratch = SpatialDatabase::new(*d.universe());
    let w = map_workload(
        &mut scratch,
        seed,
        &MapParams {
            n_states: 8,
            n_towns: roads / 4,
            n_roads: roads,
            useful_road_fraction: 0.08,
        },
    );
    let mut copied = [0usize; 3];
    for (i, (name, src)) in [("towns", w.towns), ("roads", w.roads), ("states", w.states)]
        .into_iter()
        .enumerate()
    {
        let dst = d.try_collection(name).map_err(|e| e.to_string())?;
        for index in scratch.live_indices(src).collect::<Vec<_>>() {
            let obj = ObjectRef {
                collection: src,
                index,
            };
            d.try_insert(dst, scratch.region(obj).clone())
                .map_err(|e| e.to_string())?;
            copied[i] += 1;
        }
    }
    Ok(format!(
        "OK towns={} roads={} states={}",
        copied[0], copied[1], copied[2]
    ))
}

/// Runs a read-path closure, converting a shard-backend panic into an
/// `ERR` line. Transport failures degrade to `PARTIAL` answers and
/// never panic, but a shard **rejection** — a desynchronized process,
/// e.g. one restarted pristine behind its old address — still panics
/// by design (corruption must stay loud), and that panic must cost the
/// client its command, not the server one of its fixed-pool worker
/// threads.
fn contain_backend_panic<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => {
            let reason = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("shard backend panicked");
            Err(format!("query failed: {reason}"))
        }
    }
}

fn lookup<B: ShardBackend>(db: &ShardedDatabase<B>, name: &str) -> Result<CollectionId, String> {
    db.collection_id(name)
        .ok_or_else(|| format!("unknown collection {name:?}"))
}

fn parse_kind(s: &str) -> Result<IndexKind, String> {
    match s {
        "rtree" => Ok(IndexKind::RTree),
        "grid" => Ok(IndexKind::GridFile),
        "scan" => Ok(IndexKind::Scan),
        other => Err(format!("unknown index kind {other:?} (rtree|grid|scan)")),
    }
}

fn parse_f64(s: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("not a number: {s:?}"))?;
    if !v.is_finite() {
        return Err(format!("not finite: {s:?}"));
    }
    Ok(v)
}

fn parse_region(coords: &[&str]) -> Result<Region<2>, String> {
    if coords.len() == 1 && coords[0] == "empty" {
        return Ok(Region::empty());
    }
    let [x0, y0, x1, y1] = coords[..] else {
        return Err("expected <x0> <y0> <x1> <y1> or `empty`".into());
    };
    Ok(Region::from_box(AaBox::new(
        [parse_f64(x0)?, parse_f64(y0)?],
        [parse_f64(x1)?, parse_f64(y1)?],
    )))
}

fn object_ref<B: ShardBackend>(
    db: &ShardedDatabase<B>,
    coll: CollectionId,
    slot: &str,
) -> Result<ObjectRef, String> {
    let index: usize = slot.parse().map_err(|_| format!("bad slot {slot:?}"))?;
    if index >= db.collection_len(coll) {
        return Err(format!(
            "slot {index} out of range (collection has {} slots)",
            db.collection_len(coll)
        ));
    }
    Ok(ObjectRef {
        collection: coll,
        index,
    })
}

fn exec_options(max: &str) -> Result<ExecOptions, String> {
    if max == "all" {
        return Ok(ExecOptions::all());
    }
    let n: usize = max
        .parse()
        .map_err(|_| format!("bad max {max:?} (number or `all`)"))?;
    Ok(ExecOptions {
        max_solutions: Some(n),
    })
}
