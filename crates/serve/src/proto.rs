//! Command parsing and execution for the line protocol.
//!
//! Every command handler returns `OK …` or `ERR <reason>` as one line;
//! parse errors never tear down the connection. Read-only commands
//! (`QUERY`, `SOLVE`, `STAT`, `SHARDS`, `PING`) take the database's
//! read lock and run concurrently; mutations (`INSERT`, `REMOVE`,
//! `UPDATE`, `CREATE`, `COMPACT`, `LOAD`, `SNAPSHOT LOAD`) take the
//! write lock.
//!
//! Everything is generic over the [`ShardBackend`]: the same command
//! table serves an in-process sharded store and a cluster of shard
//! processes. Mutations go through the database's fallible `try_*`
//! forms, so a lost shard process surfaces as an `ERR` line on the
//! client's connection instead of tearing the server down. Reads
//! **degrade**: when a shard process cannot answer, `QUERY` and
//! `SOLVE` respond with a `PARTIAL` line — the surviving shards'
//! (correct) answers plus the ids of the shards that are missing — so
//! a client can tell an empty answer from a half-blind one. The
//! cumulative failure counters surface through `STAT`.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use scq_bbox::{Bbox, CornerQuery};
use scq_core::{parse_system, BboxPlan};
use scq_engine::workload::{map_workload, MapParams};
use scq_engine::{
    compile_triangular, order_by_selectivity, CollectionId, ExecOptions, IndexKind, ObjectRef,
    ProbeReport, Query, QueryOutcome, SpatialDatabase, VarBinding,
};
use scq_region::{AaBox, Region};
use scq_shard::{ShardBackend, ShardedDatabase};

/// Cumulative failure counters of one serving process, shared by every
/// worker, reported by `STAT` and scraped through `METRICS`. The CI
/// smoke and the bench gate hold `retries`, `shards_unavailable` and
/// `failovers` at 0 on the happy path — any drift there means
/// connections are flapping or a replica is standing in for its
/// primary.
///
/// All instruments live in one [`scq_obs::Registry`], and every
/// multi-counter update goes through [`scq_obs::Registry::batch`], so a
/// concurrent scrape sees either none or all of a command's bumps. The
/// old free-running relaxed atomics could expose
/// `partial_answers > queries` to a reader that landed between the two
/// increments of the same command — [`Self::snapshot`] cannot.
pub struct ServeMetrics {
    registry: scq_obs::Registry,
    /// `serve.queries`: `QUERY`/`SOLVE` commands answered.
    queries: scq_obs::Counter,
    /// `serve.retries`: transport reconnect-and-retry events.
    retries: scq_obs::Counter,
    /// `serve.shards_unavailable`: probes that found a shard down.
    shards_unavailable: scq_obs::Counter,
    /// `serve.partial_answers`: degraded `QUERY`/`SOLVE` responses.
    partial_answers: scq_obs::Counter,
    /// `serve.failovers`: replica failovers while answering reads.
    failovers: scq_obs::Counter,
    /// `serve.stale_answers`: probes answered by a non-primary replica.
    stale_answers: scq_obs::Counter,
    /// `serve.slow_queries`: queries at or above the slow threshold.
    slow_queries: scq_obs::Counter,
    /// `serve.candidate_cache_hits`: `QUERY` answers served from the
    /// epoch-keyed candidate cache without touching a shard.
    candidate_cache_hits: scq_obs::Counter,
    /// `serve.candidate_cache_misses`: `QUERY` probes that had to run
    /// because no current-epoch entry existed.
    candidate_cache_misses: scq_obs::Counter,
    /// `serve.plan_cache_hits`: `SOLVE` retrieval orders reused from
    /// the epoch-keyed plan cache (selectivity mode only).
    plan_cache_hits: scq_obs::Counter,
    /// `serve.plan_cache_misses`: `SOLVE` commands that ran the
    /// selectivity planner's probe round.
    plan_cache_misses: scq_obs::Counter,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        let registry = scq_obs::Registry::new();
        ServeMetrics {
            queries: registry.counter("serve.queries"),
            retries: registry.counter("serve.retries"),
            shards_unavailable: registry.counter("serve.shards_unavailable"),
            partial_answers: registry.counter("serve.partial_answers"),
            failovers: registry.counter("serve.failovers"),
            stale_answers: registry.counter("serve.stale_answers"),
            slow_queries: registry.counter("serve.slow_queries"),
            candidate_cache_hits: registry.counter("serve.candidate_cache_hits"),
            candidate_cache_misses: registry.counter("serve.candidate_cache_misses"),
            plan_cache_hits: registry.counter("serve.plan_cache_hits"),
            plan_cache_misses: registry.counter("serve.plan_cache_misses"),
            registry,
        }
    }
}

impl ServeMetrics {
    /// A coherent snapshot of every serve-tier instrument: in-flight
    /// [`Self::note`] batches are excluded wholesale, so derived
    /// invariants (`partial_answers <= queries`) hold in every scrape.
    pub fn snapshot(&self) -> scq_obs::Snapshot {
        self.registry.snapshot()
    }

    /// The per-command latency histogram (`serve.<verb>.latency`).
    fn command_latency(&self, verb: &str) -> scq_obs::Histogram {
        self.registry
            .histogram(&format!("serve.{}.latency", verb.to_ascii_lowercase()))
    }

    fn note(
        &self,
        retries: usize,
        unavailable: usize,
        partial: bool,
        failovers: usize,
        stale: usize,
    ) {
        // One batch per answered query: a scrape never sees the
        // partial_answers bump without the matching queries bump.
        self.registry.batch(|| {
            self.queries.inc();
            self.retries.add(retries as u64);
            self.shards_unavailable.add(unavailable as u64);
            if partial {
                self.partial_answers.inc();
            }
            self.failovers.add(failovers as u64);
            self.stale_answers.add(stale as u64);
        });
    }
}

/// How the serve tier orders `SOLVE` retrieval levels.
///
/// * `Selectivity` — probe each unknown's first-position corner query
///   once ([`order_by_selectivity`]) and retrieve the most selective
///   level first. Computed orders are cached per command text and
///   invalidated by the bound collections' mutation epochs.
/// * `Size` — the executor default: unknowns ascend by live collection
///   size, no planning probes.
/// * `Given` — trust the order the query arrived with. Wire queries
///   carry no explicit order today, so `given` currently behaves like
///   `size`; the mode exists so a client-supplied order keeps its
///   meaning when the protocol grows one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMode {
    /// Probe-based selectivity ordering with the epoch-keyed plan cache.
    Selectivity,
    /// Ascending live collection size (the executor default).
    Size,
    /// Whatever order the query carries (today: same as `Size`).
    Given,
}

impl PlanMode {
    /// Parses a `--plan` flag value.
    pub fn parse(s: &str) -> Result<PlanMode, String> {
        match s {
            "selectivity" => Ok(PlanMode::Selectivity),
            "size" => Ok(PlanMode::Size),
            "given" => Ok(PlanMode::Given),
            other => Err(format!(
                "unknown plan mode {other:?} (selectivity|size|given)"
            )),
        }
    }

    /// The flag spelling, as echoed by `EXPLAIN`.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanMode::Selectivity => "selectivity",
            PlanMode::Size => "size",
            PlanMode::Given => "given",
        }
    }
}

/// Capacity bounds for the epoch-keyed caches. Entries under a
/// superseded epoch can never be addressed again (epochs only grow),
/// so hitting the cap clears the map wholesale: that only costs warm
/// entries, never correctness.
const CANDIDATE_CACHE_CAP: usize = 1024;
const PLAN_CACHE_CAP: usize = 256;

/// Key of one cached `QUERY` answer: collection, index kind, probe
/// mode, the probe box's exact bit pattern, and the collection's
/// mutation epoch when the answer was computed. Every effective write
/// — local or through the remote write-through mirror — bumps the
/// epoch, so stale entries simply stop being addressable.
type CandidateKey = (usize, u8, u8, [u64; 4], u64);

/// Key of one cached `SOLVE` retrieval order: index kind, the
/// command's binding and system text verbatim, and the mutation epoch
/// of every bound collection in binding order.
type PlanKey = (u8, String, String, Vec<u64>);

/// The serve tier's epoch-invalidated caches above the executors.
#[derive(Default)]
struct QueryCaches {
    /// Complete, primary-fresh `QUERY` answers: sorted ids plus the
    /// router's prune count for that probe.
    candidates: Mutex<HashMap<CandidateKey, (Vec<u64>, usize)>>,
    /// Planned retrieval orders, stored by variable *name* so a hit
    /// re-resolves against the freshly parsed system.
    plans: Mutex<HashMap<PlanKey, Vec<String>>>,
}

/// Per-server observability state shared by every worker: the metrics
/// registry, the ring of recent command traces replayed by `TRACE`,
/// the trace-id allocator, the slow-query threshold, the plan mode and
/// the epoch-invalidated query caches.
pub struct ServeContext {
    /// The serve tier's instruments.
    pub metrics: ServeMetrics,
    traces: scq_obs::TraceRing,
    next_trace_id: AtomicU64,
    slow_ms: Option<u64>,
    plan: PlanMode,
    caches: QueryCaches,
}

impl Default for ServeContext {
    fn default() -> Self {
        ServeContext::new(None)
    }
}

impl ServeContext {
    /// A fresh context; queries at or above `slow_ms` milliseconds are
    /// counted and logged with their trace retained (`None` disables
    /// the slow-query log).
    pub fn new(slow_ms: Option<u64>) -> ServeContext {
        ServeContext {
            metrics: ServeMetrics::default(),
            traces: scq_obs::TraceRing::new(256),
            next_trace_id: AtomicU64::new(1),
            slow_ms,
            plan: PlanMode::Size,
            caches: QueryCaches::default(),
        }
    }

    /// Replaces the plan mode (builder-style, used at server start).
    pub fn with_plan(mut self, plan: PlanMode) -> ServeContext {
        self.plan = plan;
        self
    }

    /// The recorded trace with id `id`, if it is still in the ring.
    pub fn trace(&self, id: u64) -> Option<Arc<scq_obs::TraceState>> {
        self.traces.get(id)
    }
}

/// Renders the per-shard health section of a plain `STAT` response:
/// one `shard<i>[…]` entry per shard so a single sick replica is
/// visible from the front end. For remote backends each replica is
/// listed as
/// `addr,role,breaker,trips=<t>,conns=<created>/<discarded>/<idle>,sync,wire=v<n>`
/// — the trailing token is the replica's **negotiated** protocol
/// version (`v0` = never connected), how the conformance matrix proves
/// a v4 router really talked v2 to an old shard; local (in-process)
/// shards have no transport and report `local`.
fn shard_health<B: ShardBackend>(d: &ShardedDatabase<B>) -> String {
    let health = (0..d.n_shards())
        .map(|s| {
            let replicas = d.backend(s).health();
            if replicas.is_empty() {
                return format!("shard{s}[local]");
            }
            let listed = replicas
                .iter()
                .map(|r| {
                    format!(
                        "{},{},{},trips={},conns={}/{}/{},{},wire=v{}",
                        r.addr,
                        if r.primary { "primary" } else { "replica" },
                        r.stats.breaker.as_str(),
                        r.stats.breaker_trips,
                        r.stats.created,
                        r.stats.discarded,
                        r.stats.idle,
                        if r.desynced { "desynced" } else { "in-sync" },
                        r.stats.wire_version
                    )
                })
                .collect::<Vec<_>>()
                .join("|");
            format!("shard{s}[{listed}]")
        })
        .collect::<Vec<_>>()
        .join(";");
    format!("health={health}")
}

/// Renders the durability section of a plain `STAT` response: the
/// WAL counters merged across every shard process, or nothing at all
/// when no shard runs with a WAL (so the pre-WAL `STAT` shape is
/// unchanged for in-memory deployments).
fn wal_rows<B: ShardBackend>(d: &ShardedDatabase<B>) -> String {
    match d.wal_stats() {
        Some(s) => format!(
            " wal_appended={} wal_replayed={} wal_fsync_batches={} \
             wal_segments={} wal_bytes={} wal_torn_tails={}",
            s.appended, s.replayed, s.fsync_batches, s.segments, s.bytes, s.torn_tails
        ),
        None => String::new(),
    }
}

/// Frames a multi-line body behind an `OK lines=<n>` header so a
/// client reading one line per command knows exactly how many more
/// lines to consume.
fn multiline(body: &str) -> String {
    let lines: Vec<&str> = body.lines().collect();
    let mut out = format!("OK lines={}", lines.len());
    for l in &lines {
        out.push('\n');
        out.push_str(l);
    }
    out
}

/// Renders the `missing=` field of a `PARTIAL` response.
fn missing_list(missing: &[usize]) -> String {
    missing
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses and runs one command line. Returns the response (no trailing
/// newline; `METRICS` and `TRACE` responses are multi-line, with the
/// body line count in the header's `lines=` field) and whether the
/// connection should close. Responses start `OK`, `PARTIAL` (a
/// degraded read — correct but possibly incomplete answers, with the
/// missing shards named) or `ERR`.
///
/// Every command runs under a fresh trace (ids from a per-server
/// counter); `QUERY` and `SOLVE` responses carry theirs as a trailing
/// ` trace=<id>` field so a client can replay the span tree with
/// `TRACE <id>` while it is still in the ring.
pub fn handle_command<B: ShardBackend>(
    db: &Arc<RwLock<ShardedDatabase<B>>>,
    ctx: &ServeContext,
    line: &str,
) -> (String, bool) {
    if line.trim() == "QUIT" {
        return ("OK bye".into(), true);
    }
    let verb = line.split_whitespace().next().unwrap_or("");
    let trace_id = ctx.next_trace_id.fetch_add(1, Ordering::Relaxed);
    let trace = scq_obs::TraceState::new(trace_id);
    let started = Instant::now();
    let outcome = {
        let _install = trace.install();
        let _span = scq_obs::span("serve.command", format!("cmd={verb}"));
        dispatch(db, ctx, line)
    };
    let elapsed = started.elapsed();
    if !verb.is_empty() {
        ctx.metrics.command_latency(verb).observe(elapsed);
    }
    ctx.traces.push(trace);
    let is_query = matches!(verb, "QUERY" | "SOLVE");
    if is_query {
        if let Some(slow_ms) = ctx.slow_ms {
            if elapsed.as_millis() as u64 >= slow_ms {
                ctx.metrics.slow_queries.inc();
                eprintln!(
                    "slow query trace={trace_id} ms={} cmd={}",
                    elapsed.as_millis(),
                    line.trim()
                );
            }
        }
    }
    match outcome {
        // Only single-line query responses carry the trace id; the
        // multi-line METRICS/TRACE bodies must stay exactly `lines=`
        // long.
        Ok(mut r) => {
            if is_query {
                r.push_str(&format!(" trace={trace_id}"));
            }
            (r, false)
        }
        Err(e) => (format!("ERR {e}"), false),
    }
}

fn lock_poisoned<T>(_: T) -> String {
    "database lock poisoned".to_string()
}

/// Cap on ids / tuples listed inline in a response line; `n=` always
/// carries the true count.
const MAX_LISTED: usize = 16;

fn dispatch<B: ShardBackend>(
    db: &Arc<RwLock<ShardedDatabase<B>>>,
    ctx: &ServeContext,
    line: &str,
) -> Result<String, String> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().ok_or("empty command")?;
    let rest: Vec<&str> = parts.collect();
    match verb {
        "PING" => Ok("OK pong".into()),
        "CREATE" => {
            let [name] = rest[..] else {
                return Err("usage: CREATE <name>".into());
            };
            // Snapshot formats frame collection names with a u16
            // length; reject anything unserializable up front.
            if name.len() > 255 {
                return Err(format!(
                    "collection name too long ({} > 255 bytes)",
                    name.len()
                ));
            }
            let mut d = db.write().map_err(lock_poisoned)?;
            let id = d.try_collection(name).map_err(|e| e.to_string())?;
            Ok(format!("OK coll={}", id.0))
        }
        "INSERT" => {
            let (name, coords) = rest.split_first().ok_or("usage: INSERT <coll> <region>")?;
            let region = parse_region(coords)?;
            let mut d = db.write().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let obj = d.try_insert(coll, region).map_err(|e| e.to_string())?;
            Ok(format!("OK ref={}", obj.index))
        }
        "REMOVE" => {
            let [name, slot] = rest[..] else {
                return Err("usage: REMOVE <coll> <slot>".into());
            };
            let mut d = db.write().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let obj = object_ref(&d, coll, slot)?;
            Ok(if d.try_remove(obj).map_err(|e| e.to_string())? {
                "OK removed".into()
            } else {
                "OK noop".into()
            })
        }
        "UPDATE" => {
            let (name, more) = rest
                .split_first()
                .ok_or("usage: UPDATE <coll> <slot> <region>")?;
            let (slot, coords) = more
                .split_first()
                .ok_or("usage: UPDATE <coll> <slot> <region>")?;
            let region = parse_region(coords)?;
            let mut d = db.write().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            let obj = object_ref(&d, coll, slot)?;
            Ok(if d.try_update(obj, region).map_err(|e| e.to_string())? {
                "OK updated".into()
            } else {
                "OK noop".into()
            })
        }
        "QUERY" => {
            let [name, kind, mode, x0, y0, x1, y1] = rest[..] else {
                return Err(
                    "usage: QUERY <coll> <rtree|grid|scan> <overlaps|within|contains> \
                            <x0> <y0> <x1> <y1>"
                        .into(),
                );
            };
            let kind = parse_kind(kind)?;
            let (x0, y0, x1, y1) = (
                parse_f64(x0)?,
                parse_f64(y0)?,
                parse_f64(x1)?,
                parse_f64(y1)?,
            );
            let probe = Bbox::new([x0, y0], [x1, y1]);
            let (q, mode_tag) = match mode {
                "overlaps" => (CornerQuery::unconstrained().and_overlaps(&probe), 0u8),
                "within" => (CornerQuery::unconstrained().and_contained_in(&probe), 1u8),
                "contains" => (CornerQuery::unconstrained().and_contains(&probe), 2u8),
                other => return Err(format!("unknown mode {other:?}")),
            };
            let d = db.read().map_err(lock_poisoned)?;
            let coll = lookup(&d, name)?;
            // Cross-query candidate cache: the key carries the
            // collection's mutation epoch, so any effective write —
            // local or through the remote write-through mirror —
            // retires every entry for the collection without a scan.
            let key: CandidateKey = (
                coll.0,
                kind_tag(kind),
                mode_tag,
                [x0.to_bits(), y0.to_bits(), x1.to_bits(), y1.to_bits()],
                d.epoch(coll),
            );
            if let Some((ids, pruned)) = ctx
                .caches
                .candidates
                .lock()
                .ok()
                .and_then(|c| c.get(&key).cloned())
            {
                // A hit is still an answered query — it just cost no
                // shard probe. Only complete, primary-fresh answers
                // are ever cached, so no PARTIAL/stale rendering here.
                ctx.metrics.note(0, 0, false, 0, 0);
                ctx.metrics.candidate_cache_hits.inc();
                return Ok(format!(
                    "OK n={} pruned={pruned} ids={}",
                    ids.len(),
                    list_ids(&ids)
                ));
            }
            ctx.metrics.candidate_cache_misses.inc();
            let mut ids = Vec::new();
            let report: ProbeReport =
                contain_backend_panic(|| d.query_collection(coll, kind, &q, &mut ids))?;
            ctx.metrics.note(
                report.retries,
                report.missing_shards.len(),
                !report.is_complete(),
                report.failovers,
                report.stale_shards.len(),
            );
            ids.sort_unstable();
            let pruned = report.shards_pruned;
            // Only complete answers with every shard's primary heard
            // from are cached: a degraded or stale answer must not
            // outlive the outage that produced it.
            if report.is_complete() && report.stale_shards.is_empty() {
                if let Ok(mut c) = ctx.caches.candidates.lock() {
                    if c.len() >= CANDIDATE_CACHE_CAP {
                        c.clear();
                    }
                    c.insert(key, (ids.clone(), pruned));
                }
            }
            // `n=` carries the true count; the listing is capped so a
            // broad query cannot blow the response line up to megabytes
            // (same shape as SOLVE's tuple cap).
            let id_list = list_ids(&ids);
            // Answers that came from a non-primary replica are flagged
            // (only when any did, so healthy-path expectations hold).
            let stale = if report.stale_shards.is_empty() {
                String::new()
            } else {
                format!(" stale={}", missing_list(&report.stale_shards))
            };
            Ok(if report.is_complete() {
                format!("OK n={} pruned={pruned} ids={id_list}{stale}", ids.len())
            } else {
                format!(
                    "PARTIAL missing={} n={} pruned={pruned} ids={id_list}{stale}",
                    missing_list(&report.missing_shards),
                    ids.len()
                )
            })
        }
        "SOLVE" => solve(db, ctx, &rest),
        "EXPLAIN" => explain(db, ctx, &rest),
        "SHARDS" => {
            let d = db.read().map_err(lock_poisoned)?;
            let live: Vec<String> = (0..d.n_shards())
                .map(|s| {
                    d.collections()
                        .map(|c| d.backend(s).live_len(c))
                        .sum::<usize>()
                        .to_string()
                })
                .collect();
            Ok(format!(
                "OK n={} live={} backend={}",
                d.n_shards(),
                live.join(","),
                d.backend(0).describe()
            ))
        }
        "STAT" => {
            let d = db.read().map_err(lock_poisoned)?;
            match rest[..] {
                [] => {
                    let live: usize = d.collections().map(|c| d.live_len(c)).sum();
                    // One coherent snapshot for the whole line: the
                    // counters are mutually consistent, not five
                    // independent racing loads.
                    let snap = ctx.metrics.snapshot();
                    let counter = |name: &str| snap.counter(name).unwrap_or(0);
                    Ok(format!(
                        "OK shards={} collections={} live={live} backend={} \
                         retries={} shards_unavailable={} partial_answers={} \
                         failovers={} stale_answers={} candidate_cache_hits={} \
                         candidate_cache_misses={} plan_cache_hits={} \
                         plan_cache_misses={}{} {}",
                        d.n_shards(),
                        d.collections().count(),
                        d.backend(0).describe(),
                        counter("serve.retries"),
                        counter("serve.shards_unavailable"),
                        counter("serve.partial_answers"),
                        counter("serve.failovers"),
                        counter("serve.stale_answers"),
                        counter("serve.candidate_cache_hits"),
                        counter("serve.candidate_cache_misses"),
                        counter("serve.plan_cache_hits"),
                        counter("serve.plan_cache_misses"),
                        wal_rows(&d),
                        shard_health(&d)
                    ))
                }
                [name] => {
                    let coll = lookup(&d, name)?;
                    Ok(format!(
                        "OK len={} live={}",
                        d.collection_len(coll),
                        d.live_len(coll)
                    ))
                }
                _ => Err("usage: STAT [<coll>]".into()),
            }
        }
        "METRICS" => {
            let d = db.read().map_err(lock_poisoned)?;
            match rest[..] {
                [] => {
                    // The full scrape: the serve tier's own
                    // instruments, the router's routing/probe/transport
                    // instruments (per-shard client registries merged),
                    // and — in cluster mode — every shard process's
                    // registry fetched over the wire, labelled by
                    // shard. Shards that cannot answer (old wire
                    // version, in-process backend, dead primary) are
                    // simply absent from the scrape, never an error.
                    let mut text = ctx.metrics.snapshot().render(&[("tier", "serve")]);
                    let mut router = d.obs().snapshot();
                    for s in 0..d.n_shards() {
                        if let Some(cm) = d.backend(s).client_metrics() {
                            router.merge(&cm);
                        }
                    }
                    text.push_str(&router.render(&[("tier", "router")]));
                    for s in 0..d.n_shards() {
                        if let Some(m) = d.backend(s).metrics() {
                            let shard = s.to_string();
                            text.push_str(&m.render(&[("tier", "shard"), ("shard", &shard)]));
                        }
                    }
                    Ok(multiline(&text))
                }
                ["SHARD", s] => {
                    let s: usize = s.parse().map_err(|_| format!("bad shard index {s:?}"))?;
                    if s >= d.n_shards() {
                        return Err(format!("shard {s} out of range ({} shards)", d.n_shards()));
                    }
                    let m = d.backend(s).metrics().ok_or_else(|| {
                        format!("shard {s} has no process metrics (local backend or unreachable)")
                    })?;
                    let shard = s.to_string();
                    Ok(multiline(
                        &m.render(&[("tier", "shard"), ("shard", &shard)]),
                    ))
                }
                _ => Err("usage: METRICS [SHARD <i>]".into()),
            }
        }
        "TRACE" => {
            let [id] = rest[..] else {
                return Err("usage: TRACE <id>".into());
            };
            let id: u64 = id.parse().map_err(|_| format!("bad trace id {id:?}"))?;
            let trace = ctx
                .trace(id)
                .ok_or_else(|| format!("unknown trace {id} (never assigned or evicted)"))?;
            let lines = trace.render();
            Ok(format!(
                "OK trace={id} lines={}{}",
                lines.len(),
                lines.iter().map(|l| format!("\n{l}")).collect::<String>()
            ))
        }
        "RESYNC" => {
            // Catch lagging replicas up explicitly. A desynced
            // secondary is repaired from the primary's WAL when the
            // primary still holds the complete log, and by a full
            // snapshot ship otherwise; in-process deployments have
            // nothing to resync and report zeros.
            let mut d = db.write().map_err(lock_poisoned)?;
            let outcome = d.resync_all().map_err(|e| e.to_string())?;
            Ok(format!(
                "OK resynced={} via_wal={} via_snapshot={}",
                outcome.resynced, outcome.via_wal, outcome.via_snapshot
            ))
        }
        "COMPACT" => {
            let mut d = db.write().map_err(lock_poisoned)?;
            let report = d.try_compact().map_err(|e| e.to_string())?;
            Ok(format!("OK reclaimed={}", report.slots_reclaimed))
        }
        "SNAPSHOT" => {
            let [action, dir] = rest[..] else {
                return Err("usage: SNAPSHOT <SAVE|LOAD> <dir>".into());
            };
            match action {
                "SAVE" => {
                    let d = db.read().map_err(lock_poisoned)?;
                    scq_shard::save_to_dir(&d, Path::new(dir)).map_err(|e| e.to_string())?;
                    Ok(format!("OK saved shards={}", d.n_shards()))
                }
                "LOAD" => {
                    // In-place restore: each shard backend (possibly a
                    // remote process) swallows its own stream. The
                    // snapshot's topology must match the server's —
                    // shard processes cannot be conjured mid-flight.
                    let mut d = db.write().map_err(lock_poisoned)?;
                    scq_shard::reload_from_dir(&mut d, Path::new(dir))
                        .map_err(|e| e.to_string())?;
                    Ok(format!("OK loaded collections={}", d.collections().count()))
                }
                other => Err(format!("unknown snapshot action {other:?}")),
            }
        }
        "LOAD" => {
            let [preset, seed, size] = rest[..] else {
                return Err("usage: LOAD map <seed> <roads>".into());
            };
            if preset != "map" {
                return Err(format!("unknown preset {preset:?}"));
            }
            let seed: u64 = seed.parse().map_err(|_| "bad seed")?;
            let roads: usize = size.parse().map_err(|_| "bad road count")?;
            let mut d = db.write().map_err(lock_poisoned)?;
            load_map(&mut d, seed, roads)
        }
        _ => Err(format!("unknown command {verb:?}")),
    }
}

/// `SOLVE <kind> <max> <bindings> <system…>`: run a constraint query
/// against the sharded database through the engine executor.
fn solve<B: ShardBackend>(
    db: &Arc<RwLock<ShardedDatabase<B>>>,
    ctx: &ServeContext,
    rest: &[&str],
) -> Result<String, String> {
    let usage = "usage: SOLVE <rtree|grid|scan> <all|N> \
                 VAR=coll:<name>,VAR=box:<x0>:<y0>:<x1>:<y1>,… <system>";
    if rest.len() < 4 {
        return Err(usage.into());
    }
    let kind = parse_kind(rest[0])?;
    let options = exec_options(rest[1])?;
    let bindings_src = rest[2];
    let system_src = rest[3..].join(" ");
    let sys = parse_system(&system_src).map_err(|e| e.to_string())?;
    let d = db.read().map_err(lock_poisoned)?;
    let mut query = Query::new(sys);
    let colls = bind_query(&d, &mut query, bindings_src)?;
    if ctx.plan == PlanMode::Selectivity {
        apply_selectivity_plan(&d, ctx, &mut query, kind, bindings_src, &system_src, &colls)?;
    }
    let result = contain_backend_panic(|| scq_shard::execute(&d, &query, kind, options))?
        .map_err(|e| e.to_string())?;
    ctx.metrics.note(
        result.stats.retries,
        result.stats.shards_unavailable,
        result.outcome.is_partial(),
        result.stats.failovers,
        result.stats.stale_answers,
    );
    let mut tuples: Vec<String> = result
        .solutions
        .iter()
        .map(|s| {
            s.iter()
                .map(|(v, o)| format!("{}={}", query.system.table.display(*v), o.index))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    tuples.sort();
    let shown = tuples.len().min(MAX_LISTED);
    let mut listing = tuples[..shown].join("|");
    if tuples.len() > shown {
        listing.push_str("|+more");
    }
    // Stale marker only when a replica stood in for its primary, so
    // healthy-path expectations keep matching.
    let stale = if result.stats.stale_answers == 0 {
        String::new()
    } else {
        format!(" stale_answers={}", result.stats.stale_answers)
    };
    Ok(match &result.outcome {
        QueryOutcome::Complete => format!(
            "OK n={} pruned={} tuples={listing}{stale}",
            result.solutions.len(),
            result.stats.shards_pruned
        ),
        QueryOutcome::Partial { missing_shards } => format!(
            "PARTIAL missing={} n={} pruned={} tuples={listing}{stale}",
            missing_list(missing_shards),
            result.solutions.len(),
            result.stats.shards_pruned
        ),
    })
}

/// Parses `VAR=coll:<name>,VAR=box:<x0>:<y0>:<x1>:<y1>,…` bindings
/// into `query`, returning the bound collections in binding order (the
/// epoch-key ingredient for the plan cache).
fn bind_query<B: ShardBackend>(
    d: &ShardedDatabase<B>,
    query: &mut Query<2>,
    bindings_src: &str,
) -> Result<Vec<CollectionId>, String> {
    let mut colls = Vec::new();
    for b in bindings_src.split(',') {
        let (var_name, spec) = b
            .split_once('=')
            .ok_or_else(|| format!("bad binding {b:?}"))?;
        let var = query
            .system
            .table
            .get(var_name)
            .ok_or_else(|| format!("variable {var_name:?} is not in the system"))?;
        if let Some(name) = spec.strip_prefix("coll:") {
            let coll = lookup(d, name)?;
            query.bindings.insert(var, VarBinding::Collection(coll));
            colls.push(coll);
        } else if let Some(coords) = spec.strip_prefix("box:") {
            let cs: Vec<&str> = coords.split(':').collect();
            let region = parse_region(&cs)?;
            query.bindings.insert(var, VarBinding::Known(region));
        } else {
            return Err(format!("bad binding spec {spec:?} (coll:… or box:…)"));
        }
    }
    Ok(colls)
}

/// Installs the selectivity order on `query`, consulting the plan
/// cache first. The key carries the bound collections' mutation
/// epochs: equal epochs guarantee identical contents, so a cached
/// order is exactly what a fresh probe round would pick — and any
/// effective write silently retires it.
fn apply_selectivity_plan<B: ShardBackend>(
    d: &ShardedDatabase<B>,
    ctx: &ServeContext,
    query: &mut Query<2>,
    kind: IndexKind,
    bindings_src: &str,
    system_src: &str,
    colls: &[CollectionId],
) -> Result<(), String> {
    let epochs: Vec<u64> = colls.iter().map(|&c| d.epoch(c)).collect();
    let key: PlanKey = (
        kind_tag(kind),
        bindings_src.to_string(),
        system_src.to_string(),
        epochs,
    );
    if let Some(names) = ctx
        .caches
        .plans
        .lock()
        .ok()
        .and_then(|p| p.get(&key).cloned())
    {
        // Names re-resolve against the freshly parsed system; the
        // command text is part of the key, so they always exist.
        let order: Vec<_> = names
            .iter()
            .filter_map(|n| query.system.table.get(n))
            .collect();
        if order.len() == names.len() {
            query.order = Some(order);
            ctx.metrics.plan_cache_hits.inc();
            return Ok(());
        }
    }
    ctx.metrics.plan_cache_misses.inc();
    let plan = contain_backend_panic(|| order_by_selectivity(d, query, kind))?
        .map_err(|e| e.to_string())?;
    let names: Vec<String> = plan
        .order
        .iter()
        .map(|&v| query.system.table.display(v))
        .collect();
    query.order = Some(plan.order);
    if let Ok(mut p) = ctx.caches.plans.lock() {
        if p.len() >= PLAN_CACHE_CAP {
            p.clear();
        }
        p.insert(key, names);
    }
    Ok(())
}

/// `EXPLAIN <kind> <bindings> <system…>`: report the selectivity
/// planner's per-unknown estimates, the retrieval order the server's
/// plan mode would actually execute, and the compiled per-level range
/// query plan — without running the query. The body is framed behind
/// `OK lines=<n>` like `METRICS`.
fn explain<B: ShardBackend>(
    db: &Arc<RwLock<ShardedDatabase<B>>>,
    ctx: &ServeContext,
    rest: &[&str],
) -> Result<String, String> {
    let usage = "usage: EXPLAIN <rtree|grid|scan> \
                 VAR=coll:<name>,VAR=box:<x0>:<y0>:<x1>:<y1>,… <system>";
    if rest.len() < 3 {
        return Err(usage.into());
    }
    let kind = parse_kind(rest[0])?;
    let bindings_src = rest[1];
    let system_src = rest[2..].join(" ");
    let sys = parse_system(&system_src).map_err(|e| e.to_string())?;
    let d = db.read().map_err(lock_poisoned)?;
    let mut query = Query::new(sys);
    bind_query(&d, &mut query, bindings_src)?;
    // The planner always runs (EXPLAIN exists to show its reasoning),
    // but the executed order below honors the server's plan mode.
    let plan = contain_backend_panic(|| order_by_selectivity(&*d, &query, kind))?
        .map_err(|e| e.to_string())?;
    let mut body = format!("plan={} index={}", ctx.plan.as_str(), rest[0]);
    for est in &plan.estimates {
        body.push_str(&format!(
            "\nestimate {}: candidates={}",
            query.system.table.display(est.var),
            est.candidates
        ));
    }
    if ctx.plan == PlanMode::Selectivity {
        query.order = Some(plan.order);
    }
    let order = query.retrieval_order(&*d);
    body.push_str(&format!(
        "\norder: {}",
        order
            .iter()
            .map(|&v| query.system.table.display(v))
            .collect::<Vec<_>>()
            .join(" -> ")
    ));
    // Per-level view: knowns bind for free; each unknown names the
    // index its corner query will probe.
    for (level, &v) in order.iter().enumerate() {
        let name = query.system.table.display(v);
        match query.bindings.get(&v) {
            Some(VarBinding::Known(_)) => {
                body.push_str(&format!("\nlevel {level}: {name} known (no retrieval)"));
            }
            _ => {
                let est = plan
                    .estimates
                    .iter()
                    .find(|e| e.var == v)
                    .map(|e| e.candidates);
                body.push_str(&format!(
                    "\nlevel {level}: {name} index={} estimated_candidates={}",
                    rest[0],
                    est.map_or("?".to_string(), |c| c.to_string())
                ));
            }
        }
    }
    // The compiled range-query plan (Algorithm 2's triangular rows)
    // for the order that would actually execute.
    let tri = compile_triangular(&*d, &query).map_err(|e| e.to_string())?;
    let bbox_plan: BboxPlan<2> = BboxPlan::compile(&tri);
    body.push('\n');
    body.push_str(bbox_plan.explain(&query.system.table).trim_end());
    Ok(multiline(&body))
}

/// The cache-key byte for an index kind.
fn kind_tag(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::RTree => 0,
        IndexKind::GridFile => 1,
        IndexKind::Scan => 2,
    }
}

/// Renders a capped id listing (the `ids=` field of a `QUERY` answer).
fn list_ids(ids: &[u64]) -> String {
    let shown = ids.len().min(MAX_LISTED);
    let mut listing = ids[..shown]
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");
    if ids.len() > shown {
        listing.push_str(",+more");
    }
    listing
}

/// `LOAD map`: generate the GIS workload into a scratch single-store
/// database, then stream its live objects into the shared sharded one
/// (appending to `towns` / `roads` / `states`).
fn load_map<B: ShardBackend>(
    d: &mut ShardedDatabase<B>,
    seed: u64,
    roads: usize,
) -> Result<String, String> {
    let mut scratch = SpatialDatabase::new(*d.universe());
    let w = map_workload(
        &mut scratch,
        seed,
        &MapParams {
            n_states: 8,
            n_towns: roads / 4,
            n_roads: roads,
            useful_road_fraction: 0.08,
        },
    );
    let mut copied = [0usize; 3];
    for (i, (name, src)) in [("towns", w.towns), ("roads", w.roads), ("states", w.states)]
        .into_iter()
        .enumerate()
    {
        let dst = d.try_collection(name).map_err(|e| e.to_string())?;
        for index in scratch.live_indices(src).collect::<Vec<_>>() {
            let obj = ObjectRef {
                collection: src,
                index,
            };
            d.try_insert(dst, scratch.region(obj).clone())
                .map_err(|e| e.to_string())?;
            copied[i] += 1;
        }
    }
    Ok(format!(
        "OK towns={} roads={} states={}",
        copied[0], copied[1], copied[2]
    ))
}

/// Runs a read-path closure, converting a shard-backend panic into an
/// `ERR` line. Transport failures degrade to `PARTIAL` answers and
/// never panic, but a shard **rejection** — a desynchronized process,
/// e.g. one restarted pristine behind its old address — still panics
/// by design (corruption must stay loud), and that panic must cost the
/// client its command, not the server one of its fixed-pool worker
/// threads.
fn contain_backend_panic<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => {
            let reason = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("shard backend panicked");
            Err(format!("query failed: {reason}"))
        }
    }
}

fn lookup<B: ShardBackend>(db: &ShardedDatabase<B>, name: &str) -> Result<CollectionId, String> {
    db.collection_id(name)
        .ok_or_else(|| format!("unknown collection {name:?}"))
}

fn parse_kind(s: &str) -> Result<IndexKind, String> {
    match s {
        "rtree" => Ok(IndexKind::RTree),
        "grid" => Ok(IndexKind::GridFile),
        "scan" => Ok(IndexKind::Scan),
        other => Err(format!("unknown index kind {other:?} (rtree|grid|scan)")),
    }
}

fn parse_f64(s: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("not a number: {s:?}"))?;
    if !v.is_finite() {
        return Err(format!("not finite: {s:?}"));
    }
    Ok(v)
}

fn parse_region(coords: &[&str]) -> Result<Region<2>, String> {
    if coords.len() == 1 && coords[0] == "empty" {
        return Ok(Region::empty());
    }
    let [x0, y0, x1, y1] = coords[..] else {
        return Err("expected <x0> <y0> <x1> <y1> or `empty`".into());
    };
    Ok(Region::from_box(AaBox::new(
        [parse_f64(x0)?, parse_f64(y0)?],
        [parse_f64(x1)?, parse_f64(y1)?],
    )))
}

fn object_ref<B: ShardBackend>(
    db: &ShardedDatabase<B>,
    coll: CollectionId,
    slot: &str,
) -> Result<ObjectRef, String> {
    let index: usize = slot.parse().map_err(|_| format!("bad slot {slot:?}"))?;
    if index >= db.collection_len(coll) {
        return Err(format!(
            "slot {index} out of range (collection has {} slots)",
            db.collection_len(coll)
        ));
    }
    Ok(ObjectRef {
        collection: coll,
        index,
    })
}

fn exec_options(max: &str) -> Result<ExecOptions, String> {
    if max == "all" {
        return Ok(ExecOptions::all());
    }
    let n: usize = max
        .parse()
        .map_err(|_| format!("bad max {max:?} (number or `all`)"))?;
    Ok(ExecOptions {
        max_solutions: Some(n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// Regression: the old `ServeMetrics` bumped free-running relaxed
    /// atomics one at a time, so a scraper landing between a command's
    /// `partial_answers` and `queries` increments could read
    /// `partial_answers > queries` — an impossible state. Every
    /// `note()` is now one registry batch, excluded wholesale from
    /// concurrent snapshots.
    #[test]
    fn scrapes_never_tear_a_partial_answer_from_its_query() {
        let m = Arc::new(ServeMetrics::default());
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // partial=true: bumps queries AND partial_answers.
                        m.note(1, 1, true, 0, 0);
                    }
                });
            }
            let reader = Arc::clone(&m);
            let done = Arc::clone(&stop);
            scope.spawn(move || {
                for _ in 0..2_000 {
                    let s = reader.snapshot();
                    let q = s.counter("serve.queries").unwrap();
                    let p = s.counter("serve.partial_answers").unwrap();
                    assert!(p <= q, "torn scrape: partial_answers={p} > queries={q}");
                }
                done.store(true, Ordering::Relaxed);
            });
        });
        let s = m.snapshot();
        assert_eq!(
            s.counter("serve.queries"),
            s.counter("serve.partial_answers")
        );
    }

    #[test]
    fn plan_mode_parses_exactly_the_flag_values() {
        assert_eq!(PlanMode::parse("selectivity"), Ok(PlanMode::Selectivity));
        assert_eq!(PlanMode::parse("size"), Ok(PlanMode::Size));
        assert_eq!(PlanMode::parse("given"), Ok(PlanMode::Given));
        assert!(PlanMode::parse("cost").is_err());
        assert_eq!(PlanMode::Selectivity.as_str(), "selectivity");
    }

    /// `EXPLAIN` surfaces the planner's reasoning (estimates, chosen
    /// order, compiled per-level plan) without executing, and the
    /// candidate cache serves verbatim `QUERY` repeats until an
    /// effective write bumps the collection's mutation epoch.
    #[test]
    fn explain_and_candidate_cache_follow_the_mutation_epoch() {
        let universe = AaBox::new([0.0, 0.0], [100.0, 100.0]);
        let db = Arc::new(RwLock::new(ShardedDatabase::<scq_shard::LocalShard>::new(
            universe, 2,
        )));
        let ctx = ServeContext::new(None).with_plan(PlanMode::Selectivity);
        let run = |line: &str| handle_command(&db, &ctx, line).0;
        assert!(run("CREATE towns").starts_with("OK"));
        assert!(run("CREATE roads").starts_with("OK"));
        run("INSERT towns 10 10 20 20");
        run("INSERT roads 5 5 50 50");
        run("INSERT roads 60 60 70 70");
        let explain =
            run("EXPLAIN rtree T=coll:towns,R=coll:roads,C=box:0:0:40:40 T <= C; R & T != 0");
        assert!(explain.starts_with("OK lines="), "{explain}");
        assert!(
            explain.contains("plan=selectivity index=rtree"),
            "{explain}"
        );
        assert!(explain.contains("estimate T: candidates="), "{explain}");
        assert!(explain.contains("estimate R: candidates="), "{explain}");
        assert!(explain.contains("order: C"), "knowns bind first: {explain}");
        assert!(
            explain.contains("retrieve"),
            "compiled plan body: {explain}"
        );

        // Identical probes at the same epoch: first misses, second is
        // served from the cache (identical answer, no shard probe).
        let q = "QUERY towns rtree within 0 0 40 40";
        let strip_trace = |r: String| r.split(" trace=").next().unwrap().to_string();
        let first = strip_trace(run(q));
        assert!(first.starts_with("OK n=1"), "{first}");
        assert_eq!(strip_trace(run(q)), first);
        let snap = ctx.metrics.snapshot();
        assert_eq!(snap.counter("serve.candidate_cache_hits"), Some(1));
        assert_eq!(snap.counter("serve.candidate_cache_misses"), Some(1));

        // An effective write bumps towns' epoch: the same probe misses
        // and answers fresh.
        run("INSERT towns 12 12 14 14");
        assert!(strip_trace(run(q)).starts_with("OK n=2"));
        let snap = ctx.metrics.snapshot();
        assert_eq!(snap.counter("serve.candidate_cache_hits"), Some(1));
        assert_eq!(snap.counter("serve.candidate_cache_misses"), Some(2));

        // SOLVE in selectivity mode: a verbatim repeat reuses the
        // cached plan; the write above already retired nothing (first
        // SOLVE plans fresh), so hits lag misses by exactly one.
        let s = "SOLVE rtree all T=coll:towns,R=coll:roads,C=box:0:0:40:40 T <= C; R & T != 0";
        let a = strip_trace(run(s));
        let b = strip_trace(run(s));
        assert_eq!(a, b, "cached plan yields the identical answer");
        let snap = ctx.metrics.snapshot();
        assert_eq!(snap.counter("serve.plan_cache_misses"), Some(1));
        assert_eq!(snap.counter("serve.plan_cache_hits"), Some(1));
    }

    /// Per-command latency histograms materialize lazily under
    /// `serve.<verb>.latency` and fold into the same registry scrape.
    #[test]
    fn command_latency_histograms_land_in_the_scrape() {
        let m = ServeMetrics::default();
        m.command_latency("QUERY").observe_us(120);
        m.command_latency("query").observe_us(80);
        let s = m.snapshot();
        let h = s
            .histogram("serve.query.latency")
            .expect("histogram exists");
        assert_eq!(h.count(), 2, "verb casing folds into one histogram");
    }
}
