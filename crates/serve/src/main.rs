//! `scq-serve` — the sharded spatial database behind a TCP line
//! protocol.
//!
//! ```text
//! scq-serve [--addr A] [--shards N] [--threads T] [--universe S]
//! scq-serve --self-test        boot an ephemeral server, run the
//!                              scripted smoke session, exit 0/1
//! scq-serve --client <addr>    interactive client: lines from stdin,
//!                              responses to stdout
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use scq_serve::{self_test, serve, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return;
    }
    if args.iter().any(|a| a == "--self-test") {
        match self_test() {
            Ok(transcript) => {
                for line in &transcript {
                    println!("{line}");
                }
                println!("self-test passed ({} exchanges)", transcript.len());
            }
            Err(e) => {
                eprintln!("self-test FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--client") {
        let Some(addr) = args.get(i + 1) else {
            eprintln!("--client needs an address\n{}", usage());
            std::process::exit(2);
        };
        std::process::exit(client(addr));
    }

    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let mut config = ServerConfig {
        addr: flag("--addr").unwrap_or_else(|| "127.0.0.1:7878".into()),
        ..ServerConfig::default()
    };
    if let Some(s) = flag("--shards").and_then(|v| v.parse().ok()) {
        config.shards = s;
    }
    if let Some(t) = flag("--threads").and_then(|v| v.parse().ok()) {
        config.threads = t;
    }
    if let Some(u) = flag("--universe").and_then(|v| v.parse().ok()) {
        config.universe_size = u;
    }
    match serve(&config) {
        Ok(handle) => {
            println!(
                "scq-serve listening on {} ({} shards, {} workers)",
                handle.addr(),
                config.shards,
                config.threads
            );
            // Serve until killed.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    }
}

fn usage() -> &'static str {
    "scq-serve — concurrent query server over the sharded spatial database\n\
     \n\
     usage:\n\
     \x20 scq-serve [--addr A] [--shards N] [--threads T] [--universe S]\n\
     \x20 scq-serve --self-test\n\
     \x20 scq-serve --client <addr>\n\
     \n\
     protocol: one command per line; see the scq-serve crate docs or the\n\
     repository README for the command reference.\n"
}

/// Minimal interactive client: stdin lines to the server, responses to
/// stdout. Exits when the server closes the connection or stdin ends.
fn client(addr: &str) -> i32 {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return 1;
        }
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("clone stream: {e}");
            return 1;
        }
    });
    let mut writer = stream;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if writer.write_all(format!("{line}\n").as_bytes()).is_err() {
            break;
        }
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) | Err(_) => break,
            Ok(_) => print!("{response}"),
        }
        if line.trim() == "QUIT" {
            break;
        }
    }
    0
}
