//! `scq-serve` — the sharded spatial database behind a TCP line
//! protocol, plus the shard-process and router-tier cluster modes.
//!
//! ```text
//! scq-serve [--addr A] [--shards N] [--threads T] [--universe S]
//!                              in-process sharded store (classic mode)
//! scq-serve --shard [--addr A] [--threads T] [--universe S]
//!                              one shard process: a single spatial
//!                              database speaking the binary shard wire
//!                              protocol (what --cluster connects to)
//! scq-serve --cluster <spec>   router tier: connect to the shard
//!                              processes in the cluster spec file and
//!                              front them through the line protocol
//! scq-serve --self-test        boot an ephemeral server, run the
//!                              scripted smoke session, exit 0/1
//! scq-serve --cluster-self-test
//!                              boot 2 in-process shard servers + a
//!                              router over real sockets, run the
//!                              cluster script, exit 0/1
//! scq-serve --client <addr>    interactive client: lines from stdin,
//!                              responses to stdout
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use scq_serve::{cluster_self_test, self_test, serve, serve_db, PlanMode, ServerConfig};
use scq_shard::{serve_shard, ClusterSpec, ShardServerConfig, WalConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return;
    }
    if args.iter().any(|a| a == "--self-test") {
        run_self_test(self_test());
        return;
    }
    if args.iter().any(|a| a == "--cluster-self-test") {
        run_self_test(cluster_self_test());
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--client") {
        let Some(addr) = args.get(i + 1) else {
            eprintln!("--client needs an address\n{}", usage());
            std::process::exit(2);
        };
        // Pretty-printing is for humans; piped output (CI transcripts,
        // smoke-test greps) keeps the server's raw line shape unless
        // --pretty asks for it.
        let pretty = args.iter().any(|a| a == "--pretty")
            || std::io::IsTerminal::is_terminal(&std::io::stdout());
        std::process::exit(client(addr, pretty));
    }

    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };

    if args.iter().any(|a| a == "--shard") {
        // Shard-process mode: this process is ONE shard of a cluster.
        let mut config = ShardServerConfig {
            addr: flag("--addr").unwrap_or_else(|| "127.0.0.1:7979".into()),
            ..ShardServerConfig::default()
        };
        if let Some(t) = flag("--threads").and_then(|v| v.parse().ok()) {
            config.threads = t;
        }
        if let Some(u) = flag("--universe").and_then(|v| v.parse().ok()) {
            config.universe_size = u;
        }
        if let Some(m) = flag("--max-conns").and_then(|v| v.parse().ok()) {
            config.max_connections = m;
        }
        // Rolling-upgrade rehearsal: cap the negotiation ceiling
        // (--wire-version 3 answers exactly like the previous release)
        // or pin one exact version (--strict-wire emulates a release
        // that predates negotiation windows).
        if let Some(v) = flag("--wire-version") {
            match v.parse::<u16>() {
                Ok(v) => config.wire_version = v,
                Err(_) => {
                    eprintln!("bad --wire-version {v:?} (want a protocol number)");
                    std::process::exit(2);
                }
            }
        }
        if args.iter().any(|a| a == "--strict-wire") {
            config.strict = true;
        }
        if let Some(dir) = flag("--wal") {
            let mut wal = WalConfig::new(dir);
            if let Some(ms) = flag("--wal-group-commit-ms") {
                match ms.parse::<u64>() {
                    Ok(ms) if ms > 0 => wal.group_commit = Duration::from_millis(ms),
                    _ => {
                        eprintln!("bad --wal-group-commit-ms {ms:?} (want a positive integer)");
                        std::process::exit(2);
                    }
                }
            }
            config.wal = Some(wal);
        }
        match serve_shard(&config) {
            Ok(handle) => {
                println!(
                    "scq-shard listening on {} (universe {}, {} workers, wire v{}{})",
                    handle.addr(),
                    config.universe_size,
                    config.threads,
                    config.wire_version,
                    if config.strict { " strict" } else { "" }
                );
                if let Some(stats) = handle.wal_stats() {
                    println!(
                        "scq-shard wal: replayed {} records ({} segments, {} bytes)",
                        stats.replayed, stats.segments, stats.bytes
                    );
                }
                park_forever();
            }
            Err(e) => {
                eprintln!("bind {}: {e}", config.addr);
                std::process::exit(1);
            }
        }
    }

    let mut config = ServerConfig {
        addr: flag("--addr").unwrap_or_else(|| "127.0.0.1:7878".into()),
        ..ServerConfig::default()
    };
    if let Some(s) = flag("--shards").and_then(|v| v.parse().ok()) {
        config.shards = s;
    }
    if let Some(t) = flag("--threads").and_then(|v| v.parse().ok()) {
        config.threads = t;
    }
    if let Some(u) = flag("--universe").and_then(|v| v.parse().ok()) {
        config.universe_size = u;
    }
    if let Some(ms) = flag("--slow-ms") {
        match ms.parse::<u64>() {
            Ok(ms) => config.slow_ms = Some(ms),
            Err(_) => {
                eprintln!("bad --slow-ms {ms:?} (want a millisecond count)");
                std::process::exit(2);
            }
        }
    }
    if let Some(p) = flag("--plan") {
        match PlanMode::parse(&p) {
            Ok(p) => config.plan = p,
            Err(e) => {
                eprintln!("bad --plan: {e}");
                std::process::exit(2);
            }
        }
    }

    if let Some(spec_path) = flag("--cluster") {
        // Router-tier mode: shards are separate processes named by the
        // cluster spec; this process only routes.
        let spec = match ClusterSpec::load(Path::new(&spec_path)) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        let n_shards = spec.shards.len();
        let db = match spec.connect(Duration::from_secs(15)) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("cluster connect: {e}");
                std::process::exit(1);
            }
        };
        match serve_db(&config, db) {
            Ok(handle) => {
                println!(
                    "scq-serve listening on {} (cluster of {} shard processes, {} workers)",
                    handle.addr(),
                    n_shards,
                    config.threads
                );
                park_forever();
            }
            Err(e) => {
                eprintln!("bind {}: {e}", config.addr);
                std::process::exit(1);
            }
        }
    }

    match serve(&config) {
        Ok(handle) => {
            println!(
                "scq-serve listening on {} ({} shards, {} workers)",
                handle.addr(),
                config.shards,
                config.threads
            );
            park_forever();
        }
        Err(e) => {
            eprintln!("bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    }
}

/// Serve until killed.
fn park_forever() -> ! {
    loop {
        std::thread::park();
    }
}

fn run_self_test(result: Result<Vec<String>, String>) {
    match result {
        Ok(transcript) => {
            for line in &transcript {
                println!("{line}");
            }
            println!("self-test passed ({} exchanges)", transcript.len());
        }
        Err(e) => {
            eprintln!("self-test FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() -> &'static str {
    "scq-serve — concurrent query server over the sharded spatial database\n\
     \n\
     usage:\n\
     \x20 scq-serve [--addr A] [--shards N] [--threads T] [--universe S] [--slow-ms W]\n\
     \x20           [--plan selectivity|size|given]\n\
     \x20 scq-serve --shard [--addr A] [--threads T] [--universe S] [--max-conns N]\n\
     \x20           [--wal <dir>] [--wal-group-commit-ms W]\n\
     \x20           [--wire-version V] [--strict-wire]\n\
     \x20 scq-serve --cluster <spec-file> [--addr A] [--threads T]\n\
     \x20           [--plan selectivity|size|given]\n\
     \x20 scq-serve --self-test\n\
     \x20 scq-serve --cluster-self-test\n\
     \x20 scq-serve --client <addr>\n\
     \n\
     protocol: one command per line; see the scq-serve crate docs or the\n\
     repository README for the command reference and the cluster spec\n\
     file format.\n"
}

/// Minimal interactive client: stdin lines to the server, responses to
/// stdout. With `pretty`, `STAT`, `METRICS` and `TRACE` responses are
/// pretty-printed (one field per line, aligned); multi-line bodies
/// (`lines=` in the header) are always consumed whole so the session
/// never desyncs. Exits when the server closes the connection or stdin
/// ends.
fn client(addr: &str, pretty: bool) -> i32 {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return 1;
        }
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("clone stream: {e}");
            return 1;
        }
    });
    let mut writer = stream;
    let stdin = std::io::stdin();
    'session: for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if writer.write_all(format!("{line}\n").as_bytes()).is_err() {
            break;
        }
        let mut head = String::new();
        match reader.read_line(&mut head) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let head = head.trim_end().to_string();
        let mut body = Vec::new();
        for _ in 0..scq_serve::body_lines(&head).unwrap_or(0) {
            let mut l = String::new();
            match reader.read_line(&mut l) {
                Ok(0) | Err(_) => break 'session,
                Ok(_) => body.push(l.trim_end().to_string()),
            }
        }
        print_response(line.trim(), &head, &body, pretty);
        if line.trim() == "QUIT" {
            break;
        }
    }
    0
}

/// Prints one response. When `pretty`, `STAT`'s single packed line
/// becomes one aligned `key = value` row per field and `METRICS` /
/// `TRACE` bodies indent under their header (they are already
/// line-structured); otherwise everything prints verbatim.
fn print_response(cmd: &str, head: &str, body: &[String], pretty: bool) {
    let verb = if pretty {
        cmd.split_whitespace().next().unwrap_or("")
    } else {
        ""
    };
    match verb {
        "STAT" if head.starts_with("OK") => {
            let fields: Vec<&str> = head.split_whitespace().skip(1).collect();
            let width = fields
                .iter()
                .filter_map(|f| f.split_once('='))
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            println!("OK");
            for f in fields {
                match f.split_once('=') {
                    Some((k, v)) => println!("  {k:<width$} = {v}"),
                    None => println!("  {f}"),
                }
            }
        }
        "METRICS" | "TRACE" if head.starts_with("OK") => {
            println!("{head}");
            for l in body {
                println!("  {l}");
            }
        }
        _ => {
            println!("{head}");
            for l in body {
                println!("{l}");
            }
        }
    }
}
