//! Property: installing the selectivity planner's order never changes
//! a query's *answer* — only its enumeration cost. Under arbitrary
//! churn (inserts, empty-region inserts, removes, updates,
//! compaction), for all three index kinds, against both the unsharded
//! engine store and the sharded routing tier, executing with
//! [`with_selectivity_order`] must produce exactly the solutions and
//! outcome of the default size-ordered execution.
//!
//! This is the end-to-end oracle behind the serve tier's `--plan
//! selectivity` mode: the plan cache may swap orders freely because
//! order is provably answer-invariant.

use proptest::prelude::*;
use scq_engine::{
    bbox_execute, with_selectivity_order, CollectionId, IndexKind, ObjectRef, Query, QueryResult,
    SpatialDatabase, StoreView, VarBinding,
};
use scq_region::{AaBox, Region};
use scq_shard::{LocalShard, ShardedDatabase};

const UNIVERSE: f64 = 100.0;

/// One churn step. Slot picks are taken modulo the collection's
/// current length, so every op is applicable at any point in the
/// sequence (removing an already-dead slot is a no-op, same as the
/// database's own semantics).
#[derive(Clone, Debug)]
enum Op {
    Insert {
        coll: usize,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    InsertEmpty {
        coll: usize,
    },
    Remove {
        coll: usize,
        pick: usize,
    },
    Update {
        coll: usize,
        pick: usize,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    Compact,
}

fn op_strategy() -> BoxedStrategy<Op> {
    let coord = || 0.0..80.0f64;
    let side = || 0.5..18.0f64;
    prop_oneof![
        5 => (0..2usize, coord(), coord(), side(), side())
            .prop_map(|(coll, x, y, w, h)| Op::Insert { coll, x, y, w, h }),
        1 => (0..2usize).prop_map(|coll| Op::InsertEmpty { coll }),
        2 => (0..2usize, 0..64usize).prop_map(|(coll, pick)| Op::Remove { coll, pick }),
        2 => (0..2usize, 0..64usize, coord(), coord(), side(), side())
            .prop_map(|(coll, pick, x, y, w, h)| Op::Update { coll, pick, x, y, w, h }),
        1 => Just(Op::Compact),
    ]
    .boxed()
}

fn boxed_region(x: f64, y: f64, w: f64, h: f64) -> Region<2> {
    let x1 = (x + w).min(UNIVERSE);
    let y1 = (y + h).min(UNIVERSE);
    Region::from_box(AaBox::new([x, y], [x1, y1]))
}

/// Applies the churn to an unsharded engine store.
fn churn_unsharded(ops: &[Op]) -> (SpatialDatabase<2>, [CollectionId; 2]) {
    let mut d = SpatialDatabase::new(AaBox::new([0.0, 0.0], [UNIVERSE, UNIVERSE]));
    let colls = [d.collection("a"), d.collection("b")];
    for op in ops {
        match *op {
            Op::Insert { coll, x, y, w, h } => {
                d.insert(colls[coll], boxed_region(x, y, w, h));
            }
            Op::InsertEmpty { coll } => {
                d.insert(colls[coll], Region::empty());
            }
            Op::Remove { coll, pick } => {
                let len = d.collection_len(colls[coll]);
                if len > 0 {
                    d.remove(ObjectRef {
                        collection: colls[coll],
                        index: pick % len,
                    });
                }
            }
            Op::Update {
                coll,
                pick,
                x,
                y,
                w,
                h,
            } => {
                let len = d.collection_len(colls[coll]);
                if len > 0 {
                    let obj = ObjectRef {
                        collection: colls[coll],
                        index: pick % len,
                    };
                    if d.is_live(obj) {
                        d.update(obj, boxed_region(x, y, w, h));
                    }
                }
            }
            Op::Compact => {
                d.compact();
            }
        }
    }
    (d, colls)
}

/// Applies the same churn through the sharded routing tier.
fn churn_sharded(ops: &[Op]) -> (ShardedDatabase<LocalShard>, [CollectionId; 2]) {
    let mut d = ShardedDatabase::<LocalShard>::new(AaBox::new([0.0, 0.0], [UNIVERSE, UNIVERSE]), 3);
    let colls = [d.collection("a"), d.collection("b")];
    for op in ops {
        match *op {
            Op::Insert { coll, x, y, w, h } => {
                d.insert(colls[coll], boxed_region(x, y, w, h));
            }
            Op::InsertEmpty { coll } => {
                d.insert(colls[coll], Region::empty());
            }
            Op::Remove { coll, pick } => {
                let len = d.collection_len(colls[coll]);
                if len > 0 {
                    d.remove(ObjectRef {
                        collection: colls[coll],
                        index: pick % len,
                    });
                }
            }
            Op::Update {
                coll,
                pick,
                x,
                y,
                w,
                h,
            } => {
                let len = d.collection_len(colls[coll]);
                if len > 0 {
                    let obj = ObjectRef {
                        collection: colls[coll],
                        index: pick % len,
                    };
                    if d.is_live(obj) {
                        d.update(obj, boxed_region(x, y, w, h));
                    }
                }
            }
            Op::Compact => {
                d.compact();
            }
        }
    }
    (d, colls)
}

/// The paper's district shape over the churned collections: `A` inside
/// a known window, `B` overlapping `A`.
fn build_query(colls: &[CollectionId; 2]) -> Query<2> {
    let sys = scq_core::parse_system("A <= C; B & A != 0").expect("system parses");
    let mut q = Query::new(sys);
    let a = q.system.table.get("A").unwrap();
    let b = q.system.table.get("B").unwrap();
    let c = q.system.table.get("C").unwrap();
    q.bindings.insert(a, VarBinding::Collection(colls[0]));
    q.bindings.insert(b, VarBinding::Collection(colls[1]));
    q.bindings.insert(
        c,
        VarBinding::Known(Region::from_box(AaBox::new([10.0, 10.0], [65.0, 65.0]))),
    );
    q
}

/// Normalizes a result to an order-independent form: sorted tuples of
/// `var=collection:slot` plus the outcome.
fn normalize(query: &Query<2>, result: &QueryResult) -> (Vec<String>, bool) {
    let mut tuples: Vec<String> = result
        .solutions
        .iter()
        .map(|s| {
            s.iter()
                .map(|(v, o)| {
                    format!(
                        "{}={}:{}",
                        query.system.table.display(*v),
                        o.collection.0,
                        o.index
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    tuples.sort();
    (tuples, result.outcome.is_partial())
}

/// The oracle: for every index kind, planned execution answers exactly
/// like the default order on the same store.
fn assert_planned_matches_default<V: StoreView<2>>(db: &V, colls: &[CollectionId; 2]) {
    let query = build_query(colls);
    for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
        let base = bbox_execute(db, &query, kind).expect("default order executes");
        let planned_query = with_selectivity_order(db, &query, kind).expect("planner runs");
        let planned = bbox_execute(db, &planned_query, kind).expect("planned order executes");
        assert_eq!(
            normalize(&query, &base),
            normalize(&planned_query, &planned),
            "selectivity order changed the answer for {kind:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Selectivity-planned execution is answer-equivalent to the
    /// default order on the unsharded store, under churn, for all
    /// three index kinds.
    #[test]
    fn planned_execution_matches_default_unsharded(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        let (db, colls) = churn_unsharded(&ops);
        assert_planned_matches_default(&db, &colls);
    }

    /// Same property through the sharded routing tier (3 z-order
    /// shards), where the planner's probes fan out per shard.
    #[test]
    fn planned_execution_matches_default_sharded(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        let (db, colls) = churn_sharded(&ops);
        assert_planned_matches_default(&db, &colls);

        // Epoch sanity alongside: planning never mutates, so running
        // the planner twice observes the same epochs.
        let before: Vec<u64> = colls.iter().map(|&c| StoreView::epoch(&db, c)).collect();
        let query = build_query(&colls);
        let _ = with_selectivity_order(&db, &query, IndexKind::RTree).unwrap();
        let after: Vec<u64> = colls.iter().map(|&c| StoreView::epoch(&db, c)).collect();
        prop_assert_eq!(before, after, "planning must not advance mutation epochs");
    }
}
