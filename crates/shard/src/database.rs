//! The sharded spatial database: N independent shard backends behind
//! one [`StoreView`].
//!
//! Each logical collection is partitioned across every shard by the
//! z-order routing key of the object's bounding-box center
//! ([`crate::ShardRouter`]). Objects are addressed by **global**
//! [`ObjectRef`]s — `(logical collection, global slot)` — and a mapping
//! table translates between the global slot space and `(shard, local
//! slot)` pairs, so the executors (which run unchanged over the
//! [`StoreView`] trait) never see the partitioning. Global refs have
//! the same stability contract as unsharded ones: slots never shift or
//! get reused, removal tombstones.
//!
//! [`ShardedDatabase::update`] **migrates** an object whose new
//! bounding box routes to a different shard: the old shard keeps a
//! tombstone, the new shard gets a fresh local slot, and the global
//! slot is repointed — callers keep their refs.
//!
//! Since PR 4 the store is generic over **where the shards live**: a
//! [`ShardBackend`] is the complete routing-layer↔shard contract, and
//! `ShardedDatabase<LocalShard>` (the default) behaves exactly like
//! the pre-backend in-process store while `ShardedDatabase<RemoteShard>`
//! drives one OS process per shard over the wire protocol — same
//! routing, same migration, same global ids, property-tested
//! equivalent. Mutations have `try_*` forms that surface backend
//! (transport) errors; the plain forms keep the historical infallible
//! signatures and panic on a backend failure, which for the default
//! local backend can never happen.

use std::collections::HashMap;

use scq_bbox::{Bbox, CornerQuery};
use scq_engine::view::{ProbeReport, StoreView};
use scq_engine::{CollectionId, CompactReport, IndexKind, ObjectRef, SpatialDatabase};
use scq_region::{AaBox, Region};

use crate::backend::{LocalShard, ShardBackend, ShardError};
use crate::router::ShardRouter;

thread_local! {
    /// Reusable candidate-shard buffer for the corner-query fan-out
    /// (one per thread: the parallel executor shares `&ShardedDatabase`
    /// across workers).
    pub(crate) static SHARD_SCRATCH: std::cell::RefCell<Vec<usize>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Where one global slot lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SlotAddr {
    /// Owning shard.
    pub shard: u32,
    /// Slot inside the shard's collection.
    pub local: u32,
}

/// Per-shard side tables of one logical collection.
#[derive(Clone, Debug, Default)]
pub(crate) struct ShardSide {
    /// Local slot -> global slot (dense: shard collections only grow).
    pub globals: Vec<u64>,
}

pub(crate) struct LogicalCollection {
    pub name: String,
    /// Global slot -> shard address (never shrinks; tombstoned slots
    /// keep their last address).
    pub slots: Vec<SlotAddr>,
    /// Global per-slot liveness.
    pub live: Vec<bool>,
    pub live_count: usize,
    /// Global indices of live objects with an empty region.
    pub empty_objects: Vec<usize>,
    /// One side table per shard.
    pub per_shard: Vec<ShardSide>,
    /// Logical mutation epoch (see `StoreView::epoch`): one counter per
    /// **logical** collection, bumped on the routing tier for every
    /// effective insert/remove/update/compact regardless of which shard
    /// absorbed it.
    pub epoch: u64,
}

/// A spatial database partitioned across `n_shards` z-order range
/// shards — each a [`ShardBackend`]: a full in-process
/// [`SpatialDatabase`] ([`LocalShard`], the default) or a shard process
/// behind a socket ([`crate::RemoteShard`]).
///
/// Implements [`StoreView`], so every engine executor (naive,
/// triangular, bbox, work-stealing parallel) runs against it unchanged;
/// corner queries fan out only to the shards the router cannot prune
/// (counted in [`scq_engine::ExecStats::shards_pruned`]).
pub struct ShardedDatabase<B: ShardBackend = LocalShard> {
    universe: AaBox<2>,
    router: ShardRouter,
    shards: Vec<B>,
    collections: Vec<LogicalCollection>,
    by_name: HashMap<String, CollectionId>,
    obs: DbInstruments,
}

/// Router-side instruments of one [`ShardedDatabase`]: where the time
/// goes between a query arriving and its shard answers coming back.
/// The serve tier merges this registry's snapshot into the
/// process-wide scrape.
pub struct DbInstruments {
    registry: scq_obs::Registry,
    /// `shard.probe.latency` — wall time of one shard probe (backend
    /// round trip included), observed per probed shard.
    probe_latency: scq_obs::Histogram,
    /// `db.route.latency` — time the z-order router spends choosing
    /// candidate shards, observed per fan-out.
    route_latency: scq_obs::Histogram,
}

impl DbInstruments {
    fn new() -> DbInstruments {
        let registry = scq_obs::Registry::new();
        let probe_latency = registry.histogram("shard.probe.latency");
        let route_latency = registry.histogram("db.route.latency");
        DbInstruments {
            registry,
            probe_latency,
            route_latency,
        }
    }

    /// A point-in-time snapshot of the router-side instruments.
    pub fn snapshot(&self) -> scq_obs::Snapshot {
        self.registry.snapshot()
    }
}

/// Default bits per dimension of the routing grid (64×64 cells: fine
/// enough that realistic shard counts get distinct spatial territory,
/// coarse enough that query pruning costs microseconds).
pub const DEFAULT_ROUTER_BITS: u32 = 6;

impl ShardedDatabase<LocalShard> {
    /// Creates a database partitioned into `n_shards` in-process
    /// shards over `universe`, with the default routing grid
    /// ([`DEFAULT_ROUTER_BITS`]).
    ///
    /// # Panics
    /// If the universe is empty or `n_shards` is 0.
    pub fn new(universe: AaBox<2>, n_shards: usize) -> Self {
        Self::with_router_bits(universe, n_shards, DEFAULT_ROUTER_BITS)
    }

    /// [`ShardedDatabase::new`] with an explicit routing grid
    /// resolution (`bits` per dimension, in `1..=16`).
    pub fn with_router_bits(universe: AaBox<2>, n_shards: usize, bits: u32) -> Self {
        assert!(!universe.is_empty(), "universe must be nonempty");
        let router = ShardRouter::new(&universe, bits, n_shards);
        ShardedDatabase::from_parts(
            universe,
            router,
            (0..n_shards).map(|_| LocalShard::new(universe)).collect(),
            Vec::new(),
        )
    }

    /// Read access to one local shard's [`SpatialDatabase`] (snapshot
    /// and integrity plumbing; going through the shard directly
    /// bypasses the global id space).
    pub fn shard(&self, s: usize) -> &SpatialDatabase<2> {
        self.shards[s].database()
    }
}

impl<B: ShardBackend> ShardedDatabase<B> {
    /// Assembles a sharded database over pre-built backends with an
    /// explicit router. The backends' universes must equal `universe`.
    ///
    /// # Panics
    /// If `shards` is empty, the router's shard count disagrees, or a
    /// backend spans a different universe.
    pub fn from_backends(universe: AaBox<2>, router: ShardRouter, shards: Vec<B>) -> Self {
        assert!(!shards.is_empty(), "a cluster needs at least one shard");
        assert_eq!(
            router.n_shards(),
            shards.len(),
            "router and backend count must agree"
        );
        for (s, shard) in shards.iter().enumerate() {
            assert_eq!(
                shard.universe(),
                &universe,
                "shard {s} ({}) spans a different universe",
                shard.describe()
            );
        }
        ShardedDatabase::from_parts(universe, router, shards, Vec::new())
    }

    pub(crate) fn from_parts(
        universe: AaBox<2>,
        router: ShardRouter,
        shards: Vec<B>,
        collections: Vec<LogicalCollection>,
    ) -> Self {
        let by_name = collections
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), CollectionId(i)))
            .collect();
        ShardedDatabase {
            universe,
            router,
            shards,
            collections,
            by_name,
            obs: DbInstruments::new(),
        }
    }

    /// The router-side instruments (probe and route latency).
    pub fn obs(&self) -> &DbInstruments {
        &self.obs
    }

    /// Replaces the global mapping layer (snapshot reload plumbing).
    pub(crate) fn set_collections(&mut self, mut collections: Vec<LogicalCollection>) {
        // A reload is itself a mutation: whatever epoch the outgoing
        // mapping had reached, a same-named reloaded collection gets a
        // strictly larger one, so epoch-validated caches can never
        // serve pre-reload answers against post-reload contents.
        for c in &mut collections {
            if let Some(&old) = self.by_name.get(&c.name) {
                c.epoch = c.epoch.max(self.collections[old.0].epoch + 1);
            }
        }
        self.by_name = collections
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), CollectionId(i)))
            .collect();
        self.collections = collections;
    }

    /// The universe box.
    pub fn universe(&self) -> &AaBox<2> {
        &self.universe
    }

    /// The router (shard map).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's backend.
    pub fn backend(&self, s: usize) -> &B {
        &self.shards[s]
    }

    /// Mutable access to one shard's backend — for backend-level
    /// configuration after connect (e.g.
    /// [`crate::RemoteShard::set_clock`] in deterministic
    /// fault-injection tests). The backend's data plane has no mutable
    /// surface here; the mapping layer stays consistent.
    pub fn backend_mut(&mut self, s: usize) -> &mut B {
        &mut self.shards[s]
    }

    /// WAL counters summed across every shard (and, for replicated
    /// backends, every replica). `None` when no shard keeps a log.
    pub fn wal_stats(&self) -> Option<crate::wal::WalStats> {
        let mut agg: Option<crate::wal::WalStats> = None;
        for shard in &self.shards {
            if let Some(stats) = shard.wal_stats() {
                agg = Some(agg.map_or(stats, |a| a.merge(&stats)));
            }
        }
        agg
    }

    /// Runs [`crate::ShardBackend::resync`] on every shard, summing
    /// the outcomes: lagging replicas catch up by WAL shipping when
    /// the primary's log still reaches genesis, by full snapshot
    /// otherwise. A shard with no desynced replicas contributes
    /// nothing. Stops loudly on the first non-transport failure.
    pub fn resync_all(&mut self) -> Result<crate::remote::ResyncOutcome, ShardError> {
        let mut total = crate::remote::ResyncOutcome::default();
        for shard in &mut self.shards {
            let outcome = shard.resync()?;
            total.resynced += outcome.resynced;
            total.via_wal += outcome.via_wal;
            total.via_snapshot += outcome.via_snapshot;
        }
        Ok(total)
    }

    pub(crate) fn backends(&self) -> &[B] {
        &self.shards
    }

    pub(crate) fn backends_mut(&mut self) -> &mut [B] {
        &mut self.shards
    }

    /// Creates (or returns) the collection with the given name. The
    /// collection exists in every shard. Backend failures surface as
    /// errors; on the default local backend this never fails.
    pub fn try_collection(&mut self, name: &str) -> Result<CollectionId, ShardError> {
        if let Some(&id) = self.by_name.get(name) {
            return Ok(id);
        }
        let id = CollectionId(self.collections.len());
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let sc = shard.create_collection(name)?;
            // Logical and shard-local collection ids coincide because
            // every shard creates collections in the same order. A
            // shard that numbers a collection differently (e.g. one
            // that missed an earlier create during a partial failure)
            // must be a hard error even in release builds: routing to
            // it would silently read and write the wrong collection.
            if sc != id {
                return Err(ShardError::Rejected(format!(
                    "shard {s} ({}) numbered collection {name:?} as {} (expected {}): \
                     shards are out of lockstep with the router",
                    shard.describe(),
                    sc.0,
                    id.0
                )));
            }
        }
        self.collections.push(LogicalCollection {
            name: name.to_owned(),
            slots: Vec::new(),
            live: Vec::new(),
            live_count: 0,
            empty_objects: Vec::new(),
            per_shard: (0..self.shards.len())
                .map(|_| ShardSide::default())
                .collect(),
            epoch: 0,
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// [`ShardedDatabase::try_collection`], panicking on a backend
    /// failure (infallible on local backends).
    pub fn collection(&mut self, name: &str) -> CollectionId {
        self.try_collection(name)
            .unwrap_or_else(|e| panic!("collection {name:?}: {e}"))
    }

    /// Looks up a collection by name.
    pub fn collection_id(&self, name: &str) -> Option<CollectionId> {
        self.by_name.get(name).copied()
    }

    /// The collection's name.
    pub fn collection_name(&self, id: CollectionId) -> &str {
        &self.collections[id.0].name
    }

    /// All collection ids.
    pub fn collections(&self) -> impl Iterator<Item = CollectionId> {
        (0..self.collections.len()).map(CollectionId)
    }

    /// The shard an object currently lives on.
    pub fn shard_of(&self, obj: ObjectRef) -> usize {
        self.collections[obj.collection.0].slots[obj.index].shard as usize
    }

    /// Inserts an object: routed by its bounding-box center to one
    /// shard, registered under a fresh global slot.
    pub fn try_insert(
        &mut self,
        coll: CollectionId,
        region: Region<2>,
    ) -> Result<ObjectRef, ShardError> {
        let bbox = region.bbox();
        let s = self.router.route_bbox(&bbox);
        let local = self.shards[s].insert(coll, region)?;
        let c = &mut self.collections[coll.0];
        let index = c.slots.len();
        c.per_shard[s].globals.push(index as u64);
        debug_assert_eq!(c.per_shard[s].globals.len(), local + 1);
        c.slots.push(SlotAddr {
            shard: s as u32,
            local: local as u32,
        });
        c.live.push(true);
        c.live_count += 1;
        c.epoch += 1;
        if bbox.is_empty() {
            c.empty_objects.push(index);
        }
        Ok(ObjectRef {
            collection: coll,
            index,
        })
    }

    /// [`ShardedDatabase::try_insert`], panicking on a backend failure
    /// (infallible on local backends).
    pub fn insert(&mut self, coll: CollectionId, region: Region<2>) -> ObjectRef {
        self.try_insert(coll, region)
            .unwrap_or_else(|e| panic!("insert: {e}"))
    }

    /// Tombstones an object on its shard and in the global slot space.
    /// Returns `Ok(false)` when the object was already removed.
    pub fn try_remove(&mut self, obj: ObjectRef) -> Result<bool, ShardError> {
        let c = &mut self.collections[obj.collection.0];
        if !c.live[obj.index] {
            return Ok(false);
        }
        let addr = c.slots[obj.index];
        let removed =
            self.shards[addr.shard as usize].remove(obj.collection, addr.local as usize)?;
        if !removed {
            return Err(ShardError::Rejected(
                "shard out of sync with global liveness".into(),
            ));
        }
        c.live[obj.index] = false;
        c.live_count -= 1;
        c.epoch += 1;
        c.empty_objects.retain(|&i| i != obj.index);
        Ok(true)
    }

    /// [`ShardedDatabase::try_remove`], panicking on a backend failure.
    pub fn remove(&mut self, obj: ObjectRef) -> bool {
        self.try_remove(obj)
            .unwrap_or_else(|e| panic!("remove: {e}"))
    }

    /// Replaces a live object's region. When the new bounding box
    /// routes to a different shard the object **migrates**: tombstone
    /// on the old shard, fresh slot on the new one, global slot
    /// repointed — the caller's `ObjectRef` keeps working. Returns
    /// `Ok(false)` (changing nothing) when the object is tombstoned.
    pub fn try_update(&mut self, obj: ObjectRef, region: Region<2>) -> Result<bool, ShardError> {
        let c = &mut self.collections[obj.collection.0];
        if !c.live[obj.index] {
            return Ok(false);
        }
        let addr = c.slots[obj.index];
        let old_shard = addr.shard as usize;
        let local = addr.local as usize;
        let was_empty = self.shards[old_shard]
            .bbox(obj.collection, local)
            .is_empty();
        let new_bbox = region.bbox();
        let new_shard = self.router.route_bbox(&new_bbox);
        if new_shard == old_shard {
            let ok = self.shards[old_shard].update(obj.collection, local, region)?;
            if !ok {
                return Err(ShardError::Rejected(
                    "shard out of sync with global liveness".into(),
                ));
            }
        } else {
            // Migration order is insert-new-first so a failure at any
            // single step never loses the object: an insert failure
            // changes nothing (the object stays live on the old
            // shard), and a remove failure rolls the fresh copy back.
            let new_local = self.shards[new_shard].insert(obj.collection, region)?;
            match self.shards[old_shard].remove(obj.collection, local) {
                Ok(true) => {}
                outcome => {
                    // Roll back the copy. The reverse table still gets
                    // an entry so local slots and `globals` stay
                    // index-aligned; the slot is dead (or, if even the
                    // rollback fails, an orphan `check()` reports), so
                    // the sentinel is never read on the query path.
                    let _ = self.shards[new_shard].remove(obj.collection, new_local);
                    c.per_shard[new_shard].globals.push(u64::MAX);
                    return match outcome {
                        Ok(false) => Err(ShardError::Rejected("shard desync".into())),
                        Err(e) => Err(e),
                        Ok(true) => unreachable!("handled above"),
                    };
                }
            }
            c.per_shard[new_shard].globals.push(obj.index as u64);
            debug_assert_eq!(c.per_shard[new_shard].globals.len(), new_local + 1);
            c.slots[obj.index] = SlotAddr {
                shard: new_shard as u32,
                local: new_local as u32,
            };
        }
        match (was_empty, new_bbox.is_empty()) {
            (false, true) => c.empty_objects.push(obj.index),
            (true, false) => c.empty_objects.retain(|&i| i != obj.index),
            _ => {}
        }
        c.epoch += 1;
        Ok(true)
    }

    /// [`ShardedDatabase::try_update`], panicking on a backend failure.
    pub fn update(&mut self, obj: ObjectRef, region: Region<2>) -> bool {
        self.try_update(obj, region)
            .unwrap_or_else(|e| panic!("update: {e}"))
    }

    /// Number of global slots, tombstones included.
    pub fn collection_len(&self, coll: CollectionId) -> usize {
        self.collections[coll.0].slots.len()
    }

    /// Number of live objects.
    pub fn live_len(&self, coll: CollectionId) -> usize {
        self.collections[coll.0].live_count
    }

    /// The collection's logical mutation epoch (see
    /// `StoreView::epoch`): bumped on the routing tier for every
    /// effective insert/remove/update/compact, so one counter covers
    /// the whole partitioned collection.
    pub fn epoch(&self, coll: CollectionId) -> u64 {
        self.collections[coll.0].epoch
    }

    /// Whether the object's global slot is live.
    pub fn is_live(&self, obj: ObjectRef) -> bool {
        self.collections[obj.collection.0].live[obj.index]
    }

    /// The region of an object (read through its shard backend — for a
    /// remote shard this is the client-side mirror, no round trip).
    pub fn region(&self, obj: ObjectRef) -> &Region<2> {
        let addr = self.collections[obj.collection.0].slots[obj.index];
        self.shards[addr.shard as usize].region(obj.collection, addr.local as usize)
    }

    /// The materialized bounding box of an object.
    pub fn bbox(&self, obj: ObjectRef) -> Bbox<2> {
        let addr = self.collections[obj.collection.0].slots[obj.index];
        self.shards[addr.shard as usize].bbox(obj.collection, addr.local as usize)
    }

    /// Probes one shard's corner query and remaps its answers to
    /// global slots, folding the outcome into `report`.
    ///
    /// Availability policy: a **transport** failure (every replica of
    /// the shard dead, unreachable or breaker-skipped, after the
    /// backend's own reconnect-and-retry and replica failover —
    /// [`crate::WireError::is_transport`])
    /// degrades the read: the shard is recorded in
    /// [`ProbeReport::missing_shards`], its candidates are dropped,
    /// and the query continues over the surviving shards. Everything
    /// else — a rejection (unknown collection, desynchronized state),
    /// a wire version mismatch, an unexpected response shape,
    /// undecodable bytes — still panics: that is misconfiguration or
    /// corruption, not an outage, and must be loud rather than be
    /// reported forever as a partial answer.
    pub(crate) fn probe_shard(
        &self,
        s: usize,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<2>,
        out: &mut Vec<u64>,
        report: &mut ProbeReport,
    ) {
        let start = out.len();
        let started = std::time::Instant::now();
        // The span names the shard up front (so a probe that panics
        // still identifies itself) and refines its detail once the
        // outcome is known. Failover/retry/breaker events recorded by
        // the backend nest under it.
        let mut span = scq_obs::span("probe", format!("shard={s}"));
        // Retries and failovers count whether the probe lands or not:
        // a shard that flapped and then died looks different from one
        // that was never reachable.
        let mut trace = crate::backend::ProbeTrace::default();
        let result = self.shards[s].try_corner_query(coll, kind, q, out, &mut trace);
        report.retries += trace.retries;
        report.failovers += trace.failovers;
        match result {
            Ok(()) => {
                if trace.stale {
                    report.stale_shards.push(s);
                }
                let globals = &self.collections[coll.0].per_shard[s].globals;
                for id in &mut out[start..] {
                    *id = globals[*id as usize];
                }
                if let Some(sp) = span.as_mut() {
                    sp.set_detail(format!(
                        "shard={s} backend={} candidates={}",
                        self.shards[s].describe(),
                        out.len() - start
                    ));
                }
            }
            Err(ShardError::Wire(e)) if e.is_transport() => {
                out.truncate(start);
                report.missing_shards.push(s);
                if let Some(sp) = span.as_mut() {
                    sp.set_detail(format!(
                        "shard={s} backend={} unavailable",
                        self.shards[s].describe()
                    ));
                }
            }
            Err(e) => panic!(
                "shard {s} ({}) failed a corner query with a non-transport error: {e}",
                self.shards[s].describe()
            ),
        }
        self.obs.probe_latency.observe(started.elapsed());
    }

    /// Runs a corner query against the chosen index of every shard the
    /// router cannot prune, appending matching **global** object
    /// indices. Returns a [`ProbeReport`]: shards pruned, transport
    /// retries, and shards that were probed but unavailable (their
    /// candidates are missing — the read is degraded, not failed).
    ///
    /// Allocation-free in steady state: each shard's ids land directly
    /// in `out` and are remapped to global slots in place, and the
    /// candidate-shard list lives in a reusable thread-local buffer —
    /// this runs once per node per level of the backtracking search,
    /// the same hot path the engine's `LevelBuf` pool protects.
    pub fn query_collection(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<2>,
        out: &mut Vec<u64>,
    ) -> ProbeReport {
        SHARD_SCRATCH.with(|buf| {
            let mut shards = buf.borrow_mut();
            let route_started = std::time::Instant::now();
            self.router.candidate_shards(q, &mut shards);
            let route_us = scq_engine::stats::elapsed_us(route_started);
            self.obs.route_latency.observe_us(route_us);
            let mut report = ProbeReport {
                route_us,
                ..ProbeReport::default()
            };
            for &s in shards.iter() {
                self.probe_shard(s, coll, kind, q, out, &mut report);
            }
            report.shards_pruned = self.n_shards() - shards.len();
            report
        })
    }

    /// *Live* global indices of objects with empty regions.
    pub fn empty_objects(&self, coll: CollectionId) -> &[usize] {
        &self.collections[coll.0].empty_objects
    }

    /// `(shard, local slot)` of a global slot (snapshot plumbing).
    pub(crate) fn slot_addr(&self, obj: ObjectRef) -> (usize, usize) {
        let addr = self.collections[obj.collection.0].slots[obj.index];
        (addr.shard as usize, addr.local as usize)
    }

    /// Iterates over the live global slot indices of a collection.
    pub fn live_indices(&self, coll: CollectionId) -> impl Iterator<Item = usize> + '_ {
        self.collections[coll.0]
            .live
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| l.then_some(i))
    }

    /// Structural integrity: every shard backend passes its own check
    /// (for a remote shard: the shard process's integrity check plus a
    /// mirror census), and the global mapping tables are a
    /// liveness-respecting bijection consistent with the router. An
    /// empty `Ok(())` means the sharded database survived its mutation
    /// history (inserts, removes, cross-shard migrations, compactions)
    /// intact.
    pub fn check(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            problems.extend(shard.check().into_iter().map(|p| format!("shard {s}: {p}")));
        }
        for (ci, c) in self.collections.iter().enumerate() {
            let coll = CollectionId(ci);
            let name = &c.name;
            if c.slots.len() != c.live.len() {
                problems.push(format!("{name}: slot/liveness table length mismatch"));
                continue;
            }
            let recount = c.live.iter().filter(|&&l| l).count();
            if recount != c.live_count {
                problems.push(format!(
                    "{name}: cached live count {} != recount {recount}",
                    c.live_count
                ));
            }
            let shard_live: usize = self.shards.iter().map(|s| s.live_len(coll)).sum();
            if shard_live != c.live_count {
                problems.push(format!(
                    "{name}: shards hold {shard_live} live objects, mapping says {}",
                    c.live_count
                ));
            }
            for (gi, (&addr, &live)) in c.slots.iter().zip(&c.live).enumerate() {
                let (s, l) = (addr.shard as usize, addr.local as usize);
                if s >= self.shards.len() || l >= self.shards[s].collection_len(coll) {
                    problems.push(format!("{name}[{gi}]: dangling shard address"));
                    continue;
                }
                if c.per_shard[s].globals.get(l).copied() != Some(gi as u64) {
                    problems.push(format!(
                        "{name}[{gi}]: reverse mapping disagrees on shard {s} slot {l}"
                    ));
                }
                if live != self.shards[s].is_live(coll, l) {
                    problems.push(format!(
                        "{name}[{gi}]: global liveness {live} != shard liveness"
                    ));
                }
                if live {
                    let owner = self.router.route_bbox(&self.shards[s].bbox(coll, l));
                    if owner != s {
                        problems.push(format!(
                            "{name}[{gi}]: lives on shard {s} but routes to {owner}"
                        ));
                    }
                }
            }
            let mut empties: Vec<usize> = c.empty_objects.clone();
            empties.sort_unstable();
            let expect: Vec<usize> = c
                .live
                .iter()
                .enumerate()
                .filter(|&(gi, &l)| {
                    l && StoreView::bbox(
                        self,
                        ObjectRef {
                            collection: coll,
                            index: gi,
                        },
                    )
                    .is_empty()
                })
                .map(|(gi, _)| gi)
                .collect();
            if empties != expect {
                problems.push(format!(
                    "{name}: empty-object list {empties:?} != live empty regions {expect:?}"
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Compacts every shard backend **and** the global slot space:
    /// tombstoned global slots are dropped, live ones shift down, and
    /// the shard remap tables fix up the mapping layer — the same remap
    /// contract callers use, applied to the sharded database's own held
    /// refs. Returns the global remap.
    pub fn try_compact(&mut self) -> Result<CompactReport, ShardError> {
        let shard_reports: Vec<CompactReport> = self
            .shards
            .iter_mut()
            .map(|s| s.compact())
            .collect::<Result<_, _>>()?;
        let mut report = CompactReport {
            remap: Vec::with_capacity(self.collections.len()),
            slots_reclaimed: 0,
        };
        for (ci, c) in self.collections.iter_mut().enumerate() {
            let coll = CollectionId(ci);
            let mut remap: Vec<Option<usize>> = Vec::with_capacity(c.slots.len());
            let old_slots = std::mem::take(&mut c.slots);
            let old_live = std::mem::take(&mut c.live);
            // Shard-local slot order is not global order (migrated
            // objects got late local slots under early global ids), so
            // the reverse tables are assigned by index, not pushed.
            for (s, side) in c.per_shard.iter_mut().enumerate() {
                side.globals.clear();
                side.globals
                    .resize(self.shards[s].collection_len(coll), u64::MAX);
            }
            c.empty_objects.clear();
            for (addr, live) in old_slots.into_iter().zip(old_live) {
                if !live {
                    remap.push(None);
                    report.slots_reclaimed += 1;
                    continue;
                }
                let s = addr.shard as usize;
                let new_local = shard_reports[s]
                    .fix_up(ObjectRef {
                        collection: coll,
                        index: addr.local as usize,
                    })
                    .expect("live global slot maps to live shard slot")
                    .index;
                let index = c.slots.len();
                remap.push(Some(index));
                c.slots.push(SlotAddr {
                    shard: addr.shard,
                    local: new_local as u32,
                });
                debug_assert_eq!(c.per_shard[s].globals[new_local], u64::MAX);
                c.per_shard[s].globals[new_local] = index as u64;
                if self.shards[s].bbox(coll, new_local).is_empty() {
                    c.empty_objects.push(index);
                }
            }
            debug_assert!(c
                .per_shard
                .iter()
                .all(|side| side.globals.iter().all(|&g| g != u64::MAX)));
            c.live = vec![true; c.slots.len()];
            c.live_count = c.slots.len();
            c.epoch += 1;
            report.remap.push(remap);
        }
        Ok(report)
    }

    /// [`ShardedDatabase::try_compact`], panicking on a backend
    /// failure (infallible on local backends).
    pub fn compact(&mut self) -> CompactReport {
        self.try_compact()
            .unwrap_or_else(|e| panic!("compact: {e}"))
    }
}

impl<B: ShardBackend> StoreView<2> for ShardedDatabase<B> {
    fn universe(&self) -> &AaBox<2> {
        ShardedDatabase::universe(self)
    }

    fn collection_len(&self, coll: CollectionId) -> usize {
        ShardedDatabase::collection_len(self, coll)
    }

    fn live_len(&self, coll: CollectionId) -> usize {
        ShardedDatabase::live_len(self, coll)
    }

    fn epoch(&self, coll: CollectionId) -> u64 {
        ShardedDatabase::epoch(self, coll)
    }

    fn is_live(&self, obj: ObjectRef) -> bool {
        ShardedDatabase::is_live(self, obj)
    }

    fn region(&self, obj: ObjectRef) -> &Region<2> {
        ShardedDatabase::region(self, obj)
    }

    fn bbox(&self, obj: ObjectRef) -> Bbox<2> {
        ShardedDatabase::bbox(self, obj)
    }

    fn query_collection(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<2>,
        out: &mut Vec<u64>,
    ) -> ProbeReport {
        ShardedDatabase::query_collection(self, coll, kind, q, out)
    }

    fn empty_objects(&self, coll: CollectionId) -> &[usize] {
        ShardedDatabase::empty_objects(self, coll)
    }

    fn live_indices_into(&self, coll: CollectionId, out: &mut Vec<usize>) {
        out.extend(self.live_indices(coll));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(n: usize) -> ShardedDatabase {
        ShardedDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]), n)
    }

    fn boxed(x: f64, y: f64, w: f64, h: f64) -> Region<2> {
        Region::from_box(AaBox::new([x, y], [x + w, y + h]))
    }

    #[test]
    fn inserts_spread_across_shards() {
        let mut d = db(4);
        let c = d.collection("boxes");
        for i in 0..40 {
            let t = (i * 7 % 38) as f64 * 2.5;
            d.insert(c, boxed(t, 95.0 - t, 2.0, 2.0));
        }
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..40 {
            seen.insert(d.shard_of(ObjectRef {
                collection: c,
                index: i,
            }));
        }
        assert!(seen.len() > 1, "diagonal data spans shards: {seen:?}");
        assert_eq!(d.collection_len(c), 40);
        assert_eq!(d.live_len(c), 40);
        d.check().expect("consistent");
    }

    #[test]
    fn queries_return_global_ids() {
        let mut d = db(4);
        let c = d.collection("boxes");
        let mut expect = Vec::new();
        for i in 0..30 {
            let t = (i * 11 % 29) as f64 * 3.0;
            let r = d.insert(c, boxed(t, t, 2.0, 2.0));
            // The probe sits off-center (inside the low z-quadrants),
            // so the router can prove the far shards disjoint.
            if t >= 2.0 && t + 2.0 <= 40.0 {
                expect.push(r.index as u64);
            }
        }
        expect.sort_unstable();
        let probe = Bbox::new([2.0, 2.0], [40.0, 40.0]);
        let q = CornerQuery::unconstrained().and_contained_in(&probe);
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let mut out = Vec::new();
            let report = d.query_collection(c, kind, &q, &mut out);
            out.sort_unstable();
            assert_eq!(out, expect, "{kind:?}");
            assert!(
                report.shards_pruned > 0,
                "diagonal probe must prune ({kind:?})"
            );
            assert!(report.is_complete(), "local shards are always available");
            assert_eq!(report.retries, 0);
        }
    }

    #[test]
    fn remove_and_update_preserve_global_refs() {
        let mut d = db(3);
        let c = d.collection("objs");
        let a = d.insert(c, boxed(5.0, 5.0, 2.0, 2.0));
        let b = d.insert(c, boxed(90.0, 90.0, 2.0, 2.0));
        assert_ne!(d.shard_of(a), d.shard_of(b), "far corners shard apart");
        assert!(d.remove(a));
        assert!(!d.remove(a));
        assert!(d.is_live(b));
        assert_eq!(d.live_len(c), 1);
        // update b across the universe: it migrates shards, ref intact
        let before = d.shard_of(b);
        assert!(d.update(b, boxed(2.0, 2.0, 2.0, 2.0)));
        assert_ne!(d.shard_of(b), before, "object migrated");
        assert!(d.region(b).same_set(&boxed(2.0, 2.0, 2.0, 2.0)));
        assert_eq!(d.live_len(c), 1);
        d.check().expect("consistent after migration");
        // the migrated object is queryable at its new location only
        let q_new =
            CornerQuery::unconstrained().and_contained_in(&Bbox::new([0.0, 0.0], [10.0, 10.0]));
        let mut out = Vec::new();
        d.query_collection(c, IndexKind::RTree, &q_new, &mut out);
        assert_eq!(out, vec![1]);
        let q_old =
            CornerQuery::unconstrained().and_contained_in(&Bbox::new([80.0, 80.0], [100.0, 100.0]));
        out.clear();
        d.query_collection(c, IndexKind::RTree, &q_old, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_regions_route_and_track() {
        let mut d = db(4);
        let c = d.collection("objs");
        d.insert(c, boxed(50.0, 50.0, 5.0, 5.0));
        let e = d.insert(c, Region::empty());
        assert_eq!(d.empty_objects(c), &[1]);
        assert!(d.update(e, boxed(1.0, 1.0, 1.0, 1.0)));
        assert!(d.empty_objects(c).is_empty());
        assert!(d.update(e, Region::empty()));
        assert_eq!(d.empty_objects(c), &[1]);
        assert!(d.remove(e));
        assert!(d.empty_objects(c).is_empty());
        d.check().expect("consistent");
    }

    #[test]
    fn sharded_compact_reclaims_and_remaps() {
        let mut d = db(4);
        let c = d.collection("objs");
        let refs: Vec<ObjectRef> = (0..20)
            .map(|i| {
                let t = (i * 13 % 19) as f64 * 5.0;
                d.insert(c, boxed(t, 95.0 - t, 3.0, 3.0))
            })
            .collect();
        // churn: migrate some, remove some
        assert!(d.update(refs[3], boxed(1.0, 1.0, 2.0, 2.0)));
        assert!(d.update(refs[8], boxed(96.0, 96.0, 2.0, 2.0)));
        for &i in &[0usize, 5, 9, 14] {
            assert!(d.remove(refs[i]));
        }
        let survivor_region = d.region(refs[8]).clone();
        let report = d.compact();
        assert_eq!(report.slots_reclaimed, 4);
        assert_eq!(d.collection_len(c), 16);
        assert_eq!(d.live_len(c), 16);
        assert_eq!(report.fix_up(refs[0]), None);
        let r8 = report.fix_up(refs[8]).expect("survivor");
        assert!(d.region(r8).same_set(&survivor_region));
        d.check().expect("consistent after compaction");
        // every shard is tombstone-free
        for s in 0..d.n_shards() {
            assert_eq!(d.shard(s).collection_len(c), d.shard(s).live_len(c));
        }
    }

    #[test]
    fn logical_epoch_tracks_effective_mutations() {
        let mut d = db(3);
        let c = d.collection("objs");
        assert_eq!(StoreView::epoch(&d, c), 0);
        let a = d.insert(c, boxed(5.0, 5.0, 2.0, 2.0));
        let b = d.insert(c, boxed(90.0, 90.0, 2.0, 2.0));
        assert_eq!(StoreView::epoch(&d, c), 2);
        // A migrating update bumps the LOGICAL epoch once, even though
        // two shards mutated underneath.
        assert!(d.update(b, boxed(2.0, 2.0, 2.0, 2.0)));
        assert_eq!(StoreView::epoch(&d, c), 3);
        assert!(d.remove(a));
        assert_eq!(StoreView::epoch(&d, c), 4);
        // Ineffective mutations leave the epoch alone.
        assert!(!d.remove(a));
        assert!(!d.update(a, boxed(1.0, 1.0, 1.0, 1.0)));
        assert_eq!(StoreView::epoch(&d, c), 4);
        d.compact();
        assert_eq!(StoreView::epoch(&d, c), 5);
        // Unrelated collections are isolated.
        let other = d.collection("other");
        d.insert(other, boxed(1.0, 1.0, 1.0, 1.0));
        assert_eq!(StoreView::epoch(&d, other), 1);
        assert_eq!(
            StoreView::epoch(&d, c),
            5,
            "a mutation elsewhere leaves c alone"
        );
    }

    #[test]
    fn single_shard_degenerates_to_plain_database() {
        let mut d = db(1);
        let mut plain = SpatialDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
        let c = d.collection("objs");
        let pc = plain.collection("objs");
        for i in 0..25 {
            let t = (i * 17 % 23) as f64 * 4.0;
            d.insert(c, boxed(t, t / 2.0, 3.0, 4.0));
            plain.insert(pc, boxed(t, t / 2.0, 3.0, 4.0));
        }
        let q = CornerQuery::unconstrained().and_overlaps(&Bbox::new([10.0, 5.0], [40.0, 30.0]));
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let mut a = Vec::new();
            let report = d.query_collection(c, kind, &q, &mut a);
            assert_eq!(report.shards_pruned, 0, "one shard, nothing to prune");
            let mut b = Vec::new();
            plain.query_collection(pc, kind, &q, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{kind:?}");
        }
    }
}
