//! Per-shard snapshot streams plus a manifest.
//!
//! A sharded snapshot is `1 + N` independent byte streams:
//!
//! * the **manifest** — router configuration and the global slot
//!   mapping of every logical collection (`SCQM` format below);
//! * one **shard stream** per shard — the shard's own
//!   [`SpatialDatabase`] in the engine's versioned `SCQS` format
//!   ([`scq_engine::snapshot`]).
//!
//! Streams are written and read **independently**: saving shard `s`
//! serializes only that shard's objects, so a deployment can stream
//! shards to different files, processes or machines without ever
//! materializing the whole database in one buffer. [`load`] reassembles
//! and cross-validates — a manifest that disagrees with its shard
//! payloads (dangling slots, liveness mismatches, double-mapped locals)
//! is rejected with a named [`ShardSnapshotError`] instead of producing
//! a silently wrong database.
//!
//! ```text
//! manifest: magic "SCQM" | u16 version (=3) | u16 dimension (=2)
//!           universe (4 f64 LE)
//!           u32 router bits | u32 shard count
//!           per shard: u64 z-range lo | u64 z-range hi   (v2+)
//!           per shard: u32 replica count                  (v3+)
//!                      per replica: u16 addr length | addr bytes (UTF-8)
//!           u32 collection count
//!           per collection:
//!             u16 name length | name bytes (UTF-8)
//!             u64 slot count
//!             per slot: u32 shard | u32 local slot | u8 flags (bit 0 = live)
//! ```
//!
//! **Version 3** (current) additionally records each shard's replica
//! topology — the ordered address set the cluster was serving from
//! when the snapshot was taken (empty for in-process shards). The
//! addresses are informational: a restore may legitimately target a
//! redeployed cluster at new addresses, so [`reload_from_dir`] checks
//! ranges/bits/shard-count but not addresses. **Version 2** serializes
//! each shard's z-range explicitly, so a cluster with a custom
//! [`crate::ClusterSpec`] range assignment round-trips exactly; v2
//! manifests (no replica table) still load with empty replica sets.
//! **Version 1** manifests (no range table either) also still load:
//! their ranges are the balanced pure function of `(bits, shard
//! count)` ([`scq_zorder::shard_ranges`]), which is all v1 could
//! express.

use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use scq_engine::snapshot::{self, SnapshotError};
use scq_engine::{CollectionId, SpatialDatabase};
use scq_region::AaBox;

use crate::backend::{LocalShard, ShardBackend};
use crate::database::{LogicalCollection, ShardSide, ShardedDatabase, SlotAddr};
use crate::router::ShardRouter;

const MAGIC: &[u8; 4] = b"SCQM";
/// Current (written) manifest version.
const VERSION: u16 = 3;
/// Still-loadable: explicit ranges, no replica-topology table.
const V2: u16 = 2;
/// Oldest still-loadable manifest version (balanced ranges implied).
const V1: u16 = 1;

/// Errors produced while loading a sharded snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardSnapshotError {
    /// The manifest does not start with the `SCQM` magic.
    BadMagic,
    /// Unsupported manifest version.
    BadVersion(u16),
    /// The manifest was written for a different dimension.
    DimensionMismatch(u16),
    /// The manifest ended before its declared content.
    Truncated,
    /// A collection name or replica address was not valid UTF-8.
    BadName,
    /// A universe coordinate was not finite.
    BadCoordinate,
    /// Bytes remained after the declared manifest content.
    TrailingData {
        /// Number of unconsumed bytes.
        bytes: usize,
    },
    /// The router configuration is out of range (bits, shard count).
    BadConfig(String),
    /// One shard stream failed to decode.
    Shard {
        /// Which shard.
        shard: usize,
        /// The engine-level decode error.
        source: SnapshotError,
    },
    /// The manifest and the shard payloads disagree (dangling slot,
    /// liveness mismatch, double-mapped local slot, missing
    /// collection…).
    Inconsistent(String),
    /// A shard backend failed to stream or load its payload (remote
    /// transport failure or rejection).
    Backend {
        /// Which shard.
        shard: usize,
        /// The backend's failure.
        message: String,
    },
    /// Filesystem error while reading or writing snapshot streams.
    Io(String),
}

impl std::fmt::Display for ShardSnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardSnapshotError::BadMagic => write!(f, "not a shard manifest (bad magic)"),
            ShardSnapshotError::BadVersion(v) => write!(f, "unsupported manifest version {v}"),
            ShardSnapshotError::DimensionMismatch(d) => {
                write!(f, "manifest is {d}-dimensional, expected 2")
            }
            ShardSnapshotError::Truncated => write!(f, "manifest truncated"),
            ShardSnapshotError::BadName => write!(f, "collection name or address is not UTF-8"),
            ShardSnapshotError::BadCoordinate => write!(f, "non-finite universe coordinate"),
            ShardSnapshotError::TrailingData { bytes } => {
                write!(f, "{bytes} trailing bytes after the manifest")
            }
            ShardSnapshotError::BadConfig(m) => write!(f, "bad router configuration: {m}"),
            ShardSnapshotError::Shard { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
            ShardSnapshotError::Inconsistent(m) => write!(f, "manifest/shard mismatch: {m}"),
            ShardSnapshotError::Backend { shard, message } => {
                write!(f, "shard {shard} backend: {message}")
            }
            ShardSnapshotError::Io(m) => write!(f, "snapshot io: {m}"),
        }
    }
}

impl std::error::Error for ShardSnapshotError {}

/// Serializes the manifest: router configuration plus the global slot
/// mapping. Object data lives in the per-shard streams
/// ([`save_shard`]).
pub fn save_manifest<B: ShardBackend>(db: &ShardedDatabase<B>) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(2);
    for c in db.universe().lo().iter().chain(db.universe().hi().iter()) {
        buf.put_f64_le(*c);
    }
    buf.put_u32_le(db.router().bits());
    buf.put_u32_le(db.n_shards() as u32);
    for &(lo, hi) in db.router().ranges() {
        buf.put_u64_le(lo);
        buf.put_u64_le(hi);
    }
    // v3: the replica set each shard was serving from (primary first;
    // empty for in-process shards).
    for s in 0..db.n_shards() {
        let replicas = db.backend(s).health();
        buf.put_u32_le(replicas.len() as u32);
        for r in &replicas {
            assert!(
                r.addr.len() <= u16::MAX as usize,
                "replica address exceeds the snapshot format's u16 length"
            );
            buf.put_u16_le(r.addr.len() as u16);
            buf.put_slice(r.addr.as_bytes());
        }
    }
    let collections: Vec<CollectionId> = db.collections().collect();
    buf.put_u32_le(collections.len() as u32);
    for coll in collections {
        let name = db.collection_name(coll);
        // The format frames names with a u16 length; a longer name
        // would silently produce an unparseable manifest.
        assert!(
            name.len() <= u16::MAX as usize,
            "collection name exceeds the snapshot format's u16 length"
        );
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name.as_bytes());
        buf.put_u64_le(db.collection_len(coll) as u64);
        for index in 0..db.collection_len(coll) {
            let obj = scq_engine::ObjectRef {
                collection: coll,
                index,
            };
            let (shard, local) = db.slot_addr(obj);
            buf.put_u32_le(shard as u32);
            buf.put_u32_le(local as u32);
            buf.put_u8(db.is_live(obj) as u8);
        }
    }
    buf.freeze()
}

/// Serializes one shard's stream — only that shard's objects are
/// materialized (a remote backend produces the bytes in the shard
/// process, so they cross the wire once and nothing else does).
pub fn save_shard<B: ShardBackend>(
    db: &ShardedDatabase<B>,
    shard: usize,
) -> Result<Bytes, ShardSnapshotError> {
    db.backend(shard)
        .snapshot_stream()
        .map_err(|e| ShardSnapshotError::Backend {
            shard,
            message: e.to_string(),
        })
}

fn need(buf: &impl Buf, n: usize) -> Result<(), ShardSnapshotError> {
    if buf.remaining() < n {
        Err(ShardSnapshotError::Truncated)
    } else {
        Ok(())
    }
}

/// One global slot as recorded in the manifest: owning shard, local
/// slot, liveness.
type ManifestSlot = (u32, u32, bool);

/// The decoded manifest: everything needed to assemble a
/// [`ShardedDatabase`] from shard streams.
pub struct Manifest {
    universe: AaBox<2>,
    bits: u32,
    n_shards: usize,
    /// The z-range each shard owns (explicit in v2+; the balanced
    /// default for v1 manifests).
    ranges: Vec<(u64, u64)>,
    /// Per shard: the replica addresses it was serving from when the
    /// snapshot was taken (v3+; empty for older manifests and for
    /// in-process shards).
    replicas: Vec<Vec<String>>,
    /// Per collection: name and one [`ManifestSlot`] per global slot.
    collections: Vec<(String, Vec<ManifestSlot>)>,
}

impl Manifest {
    /// Number of shard streams this manifest expects.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The z-range assignment recorded for the shards.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Per shard, the replica addresses recorded at snapshot time
    /// (primary first). Informational: a restore may target a
    /// redeployed cluster, so nothing enforces these at load time.
    /// Empty per-shard lists for v1/v2 manifests and local shards.
    pub fn replica_sets(&self) -> &[Vec<String>] {
        &self.replicas
    }
}

/// Decodes and validates a manifest (no shard data involved).
pub fn load_manifest(data: &[u8]) -> Result<Manifest, ShardSnapshotError> {
    let mut buf = data;
    need(&buf, 8)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ShardSnapshotError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION && version != V2 && version != V1 {
        return Err(ShardSnapshotError::BadVersion(version));
    }
    let dim = buf.get_u16_le();
    if dim != 2 {
        return Err(ShardSnapshotError::DimensionMismatch(dim));
    }
    need(&buf, 32)?;
    let mut u = [0.0f64; 4];
    for c in &mut u {
        let v = buf.get_f64_le();
        if !v.is_finite() {
            return Err(ShardSnapshotError::BadCoordinate);
        }
        *c = v;
    }
    let universe = AaBox::new([u[0], u[1]], [u[2], u[3]]);
    if universe.is_empty() {
        return Err(ShardSnapshotError::BadConfig("empty universe".into()));
    }
    need(&buf, 12)?;
    let bits = buf.get_u32_le();
    if !(1..=16).contains(&bits) {
        return Err(ShardSnapshotError::BadConfig(format!(
            "router bits {bits} outside 1..=16"
        )));
    }
    let n_shards = buf.get_u32_le() as usize;
    if n_shards == 0 || n_shards as u64 > scq_zorder::key_space(bits) {
        return Err(ShardSnapshotError::BadConfig(format!(
            "{n_shards} shards on a {bits}-bit grid"
        )));
    }
    let ranges = if version >= 2 {
        need(&buf, n_shards.saturating_mul(16))?;
        let mut ranges = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let lo = buf.get_u64_le();
            let hi = buf.get_u64_le();
            ranges.push((lo, hi));
        }
        crate::router::validate_ranges(bits, &ranges).map_err(ShardSnapshotError::BadConfig)?;
        ranges
    } else {
        scq_zorder::shard_ranges(bits, n_shards)
    };
    let replicas = if version >= 3 {
        let mut replicas = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            // A corrupt count must not reserve gigabytes; no sane
            // deployment runs this many replicas of one shard.
            if n > 64 {
                return Err(ShardSnapshotError::BadConfig(format!(
                    "shard {s} declares {n} replicas"
                )));
            }
            let mut addrs = Vec::with_capacity(n);
            for _ in 0..n {
                need(&buf, 2)?;
                let len = buf.get_u16_le() as usize;
                need(&buf, len)?;
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                addrs.push(String::from_utf8(bytes).map_err(|_| ShardSnapshotError::BadName)?);
            }
            replicas.push(addrs);
        }
        replicas
    } else {
        vec![Vec::new(); n_shards]
    };
    need(&buf, 4)?;
    let n_coll = buf.get_u32_le();
    let mut collections = Vec::new();
    for _ in 0..n_coll {
        need(&buf, 2)?;
        let name_len = buf.get_u16_le() as usize;
        need(&buf, name_len)?;
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| ShardSnapshotError::BadName)?;
        need(&buf, 8)?;
        let n_slots = buf.get_u64_le();
        // Validate the declared slot bytes before reserving.
        need(&buf, (n_slots as usize).saturating_mul(9))?;
        let mut slots = Vec::with_capacity(n_slots as usize);
        for _ in 0..n_slots {
            let shard = buf.get_u32_le();
            let local = buf.get_u32_le();
            let live = buf.get_u8() & 1 != 0;
            if shard as usize >= n_shards {
                return Err(ShardSnapshotError::Inconsistent(format!(
                    "collection {name:?} maps a slot to shard {shard} of {n_shards}"
                )));
            }
            slots.push((shard, local, live));
        }
        collections.push((name, slots));
    }
    if buf.has_remaining() {
        return Err(ShardSnapshotError::TrailingData {
            bytes: buf.remaining(),
        });
    }
    Ok(Manifest {
        universe,
        bits,
        n_shards,
        ranges,
        replicas,
        collections,
    })
}

/// Rebuilds the global mapping layer from a decoded manifest,
/// cross-validating every slot against the shard backends' actual
/// contents. Shared by [`assemble`] (fresh local assembly) and
/// [`reload_from_dir`] (in-place cluster restore) — the validation is
/// identical whether a shard is a decoded byte stream or a process
/// that just loaded one.
fn build_collections<B: ShardBackend>(
    manifest: &Manifest,
    shards: &[B],
) -> Result<Vec<LogicalCollection>, ShardSnapshotError> {
    let mut collections = Vec::with_capacity(manifest.collections.len());
    for (ci, (name, slots)) in manifest.collections.iter().enumerate() {
        let coll = CollectionId(ci);
        // Each shard stream must carry this collection under the same
        // id (shards create collections in lockstep with the logical
        // table).
        for (s, shard) in shards.iter().enumerate() {
            match shard.collection_id(name) {
                Some(id) if id == coll => {}
                Some(_) => {
                    return Err(ShardSnapshotError::Inconsistent(format!(
                        "shard {s} numbers collection {name:?} differently"
                    )))
                }
                None => {
                    return Err(ShardSnapshotError::Inconsistent(format!(
                        "shard {s} is missing collection {name:?}"
                    )))
                }
            }
        }
        let mut per_shard: Vec<ShardSide> = shards
            .iter()
            .map(|shard| ShardSide {
                globals: vec![u64::MAX; shard.collection_len(coll)],
            })
            .collect();
        let mut live_count = 0usize;
        let mut empty_objects = Vec::new();
        let mut live = Vec::with_capacity(slots.len());
        let mut addrs = Vec::with_capacity(slots.len());
        for (gi, &(shard, local, is_live)) in slots.iter().enumerate() {
            let (s, l) = (shard as usize, local as usize);
            if l >= shards[s].collection_len(coll) {
                return Err(ShardSnapshotError::Inconsistent(format!(
                    "{name:?}[{gi}] points past shard {s}'s {} slots",
                    shards[s].collection_len(coll)
                )));
            }
            if per_shard[s].globals[l] != u64::MAX {
                return Err(ShardSnapshotError::Inconsistent(format!(
                    "{name:?}: shard {s} slot {l} mapped twice"
                )));
            }
            per_shard[s].globals[l] = gi as u64;
            if shards[s].is_live(coll, l) != is_live {
                return Err(ShardSnapshotError::Inconsistent(format!(
                    "{name:?}[{gi}]: manifest liveness disagrees with shard {s}"
                )));
            }
            if is_live {
                live_count += 1;
                if shards[s].bbox(coll, l).is_empty() {
                    empty_objects.push(gi);
                }
            }
            live.push(is_live);
            addrs.push(SlotAddr { shard, local });
        }
        // Every *live* local slot must be reachable from a global slot;
        // dead local slots may be unmapped (an object migrated away
        // leaves its tombstone behind with no global counterpart).
        for (s, side) in per_shard.iter().enumerate() {
            for (l, &g) in side.globals.iter().enumerate() {
                if g == u64::MAX && shards[s].is_live(coll, l) {
                    return Err(ShardSnapshotError::Inconsistent(format!(
                        "{name:?}: live shard {s} slot {l} is unmapped"
                    )));
                }
            }
        }
        collections.push(LogicalCollection {
            name: name.clone(),
            slots: addrs,
            live,
            live_count,
            empty_objects,
            per_shard,
            // Fresh assemblies start at epoch 0; an in-place reload
            // advances past the outgoing mapping's epoch inside
            // `set_collections`.
            epoch: 0,
        });
    }
    Ok(collections)
}

/// Assembles a database over arbitrary backends from a decoded
/// manifest, cross-validating the mapping against each backend's
/// contents. The backends must already hold their shard data (decoded
/// streams for local shards; loaded processes for remote ones).
pub fn assemble_backends<B: ShardBackend>(
    manifest: Manifest,
    shards: Vec<B>,
) -> Result<ShardedDatabase<B>, ShardSnapshotError> {
    if shards.len() != manifest.n_shards {
        return Err(ShardSnapshotError::Inconsistent(format!(
            "manifest expects {} shards, got {}",
            manifest.n_shards,
            shards.len()
        )));
    }
    for (s, shard) in shards.iter().enumerate() {
        if shard.universe() != &manifest.universe {
            return Err(ShardSnapshotError::Inconsistent(format!(
                "shard {s} universe differs from the manifest's"
            )));
        }
    }
    let router =
        ShardRouter::from_ranges(&manifest.universe, manifest.bits, manifest.ranges.clone());
    let collections = build_collections(&manifest, &shards)?;
    Ok(ShardedDatabase::from_parts(
        manifest.universe,
        router,
        shards,
        collections,
    ))
}

/// Assembles a local database from a decoded manifest and one decoded
/// [`SpatialDatabase`] per shard, cross-validating the mapping.
pub fn assemble(
    manifest: Manifest,
    shards: Vec<SpatialDatabase<2>>,
) -> Result<ShardedDatabase, ShardSnapshotError> {
    assemble_backends(
        manifest,
        shards.into_iter().map(LocalShard::from_database).collect(),
    )
}

/// Loads a sharded database from a manifest and per-shard payloads.
pub fn load(
    manifest: &[u8],
    shard_payloads: &[impl AsRef<[u8]>],
) -> Result<ShardedDatabase, ShardSnapshotError> {
    let m = load_manifest(manifest)?;
    let mut shards = Vec::with_capacity(shard_payloads.len());
    for (s, payload) in shard_payloads.iter().enumerate() {
        shards.push(
            snapshot::load::<2>(payload.as_ref())
                .map_err(|source| ShardSnapshotError::Shard { shard: s, source })?,
        );
    }
    assemble(m, shards)
}

/// File name of the manifest inside a snapshot directory.
pub const MANIFEST_FILE: &str = "manifest.scqm";

/// File name of one shard's stream inside a snapshot directory.
pub fn shard_file(s: usize) -> String {
    format!("shard-{s:04}.scqs")
}

/// Writes the snapshot into a directory: `manifest.scqm` plus one
/// `shard-NNNN.scqs` per shard, each streamed independently (one
/// shard's bytes in memory at a time). Works over any backend: for a
/// remote cluster the router pulls each shard process's stream over
/// the wire and writes it out, one shard at a time.
pub fn save_to_dir<B: ShardBackend>(
    db: &ShardedDatabase<B>,
    dir: &Path,
) -> Result<(), ShardSnapshotError> {
    let io = |e: std::io::Error| ShardSnapshotError::Io(e.to_string());
    std::fs::create_dir_all(dir).map_err(io)?;
    let mut f = std::fs::File::create(dir.join(MANIFEST_FILE)).map_err(io)?;
    f.write_all(&save_manifest(db)).map_err(io)?;
    for s in 0..db.n_shards() {
        let mut f = std::fs::File::create(dir.join(shard_file(s))).map_err(io)?;
        f.write_all(&save_shard(db, s)?).map_err(io)?;
    }
    Ok(())
}

/// Loads a snapshot directory written by [`save_to_dir`], reading one
/// shard stream at a time.
pub fn load_from_dir(dir: &Path) -> Result<ShardedDatabase, ShardSnapshotError> {
    let io = |e: std::io::Error| ShardSnapshotError::Io(e.to_string());
    let mut manifest = Vec::new();
    std::fs::File::open(dir.join(MANIFEST_FILE))
        .map_err(io)?
        .read_to_end(&mut manifest)
        .map_err(io)?;
    let m = load_manifest(&manifest)?;
    let mut shards = Vec::with_capacity(m.n_shards());
    for s in 0..m.n_shards() {
        let mut payload = Vec::new();
        std::fs::File::open(dir.join(shard_file(s)))
            .map_err(io)?
            .read_to_end(&mut payload)
            .map_err(io)?;
        shards.push(
            snapshot::load::<2>(&payload)
                .map_err(|source| ShardSnapshotError::Shard { shard: s, source })?,
        );
    }
    assemble(m, shards)
}

/// Restores a snapshot directory **in place** into an existing sharded
/// database — the cluster restore path: each shard backend (possibly a
/// remote process) swallows its own stream, then the global mapping is
/// rebuilt from the manifest with full cross-validation.
///
/// The receiving database's topology must match the snapshot's:
/// universe, router bits, shard count and range assignment. A snapshot
/// of a 4-shard cluster cannot be poured into a 2-shard one — shard
/// processes cannot be conjured, so a mismatch is a named error rather
/// than a silent reshape.
pub fn reload_from_dir<B: ShardBackend>(
    db: &mut ShardedDatabase<B>,
    dir: &Path,
) -> Result<(), ShardSnapshotError> {
    let io = |e: std::io::Error| ShardSnapshotError::Io(e.to_string());
    let mut manifest = Vec::new();
    std::fs::File::open(dir.join(MANIFEST_FILE))
        .map_err(io)?
        .read_to_end(&mut manifest)
        .map_err(io)?;
    let m = load_manifest(&manifest)?;
    if m.universe != *db.universe() {
        return Err(ShardSnapshotError::Inconsistent(format!(
            "snapshot universe {:?} differs from the cluster's {:?}",
            m.universe,
            db.universe()
        )));
    }
    if m.n_shards != db.n_shards() || m.bits != db.router().bits() {
        return Err(ShardSnapshotError::Inconsistent(format!(
            "snapshot topology ({} shards, {} bits) differs from the cluster's ({} shards, {} bits)",
            m.n_shards,
            m.bits,
            db.n_shards(),
            db.router().bits()
        )));
    }
    if m.ranges != db.router().ranges() {
        return Err(ShardSnapshotError::Inconsistent(
            "snapshot shard ranges differ from the cluster's range assignment".into(),
        ));
    }
    // Read and decode every stream BEFORE any backend swallows one:
    // the common failures (missing file, corrupt stream, wrong
    // universe) must reject the restore with the cluster untouched.
    let mut payloads = Vec::with_capacity(db.n_shards());
    for s in 0..db.n_shards() {
        let mut payload = Vec::new();
        std::fs::File::open(dir.join(shard_file(s)))
            .map_err(io)?
            .read_to_end(&mut payload)
            .map_err(io)?;
        let decoded = snapshot::load::<2>(&payload)
            .map_err(|source| ShardSnapshotError::Shard { shard: s, source })?;
        if decoded.universe() != db.universe() {
            return Err(ShardSnapshotError::Inconsistent(format!(
                "shard {s} stream universe differs from the cluster's"
            )));
        }
        payloads.push(payload);
    }
    // Push the pre-validated streams. A transport failure mid-loop
    // (remote backends only) leaves the shards split between old and
    // new data; the stale mapping would then index into the wrong
    // shard contents, so it is dropped — the store comes back empty
    // (every command answers `ERR unknown collection`) rather than
    // serving mixed or out-of-bounds reads, and a retried SNAPSHOT
    // LOAD restores it completely.
    let poisoned = |db: &mut ShardedDatabase<B>, err: ShardSnapshotError| {
        db.set_collections(Vec::new());
        Err(err)
    };
    for (s, payload) in payloads.iter().enumerate() {
        if let Err(e) = db.backends_mut()[s].load_snapshot(payload) {
            return poisoned(
                db,
                ShardSnapshotError::Backend {
                    shard: s,
                    message: e.to_string(),
                },
            );
        }
    }
    match build_collections(&m, db.backends()) {
        Ok(collections) => {
            db.set_collections(collections);
            Ok(())
        }
        Err(e) => poisoned(db, e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DEFAULT_ROUTER_BITS;
    use scq_bbox::{Bbox, CornerQuery};
    use scq_engine::{IndexKind, ObjectRef};
    use scq_region::Region;

    fn sample() -> ShardedDatabase {
        let mut db = ShardedDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]), 4);
        let a = db.collection("alpha");
        let b = db.collection("beta");
        for i in 0..25 {
            let t = (i * 17 % 91) as f64;
            db.insert(
                a,
                Region::from_box(AaBox::new([t, 90.0 - t], [t + 4.0, 94.0 - t])),
            );
            if i % 3 == 0 {
                db.insert(b, Region::from_box(AaBox::new([t, t], [t + 2.0, t + 6.0])));
            }
        }
        db.insert(b, Region::empty());
        // churn so the snapshot carries tombstones and a migration
        let gone = ObjectRef {
            collection: a,
            index: 3,
        };
        assert!(db.remove(gone));
        let moved = ObjectRef {
            collection: a,
            index: 7,
        };
        assert!(db.update(moved, Region::from_box(AaBox::new([1.0, 1.0], [3.0, 3.0]))));
        db
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = sample();
        let manifest = save_manifest(&db);
        let payloads: Vec<Bytes> = (0..db.n_shards())
            .map(|s| save_shard(&db, s).unwrap())
            .collect();
        let loaded = load(&manifest, &payloads).unwrap();
        loaded.check().expect("reloaded database is consistent");
        assert_eq!(loaded.n_shards(), db.n_shards());
        for coll in db.collections() {
            let name = db.collection_name(coll);
            let lcoll = loaded.collection_id(name).unwrap();
            assert_eq!(db.collection_len(coll), loaded.collection_len(lcoll));
            assert_eq!(db.live_len(coll), loaded.live_len(lcoll));
            assert_eq!(db.empty_objects(coll), loaded.empty_objects(lcoll));
            for index in 0..db.collection_len(coll) {
                let o = ObjectRef {
                    collection: coll,
                    index,
                };
                assert_eq!(db.is_live(o), loaded.is_live(o), "{name}[{index}]");
                assert!(db.region(o).same_set(loaded.region(o)), "{name}[{index}]");
            }
            // index answers agree
            let q = CornerQuery::unconstrained().and_overlaps(&Bbox::new([0.0, 0.0], [60.0, 60.0]));
            for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
                let (mut x, mut y) = (Vec::new(), Vec::new());
                db.query_collection(coll, kind, &q, &mut x);
                loaded.query_collection(lcoll, kind, &q, &mut y);
                x.sort_unstable();
                y.sort_unstable();
                assert_eq!(x, y, "{kind:?}");
            }
        }
    }

    #[test]
    fn directory_round_trip() {
        let db = sample();
        let dir = std::env::temp_dir().join(format!("scq_shard_snap_{}", std::process::id()));
        save_to_dir(&db, &dir).unwrap();
        let loaded = load_from_dir(&dir).unwrap();
        loaded.check().expect("consistent");
        assert_eq!(
            db.live_len(db.collection_id("alpha").unwrap()),
            loaded.live_len(loaded.collection_id("alpha").unwrap())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    // ranges sit after magic(4)+version(2)+dim(2)+universe(32)+
    // bits(4)+count(4) = 48, sixteen bytes per shard
    const RANGES_AT: usize = 48;

    /// Byte offset of the v3 replica-topology table in a manifest of
    /// `n` shards.
    fn replicas_at(n: usize) -> usize {
        RANGES_AT + n * 16
    }

    #[test]
    fn v1_manifests_still_load_with_balanced_ranges() {
        // A v1 manifest is the current one minus the range table and
        // the replica table: rewrite the version field and splice both
        // out. The loader must fall back to the balanced assignment,
        // which is all v1 could express.
        let db = sample();
        let n = db.n_shards();
        let v3 = save_manifest(&db).to_vec();
        let mut v1 = v3.clone();
        v1[4..6].copy_from_slice(&1u16.to_le_bytes());
        // local shards record empty replica sets: 4 bytes per shard
        v1.drain(RANGES_AT..RANGES_AT + n * 16 + n * 4);
        let m = load_manifest(&v1).expect("v1 manifest loads");
        assert_eq!(m.n_shards(), n);
        assert_eq!(m.ranges(), scq_zorder::shard_ranges(DEFAULT_ROUTER_BITS, n));
        assert!(m.replica_sets().iter().all(|s| s.is_empty()));
        let payloads: Vec<Bytes> = (0..n).map(|s| save_shard(&db, s).unwrap()).collect();
        let loaded = load(&v1, &payloads).expect("v1 snapshot assembles");
        loaded.check().expect("consistent");
        // and a current manifest declaring non-tiling ranges is rejected
        let mut bad = v3.clone();
        bad[RANGES_AT..RANGES_AT + 8].copy_from_slice(&7u64.to_le_bytes());
        assert!(matches!(
            load_manifest(&bad).err(),
            Some(ShardSnapshotError::BadConfig(_))
        ));
    }

    #[test]
    fn v2_manifests_still_load_with_empty_replica_sets() {
        // A v2 manifest is the current one minus the replica table.
        let db = sample();
        let n = db.n_shards();
        let mut v2 = save_manifest(&db).to_vec();
        v2[4..6].copy_from_slice(&2u16.to_le_bytes());
        v2.drain(replicas_at(n)..replicas_at(n) + n * 4);
        let m = load_manifest(&v2).expect("v2 manifest loads");
        assert_eq!(m.ranges(), db.router().ranges());
        assert!(m.replica_sets().iter().all(|s| s.is_empty()));
        let payloads: Vec<Bytes> = (0..n).map(|s| save_shard(&db, s).unwrap()).collect();
        let loaded = load(&v2, &payloads).expect("v2 snapshot assembles");
        loaded.check().expect("consistent");
    }

    #[test]
    fn v3_replica_topology_round_trips() {
        let db = sample();
        let n = db.n_shards();
        let manifest = save_manifest(&db).to_vec();
        // in-process shards record empty replica sets
        let m = load_manifest(&manifest).expect("loads");
        assert_eq!(m.replica_sets().len(), n);
        assert!(m.replica_sets().iter().all(|s| s.is_empty()));
        // splice a two-address replica set into shard 0's entry — the
        // shape a remote cluster writes
        let mut spliced = manifest.clone();
        let mut entry = Vec::new();
        entry.extend_from_slice(&2u32.to_le_bytes());
        for addr in ["127.0.0.1:7001", "127.0.0.1:7002"] {
            entry.extend_from_slice(&(addr.len() as u16).to_le_bytes());
            entry.extend_from_slice(addr.as_bytes());
        }
        spliced.splice(replicas_at(n)..replicas_at(n) + 4, entry);
        let m = load_manifest(&spliced).expect("spliced topology parses");
        assert_eq!(m.replica_sets()[0], ["127.0.0.1:7001", "127.0.0.1:7002"]);
        assert!(m.replica_sets()[1..].iter().all(|s| s.is_empty()));
        // an absurd replica count is rejected, not allocated
        let mut bad = manifest.clone();
        bad[replicas_at(n)..replicas_at(n) + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            load_manifest(&bad).err(),
            Some(ShardSnapshotError::BadConfig(_))
        ));
        // a non-UTF-8 address is rejected
        let mut bad = spliced.clone();
        bad[replicas_at(n) + 6] = 0xff;
        assert_eq!(load_manifest(&bad).err(), Some(ShardSnapshotError::BadName));
    }

    #[test]
    fn corrupt_manifests_are_rejected() {
        let db = sample();
        let manifest = save_manifest(&db);
        // bad magic
        let mut bad = manifest.to_vec();
        bad[0] = b'X';
        assert_eq!(
            load_manifest(&bad).err(),
            Some(ShardSnapshotError::BadMagic)
        );
        // bad version
        let mut bad = manifest.to_vec();
        bad[4] = 99;
        assert!(matches!(
            load_manifest(&bad).err(),
            Some(ShardSnapshotError::BadVersion(_))
        ));
        // wrong dimension
        let mut bad = manifest.to_vec();
        bad[6] = 3;
        assert_eq!(
            load_manifest(&bad).err(),
            Some(ShardSnapshotError::DimensionMismatch(3))
        );
        // truncation at every prefix errors, never panics
        for cut in 0..manifest.len().min(300) {
            assert!(load_manifest(&manifest[..cut]).is_err(), "prefix {cut}");
        }
        assert!(load_manifest(&manifest[..manifest.len() - 2]).is_err());
        // trailing bytes rejected
        let mut bad = manifest.to_vec();
        bad.extend_from_slice(&[0, 0]);
        assert_eq!(
            load_manifest(&bad).err(),
            Some(ShardSnapshotError::TrailingData { bytes: 2 })
        );
        // non-finite universe
        let mut bad = manifest.to_vec();
        bad[8..16].copy_from_slice(&f64::INFINITY.to_le_bytes());
        assert_eq!(
            load_manifest(&bad).err(),
            Some(ShardSnapshotError::BadCoordinate)
        );
    }

    #[test]
    fn mismatched_payloads_are_rejected() {
        let db = sample();
        let manifest = save_manifest(&db);
        let payloads: Vec<Bytes> = (0..db.n_shards())
            .map(|s| save_shard(&db, s).unwrap())
            .collect();
        // wrong shard count
        assert!(matches!(
            load(&manifest, &payloads[..2]).err(),
            Some(ShardSnapshotError::Inconsistent(_))
        ));
        // swapped shard streams break the slot mapping
        let mut swapped = payloads.clone();
        swapped.swap(0, db.n_shards() - 1);
        assert!(matches!(
            load(&manifest, &swapped).err(),
            Some(ShardSnapshotError::Inconsistent(_))
        ));
        // a corrupted shard stream surfaces with its shard id
        let mut corrupt: Vec<Vec<u8>> = payloads.iter().map(|p| p.to_vec()).collect();
        corrupt[1][0] = b'Z';
        match load(&manifest, &corrupt).err() {
            Some(ShardSnapshotError::Shard { shard, source }) => {
                assert_eq!(shard, 1);
                assert_eq!(source, SnapshotError::BadMagic);
            }
            other => panic!("expected Shard error, got {other:?}"),
        }
    }
}
