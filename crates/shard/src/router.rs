//! The shard router: z-order range partitioning plus corner-query
//! pruning.
//!
//! Every object is assigned a **routing key** — the Morton code of its
//! bounding-box center under a [`ZCurve`] over the universe — and each
//! shard owns one contiguous, half-open range of the z-code space
//! ([`scq_zorder::shard_ranges`]). Routing is therefore a binary search;
//! pruning exploits that a corner query bounds the `lo` and `hi`
//! corners of every matching box, hence bounds its center: the center
//! box decomposes into dyadic z-intervals ([`scq_zorder::decompose`]
//! on the quantized cell rectangle) and only shards whose range
//! overlaps one of those intervals can hold a match. Everything else
//! is **pruned** without being probed — the quantity
//! [`scq_engine::ExecStats::shards_pruned`] counts.

use scq_bbox::{Bbox, CornerQuery};
use scq_region::AaBox;
use scq_zorder::{center_key, decompose_cells, shard_ranges, ZCurve};

/// Checks that `ranges` is a valid shard assignment on a `bits`-bit
/// grid: nonempty, each range nonempty half-open `[lo, hi)`, ascending
/// and contiguous, together tiling exactly `[0, key_space(bits))`.
/// Returns a human-readable reason on failure.
pub fn validate_ranges(bits: u32, ranges: &[(u64, u64)]) -> Result<(), String> {
    if !(1..=16).contains(&bits) {
        return Err(format!("router bits {bits} outside 1..=16"));
    }
    if ranges.is_empty() {
        return Err("no shard ranges".into());
    }
    let total = scq_zorder::key_space(bits);
    let mut expect = 0u64;
    for (s, &(lo, hi)) in ranges.iter().enumerate() {
        if lo != expect {
            return Err(format!(
                "shard {s} starts at {lo}, expected {expect} (ranges must be contiguous)"
            ));
        }
        if hi <= lo {
            return Err(format!("shard {s} range [{lo}, {hi}) is empty"));
        }
        expect = hi;
    }
    if expect != total {
        return Err(format!(
            "ranges end at {expect}, key space has {total} cells"
        ));
    }
    Ok(())
}

/// Routes objects and corner queries to shards of a z-order
/// range-partitioned store.
#[derive(Clone, Debug)]
pub struct ShardRouter {
    curve: ZCurve,
    ranges: Vec<(u64, u64)>,
}

impl ShardRouter {
    /// A router over `universe` with `n_shards` equal z-ranges on a
    /// `2^bits × 2^bits` grid.
    ///
    /// # Panics
    /// If the universe is empty, `bits` is outside `1..=16`, `n_shards`
    /// is 0, or `n_shards` exceeds the number of grid cells.
    pub fn new(universe: &AaBox<2>, bits: u32, n_shards: usize) -> Self {
        Self::from_ranges(universe, bits, shard_ranges(bits, n_shards))
    }

    /// A router with an **explicit** range assignment — the cluster
    /// configuration path, where a [`crate::ClusterSpec`] may give
    /// shards unequal z-territory.
    ///
    /// # Panics
    /// If the universe is empty or the ranges do not tile the key
    /// space (see [`validate_ranges`]).
    pub fn from_ranges(universe: &AaBox<2>, bits: u32, ranges: Vec<(u64, u64)>) -> Self {
        if let Err(m) = validate_ranges(bits, &ranges) {
            panic!("invalid shard ranges: {m}");
        }
        let ub = Bbox::new(universe.lo(), universe.hi());
        ShardRouter {
            curve: ZCurve::new(ub, bits),
            ranges,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Bits per dimension of the routing grid.
    pub fn bits(&self) -> u32 {
        self.curve.bits()
    }

    /// The z-code range `[lo, hi)` each shard owns.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// The shard owning a z-code.
    pub fn route_key(&self, z: u64) -> usize {
        // ranges are contiguous ascending; find the one containing z
        match self.ranges.binary_search_by(|&(lo, _)| lo.cmp(&z)) {
            Ok(i) => i,
            Err(i) => i - 1, // z > ranges[i-1].lo, z < ranges[i].lo
        }
    }

    /// The shard owning an object with the given bounding box. Empty
    /// boxes have no center and all land on shard 0 (corner queries can
    /// never return them, so their placement is immaterial to pruning).
    pub fn route_bbox(&self, b: &Bbox<2>) -> usize {
        match center_key(&self.curve, b) {
            None => 0,
            Some(z) => self.route_key(z),
        }
    }

    /// Appends (in ascending order) every shard that can hold a box
    /// matching `q`; every other shard is proven disjoint and skipped.
    ///
    /// Sound because matching boxes have `lo ∈ [lo_min, lo_max]`,
    /// `hi ∈ [hi_min, hi_max]` *and* `lo ≤ hi` per dimension — so the
    /// effective bounds are `hi ≥ max(hi_min, lo_min)` and
    /// `lo ≤ min(lo_max, hi_max)`, and the center `(lo + hi) / 2` lies
    /// between the midpoints of those tightened intervals (this is what
    /// lets a pure containment query, which only bounds `lo` from below
    /// and `hi` from above, still prune). Quantization is monotone and
    /// clamps exactly like routing does. An unsatisfiable query selects
    /// no shard.
    pub fn candidate_shards(&self, q: &CornerQuery<2>, out: &mut Vec<usize>) {
        out.clear();
        if q.is_unsatisfiable() {
            return;
        }
        let mut lo = [0.0f64; 2];
        let mut hi = [0.0f64; 2];
        let (ulo, uhi) = self.curve.universe_corners().expect("nonempty universe");
        for d in 0..2 {
            // Midpoints of the effective corner bounds; ±∞ bounds clamp
            // to the universe, mirroring `ZCurve::quantize`'s clamping.
            let hi_min = q.hi_min[d].max(q.lo_min[d]); // hi ≥ lo ≥ lo_min
            let lo_max = q.lo_max[d].min(q.hi_max[d]); // lo ≤ hi ≤ hi_max
            lo[d] = ((q.lo_min[d] + hi_min) / 2.0).clamp(ulo[d], uhi[d]);
            hi[d] = ((lo_max + q.hi_max[d]) / 2.0).clamp(ulo[d], uhi[d]);
        }
        if lo[0] > hi[0] || lo[1] > hi[1] {
            return; // no center can satisfy the bounds
        }
        let c0 = self.curve.quantize(lo);
        let c1 = self.curve.quantize(hi);
        let intervals = decompose_cells(c0, c1, self.curve.bits());
        // Merge-walk the sorted interval list against the sorted shard
        // ranges, emitting each overlapping shard once.
        let mut s = 0usize;
        for &(ilo, ihi) in &intervals {
            while s < self.ranges.len() && self.ranges[s].1 <= ilo {
                s += 1;
            }
            let mut t = s;
            while t < self.ranges.len() && self.ranges[t].0 < ihi {
                if out.last() != Some(&t) {
                    out.push(t);
                }
                t += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(n: usize) -> ShardRouter {
        ShardRouter::new(&AaBox::new([0.0, 0.0], [100.0, 100.0]), 6, n)
    }

    #[test]
    fn routing_covers_all_keys() {
        let r = router(5);
        let total: u64 = scq_zorder::key_space(6);
        for z in [0, 1, total / 2, total - 1] {
            let s = r.route_key(z);
            let (lo, hi) = r.ranges()[s];
            assert!(lo <= z && z < hi, "key {z} in shard {s}");
        }
    }

    #[test]
    fn objects_route_to_exactly_one_shard() {
        let r = router(7);
        for i in 0..50 {
            let t = i as f64 * 1.9;
            let b = Bbox::new([t, 90.0 - t], [t + 3.0, 93.0 - t]);
            let s = r.route_bbox(&b);
            assert!(s < r.n_shards());
        }
        assert_eq!(r.route_bbox(&Bbox::Empty), 0);
    }

    #[test]
    fn candidate_shards_cover_matching_objects() {
        // Soundness: for random boxes and random queries, the owning
        // shard of every matching box is among the candidates.
        let r = router(6);
        let boxes: Vec<Bbox<2>> = (0..80)
            .map(|i| {
                let x = (i * 13 % 89) as f64;
                let y = (i * 29 % 83) as f64;
                Bbox::new([x, y], [x + 4.0, y + 6.0])
            })
            .collect();
        let queries = [
            CornerQuery::unconstrained(),
            CornerQuery::unconstrained().and_overlaps(&Bbox::new([10.0, 10.0], [30.0, 30.0])),
            CornerQuery::unconstrained().and_contained_in(&Bbox::new([0.0, 0.0], [40.0, 45.0])),
            CornerQuery::unconstrained().and_contains(&Bbox::new([70.0, 70.0], [72.0, 71.0])),
            CornerQuery::unconstrained()
                .and_contained_in(&Bbox::new([50.0, 0.0], [100.0, 50.0]))
                .and_overlaps(&Bbox::new([60.0, 10.0], [70.0, 20.0])),
        ];
        let mut cands = Vec::new();
        for q in &queries {
            r.candidate_shards(q, &mut cands);
            assert!(cands.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            for b in &boxes {
                if q.matches(b) {
                    let owner = r.route_bbox(b);
                    assert!(
                        cands.contains(&owner),
                        "query {q:?} matches {b} on shard {owner}, candidates {cands:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn selective_queries_prune() {
        let r = router(8);
        let mut cands = Vec::new();
        // A tight containment query reaches few z-ranges.
        let q = CornerQuery::unconstrained().and_contained_in(&Bbox::new([2.0, 2.0], [12.0, 12.0]));
        r.candidate_shards(&q, &mut cands);
        assert!(!cands.is_empty());
        assert!(
            cands.len() < r.n_shards(),
            "tight query must prune: {cands:?}"
        );
        // The unconstrained query prunes nothing.
        r.candidate_shards(&CornerQuery::unconstrained(), &mut cands);
        assert_eq!(cands.len(), r.n_shards());
    }

    #[test]
    fn explicit_ranges_route_like_balanced_ones() {
        let total = scq_zorder::key_space(6);
        let balanced = router(4);
        let custom = ShardRouter::from_ranges(
            &AaBox::new([0.0, 0.0], [100.0, 100.0]),
            6,
            balanced.ranges().to_vec(),
        );
        for z in [0, 1, total / 3, total / 2, total - 1] {
            assert_eq!(balanced.route_key(z), custom.route_key(z));
        }
    }

    #[test]
    fn bad_range_assignments_are_named() {
        let total = scq_zorder::key_space(6);
        assert!(validate_ranges(6, &[(0, total)]).is_ok());
        assert!(validate_ranges(6, &[(0, 10), (10, total)]).is_ok());
        assert!(validate_ranges(6, &[]).is_err(), "empty");
        assert!(validate_ranges(0, &[(0, 1)]).is_err(), "bad bits");
        assert!(validate_ranges(6, &[(1, total)]).is_err(), "gap at 0");
        assert!(
            validate_ranges(6, &[(0, 10), (12, total)]).is_err(),
            "hole between shards"
        );
        assert!(
            validate_ranges(6, &[(0, 10), (10, 10), (10, total)]).is_err(),
            "empty shard"
        );
        assert!(
            validate_ranges(6, &[(0, total - 1)]).is_err(),
            "short of the key space"
        );
        assert!(
            validate_ranges(6, &[(0, total + 1)]).is_err(),
            "past the key space"
        );
    }

    #[test]
    fn unsatisfiable_queries_select_no_shard() {
        let r = router(4);
        let mut cands = vec![99];
        r.candidate_shards(&CornerQuery::unsatisfiable(), &mut cands);
        assert!(cands.is_empty());
        // contradictory bounds (contained in a low box, containing a
        // high one) also select nothing
        let q = CornerQuery::unconstrained()
            .and_contained_in(&Bbox::new([0.0, 0.0], [5.0, 5.0]))
            .and_contains(&Bbox::new([50.0, 50.0], [60.0, 60.0]));
        r.candidate_shards(&q, &mut cands);
        assert!(cands.is_empty());
    }
}
