//! Deterministic fault injection for the shard wire protocol.
//!
//! A [`FaultProxy`] is an in-process TCP proxy that sits between a
//! wire client (a [`crate::RemoteShard`], a router tier) and a shard
//! server, reassembles the length-prefixed frame stream in both
//! directions, and breaks it on **scripted triggers** — the nth frame
//! of a connection, a request opcode — in reproducible ways:
//!
//! * [`FaultAction::Sever`] — close both sides instead of forwarding
//!   the matched frame (a process dying mid-request);
//! * [`FaultAction::Hold`] — park the frame at a [`FaultGate`] until
//!   the test opens it (deterministic overlap: prove a second request
//!   completes while the first is in flight);
//! * [`FaultAction::Truncate`] — forward only a prefix of the framed
//!   bytes, then sever (a connection dying mid-frame);
//! * [`FaultAction::Garble`] — corrupt a payload byte, then forward
//!   (bit rot that must surface as a named decode error, never a
//!   silently wrong answer).
//!
//! Beyond per-frame rules, [`FaultProxy::partition`] severs every live
//! connection **and** refuses new ones (a network partition / dead
//! process), and [`FaultProxy::heal`] lifts it — so a test can kill a
//! shard mid-query, assert the degraded answer, then bring the shard
//! back and assert it rejoins without restarting the router.
//!
//! Every failure path the ROADMAP could previously only provoke in the
//! CI smoke script — reconnect-once on idempotent ops, mutations never
//! auto-retried, pool eviction of broken connections, partial-answer
//! merges, mirror/shard lockstep after reconnect — is reproducible in
//! `cargo test` through this module.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::wire::{frame, FrameReader};

/// Which way a frame is traveling through the proxy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Request frames: wire client → shard server.
    ClientToServer,
    /// Response frames: shard server → wire client.
    ServerToClient,
}

/// What a [`FaultRule`] matches a frame on.
///
/// Multiplexed (v4) frames move the interesting coordinates: many
/// requests interleave on one connection, so "the nth frame" of a
/// socket no longer identifies a request, and the opcode sits after
/// the 9-byte mux header. The matcher follows: on a mux frame,
/// [`FrameMatch::Nth`] keys on the **request id** (ids count up from
/// 1 per connection) and [`FrameMatch::Opcode`] reads the byte after
/// the header. Plain (v2/v3) frames keep the original meaning.
#[derive(Clone, Copy, Debug)]
pub enum FrameMatch {
    /// Every frame in the rule's direction.
    Any,
    /// Plain framing: the nth frame (0-based) of a connection in the
    /// rule's direction. Mux framing: frames carrying request id `n`.
    Nth(usize),
    /// Frames whose opcode byte equals the given opcode — the first
    /// payload byte on plain frames, the byte after the mux header on
    /// multiplexed ones.
    Opcode(u8),
}

impl FrameMatch {
    fn matches(&self, frame_idx: usize, payload: &[u8]) -> bool {
        let (ordinal, op) =
            if crate::wire::is_mux(payload) && payload.len() >= crate::wire::MUX_HEADER {
                let id = u64::from_le_bytes(payload[1..9].try_into().expect("8 id bytes"));
                (id as usize, payload.get(crate::wire::MUX_HEADER).copied())
            } else {
                (frame_idx, payload.first().copied())
            };
        match *self {
            FrameMatch::Any => true,
            FrameMatch::Nth(n) => ordinal == n,
            FrameMatch::Opcode(wanted) => op == Some(wanted),
        }
    }
}

/// What to do with a matched frame.
#[derive(Clone)]
pub enum FaultAction {
    /// Close both directions of the connection without forwarding the
    /// matched frame.
    Sever,
    /// Park the frame at the gate; forward it once the gate opens.
    Hold(FaultGate),
    /// Forward only the first `keep` bytes of the **framed** message
    /// (length prefix included), then sever — the receiver sees a
    /// mid-frame close.
    Truncate {
        /// Framed bytes to let through before closing.
        keep: usize,
    },
    /// XOR one payload byte, then forward the corrupted frame.
    Garble {
        /// Payload offset to corrupt (clamped to the last byte).
        offset: usize,
        /// The XOR mask (must be nonzero to corrupt anything).
        xor: u8,
    },
}

/// One scripted trigger: direction + matcher + action, armed for
/// `remaining` matches (each match consumes one). The first `skip`
/// matches pass untouched before the rule arms — how a test lets the
/// opening chunks of a streamed response through and severs mid-stream.
#[derive(Clone)]
pub struct FaultRule {
    /// Which traffic direction the rule watches.
    pub direction: Direction,
    /// What the rule matches on.
    pub matches: FrameMatch,
    /// What happens to a matched frame.
    pub action: FaultAction,
    /// How many matches the rule is armed for (`usize::MAX` ≈ forever).
    pub remaining: usize,
    /// Matches to forward untouched before the rule starts acting
    /// (0 = act on the first match).
    pub skip: usize,
}

#[derive(Default)]
struct GateState {
    open: bool,
    holding: usize,
}

#[derive(Default)]
struct GateInner {
    state: Mutex<GateState>,
    cv: Condvar,
}

/// A rendezvous point for [`FaultAction::Hold`]: the proxy parks
/// matched frames here; the test observes the park and decides when to
/// release. This is what makes overlap tests deterministic — no
/// sleeps, no racing clocks.
#[derive(Clone, Default)]
pub struct FaultGate(Arc<GateInner>);

impl FaultGate {
    /// A closed gate.
    pub fn new() -> FaultGate {
        FaultGate::default()
    }

    /// Opens the gate: held frames are forwarded, future holds pass
    /// straight through.
    pub fn open(&self) {
        let mut st = self.0.state.lock().expect("gate lock poisoned");
        st.open = true;
        self.0.cv.notify_all();
    }

    /// Number of frames currently parked at the gate.
    pub fn holding(&self) -> usize {
        self.0.state.lock().expect("gate lock poisoned").holding
    }

    /// Blocks until a frame is parked at the gate (or `timeout` runs
    /// out). Returns whether a frame is held.
    pub fn wait_for_hold(&self, timeout: Duration) -> bool {
        self.wait_for_holding(1, timeout)
    }

    /// Blocks until at least `n` frames are parked at the gate (or
    /// `timeout` runs out). Returns whether `n` frames are held. This
    /// is the deterministic in-flight-depth probe: park `n` requests,
    /// prove the connection carried all of them concurrently, open.
    pub fn wait_for_holding(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.0.state.lock().expect("gate lock poisoned");
        while st.holding < n && !st.open {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .0
                .cv
                .wait_timeout(st, deadline - now)
                .expect("gate lock poisoned");
            st = guard;
        }
        st.holding >= n
    }

    /// Whether [`FaultGate::open`] has been called.
    fn is_open(&self) -> bool {
        self.0.state.lock().expect("gate lock poisoned").open
    }

    /// A pump thread parked one frame here (non-blocking: the pump
    /// keeps forwarding other traffic while the frame waits).
    fn park(&self) {
        let mut st = self.0.state.lock().expect("gate lock poisoned");
        st.holding += 1;
        self.0.cv.notify_all();
    }

    /// A parked frame left the gate (forwarded after `open`, or
    /// dropped at pump shutdown).
    fn unpark(&self) {
        let mut st = self.0.state.lock().expect("gate lock poisoned");
        st.holding -= 1;
        self.0.cv.notify_all();
    }
}

struct ProxyShared {
    /// Upstream address new connections dial. Behind a lock so
    /// [`FaultProxy::retarget`] can swap the process behind a stable
    /// client-facing address (the split-brain script: a pristine
    /// restart takes over a dead replica's address).
    target: Mutex<String>,
    rules: Mutex<Vec<FaultRule>>,
    refuse_new: AtomicBool,
    stop: AtomicBool,
    /// Stream clones of every live pump's read side, keyed by pump id,
    /// so [`FaultProxy::sever_all`] can kill them from outside. Each
    /// pump removes its own entry on exit — a long soak must not
    /// accumulate dead sockets (file descriptors) here.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_pump: AtomicU64,
    severed: AtomicUsize,
    forwarded: [AtomicUsize; 2],
}

impl ProxyShared {
    /// Finds and consumes the first armed rule matching this frame. A
    /// rule still skipping lets the frame through untouched (and no
    /// later rule sees it — the frame was claimed).
    fn match_rule(&self, dir: Direction, frame_idx: usize, payload: &[u8]) -> Option<FaultAction> {
        let mut rules = self.rules.lock().expect("rules lock poisoned");
        for rule in rules.iter_mut() {
            if rule.remaining > 0
                && rule.direction == dir
                && rule.matches.matches(frame_idx, payload)
            {
                if rule.skip > 0 {
                    rule.skip -= 1;
                    return None;
                }
                rule.remaining -= 1;
                return Some(rule.action.clone());
            }
        }
        None
    }
}

/// An in-process TCP fault-injection proxy for the shard wire
/// protocol. See the module docs.
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral loopback port, forwarding every
    /// connection to `target` (a shard server address).
    pub fn start(target: &str) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            target: Mutex::new(target.to_owned()),
            rules: Mutex::new(Vec::new()),
            refuse_new: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            next_pump: AtomicU64::new(0),
            severed: AtomicUsize::new(0),
            forwarded: [AtomicUsize::new(0), AtomicUsize::new(0)],
        });
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let pumps = Arc::clone(&pumps);
            std::thread::spawn(move || accept_loop(listener, &shared, &pumps))
        };
        Ok(FaultProxy {
            addr,
            shared,
            accept: Some(accept),
            pumps,
        })
    }

    /// The address clients should dial instead of the shard server's.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Arms a scripted rule.
    pub fn inject(&self, rule: FaultRule) {
        self.shared
            .rules
            .lock()
            .expect("rules lock poisoned")
            .push(rule);
    }

    /// Disarms every rule.
    pub fn clear_rules(&self) {
        self.shared
            .rules
            .lock()
            .expect("rules lock poisoned")
            .clear();
    }

    /// Makes the proxy drop fresh connections immediately after accept
    /// (`true`) or forward them again (`false`).
    pub fn refuse_new(&self, refuse: bool) {
        self.shared.refuse_new.store(refuse, Ordering::SeqCst);
    }

    /// Severs every live proxied connection right now.
    pub fn sever_all(&self) {
        let conns = self.shared.conns.lock().expect("conns lock poisoned");
        for (_, stream) in conns.iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// A network partition: every live connection severed, new ones
    /// refused. From the client's side the shard process is dead.
    pub fn partition(&self) {
        self.refuse_new(true);
        self.sever_all();
    }

    /// Lifts a partition and disarms every rule: the shard is
    /// reachable again.
    pub fn heal(&self) {
        self.clear_rules();
        self.refuse_new(false);
    }

    /// Swaps the upstream process behind the proxy's stable
    /// client-facing address: **new** connections dial `target`, live
    /// ones keep their old upstream (sever them first to force a full
    /// swap). This is the deterministic stand-in for "a different
    /// process restarted behind the replica's address" — the
    /// split-brain script.
    pub fn retarget(&self, target: &str) {
        *self.shared.target.lock().expect("target lock poisoned") = target.to_owned();
    }

    /// Connections the proxy severed through a rule or a partition.
    pub fn severed(&self) -> usize {
        self.shared.severed.load(Ordering::SeqCst)
    }

    /// Frames forwarded intact in one direction.
    pub fn frames_forwarded(&self, dir: Direction) -> usize {
        self.shared.forwarded[dir_index(dir)].load(Ordering::SeqCst)
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.sever_all();
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let pumps = std::mem::take(&mut *self.pumps.lock().expect("pumps lock poisoned"));
        for pump in pumps {
            let _ = pump.join();
        }
    }
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::ClientToServer => 0,
        Direction::ServerToClient => 1,
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: &Arc<ProxyShared>,
    pumps: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(client) = conn else { continue };
        if shared.refuse_new.load(Ordering::SeqCst) {
            drop(client); // the dialer sees an immediate close
            continue;
        }
        let target = shared.target.lock().expect("target lock poisoned").clone();
        let Ok(server) = TcpStream::connect(&target) else {
            drop(client);
            continue;
        };
        let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        // Each pump registers its read side under its own id and
        // deregisters on exit: sever_all() can always reach both
        // directions of a live connection, and dead connections leave
        // nothing behind.
        let c2s = shared.next_pump.fetch_add(1, Ordering::SeqCst);
        let s2c = shared.next_pump.fetch_add(1, Ordering::SeqCst);
        {
            let mut conns = shared.conns.lock().expect("conns lock poisoned");
            if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
                conns.push((c2s, c));
                conns.push((s2c, s));
            }
        }
        let mut handles = pumps.lock().expect("pumps lock poisoned");
        // Finished pump threads have nothing left to join; dropping
        // their handles detaches nothing live and keeps this vec (and
        // its thread bookkeeping) bounded across a long soak.
        handles.retain(|h| !h.is_finished());
        {
            let shared = Arc::clone(shared);
            handles.push(std::thread::spawn(move || {
                run_pump(client, server, Direction::ClientToServer, &shared, c2s)
            }));
        }
        {
            let shared = Arc::clone(shared);
            handles.push(std::thread::spawn(move || {
                run_pump(s2, c2, Direction::ServerToClient, &shared, s2c)
            }));
        }
    }
}

/// Runs [`pump`], then deregisters the pump's stream clone and
/// guarantees any gates still parked at exit are released, so a
/// severed connection never leaves a test waiting on a `holding` count
/// that can no longer drop.
fn run_pump(src: TcpStream, dst: TcpStream, dir: Direction, shared: &ProxyShared, pump_id: u64) {
    let mut parked = Vec::new();
    pump(src, dst, dir, shared, &mut parked);
    shared
        .conns
        .lock()
        .expect("conns lock poisoned")
        .retain(|(id, _)| *id != pump_id);
    for (gate, _dropped_frame) in parked {
        gate.unpark();
    }
}

/// Forwards complete frames from `src` to `dst`, applying matched
/// rules. Runs until a close, a sever, or proxy shutdown. Held frames
/// park in `parked` **without blocking the pump** — later frames keep
/// flowing past them (multiplexed connections carry many requests, and
/// holding one must not convoy the rest) — and are flushed in arrival
/// order once their gate opens. Frames still parked when the pump
/// exits are dropped (severed with the connection); the caller unparks
/// them.
fn pump(
    src: TcpStream,
    mut dst: TcpStream,
    dir: Direction,
    shared: &ProxyShared,
    parked: &mut Vec<(FaultGate, Vec<u8>)>,
) {
    let mut src = src;
    let _ = src.set_read_timeout(Some(Duration::from_millis(100)));
    let sever = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
        shared.severed.fetch_add(1, Ordering::SeqCst);
    };
    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut frame_idx = 0usize;
    loop {
        loop {
            let mut payload = match reader.next_frame() {
                Ok(Some(payload)) => payload,
                Ok(None) => break,
                // Framing poison the proxy cannot resynchronize past.
                Err(_) => return sever(&src, &dst),
            };
            let action = shared.match_rule(dir, frame_idx, &payload);
            frame_idx += 1;
            match action {
                Some(FaultAction::Sever) => return sever(&src, &dst),
                Some(FaultAction::Truncate { keep }) => {
                    let framed = frame_bytes(&payload);
                    let keep = keep.min(framed.len());
                    let _ = dst.write_all(&framed[..keep]);
                    let _ = dst.flush();
                    return sever(&src, &dst);
                }
                Some(FaultAction::Garble { offset, xor }) => {
                    if let Some(last) = payload.len().checked_sub(1) {
                        payload[offset.min(last)] ^= xor;
                    }
                }
                Some(FaultAction::Hold(gate)) => {
                    gate.park();
                    parked.push((gate, frame_bytes(&payload)));
                    continue; // later frames flow past the held one
                }
                None => {}
            }
            if dst.write_all(&frame_bytes(&payload)).is_err() || dst.flush().is_err() {
                return sever(&src, &dst);
            }
            shared.forwarded[dir_index(dir)].fetch_add(1, Ordering::SeqCst);
        }
        // Flush parked frames whose gate has opened, in arrival order.
        let mut still_parked = Vec::new();
        for (gate, bytes) in parked.drain(..) {
            if gate.is_open() {
                gate.unpark();
                if dst.write_all(&bytes).is_err() || dst.flush().is_err() {
                    return sever(&src, &dst);
                }
                shared.forwarded[dir_index(dir)].fetch_add(1, Ordering::SeqCst);
            } else {
                still_parked.push((gate, bytes));
            }
        }
        *parked = still_parked;
        if shared.stop.load(Ordering::SeqCst) {
            return sever(&src, &dst);
        }
        match src.read(&mut chunk) {
            // Clean close: propagate the EOF downstream so the peer
            // notices (mid-frame leftovers simply never arrive, which
            // is exactly what a dying sender looks like).
            Ok(0) => {
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => reader.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return sever(&src, &dst),
        }
    }
}

/// Re-frames a payload through the real wire codec (the proxy forwards
/// what it parsed, so partial source frames are never relayed). The
/// payload came out of [`FrameReader`], which already enforced the
/// frame cap.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    frame(payload).expect("parsed frame is within the cap")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ProbeTrace, ShardBackend, ShardError};
    use crate::remote::RemoteShard;
    use crate::server::{serve_shard, ShardServerConfig, ShardServerHandle};
    use crate::wire::{WireError, OP_INSERT, OP_QUERY};
    use scq_bbox::CornerQuery;
    use scq_engine::IndexKind;
    use scq_region::{AaBox, Region};

    fn universe() -> AaBox<2> {
        AaBox::new([0.0, 0.0], [100.0, 100.0])
    }

    fn boxed(x: f64, y: f64, w: f64, h: f64) -> Region<2> {
        Region::from_box(AaBox::new([x, y], [x + w, y + h]))
    }

    /// A shard server, a proxy in front of it, and a RemoteShard that
    /// only knows the proxy's address.
    fn start() -> (ShardServerHandle, FaultProxy, RemoteShard) {
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .expect("bind shard server");
        let proxy = FaultProxy::start(&server.addr().to_string()).expect("bind proxy");
        let remote = RemoteShard::connect(
            &proxy.addr().to_string(),
            universe(),
            Duration::from_secs(5),
        )
        .expect("connect through the proxy");
        (server, proxy, remote)
    }

    #[test]
    fn passthrough_proxy_is_invisible() {
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(10.0, 10.0, 5.0, 5.0)).unwrap();
        let mut out = Vec::new();
        let mut trace = ProbeTrace::default();
        remote
            .try_corner_query(
                c,
                IndexKind::RTree,
                &CornerQuery::unconstrained(),
                &mut out,
                &mut trace,
            )
            .unwrap();
        assert_eq!(trace.retries, 0, "no faults, no retries");
        assert_eq!(out, vec![0]);
        assert!(remote.check().is_empty());
        assert!(proxy.frames_forwarded(Direction::ClientToServer) >= 4);
        assert_eq!(proxy.severed(), 0);
        server.shutdown();
    }

    #[test]
    fn severed_query_reconnects_and_retries_exactly_once() {
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(10.0, 10.0, 5.0, 5.0)).unwrap();
        proxy.inject(FaultRule {
            direction: Direction::ClientToServer,
            matches: FrameMatch::Opcode(OP_QUERY),
            action: FaultAction::Sever,
            remaining: 1,
            skip: 0,
        });
        let mut out = Vec::new();
        let mut trace = ProbeTrace::default();
        remote
            .try_corner_query(
                c,
                IndexKind::RTree,
                &CornerQuery::unconstrained(),
                &mut out,
                &mut trace,
            )
            .expect("the retry lands on a fresh connection");
        assert_eq!(trace.retries, 1, "exactly one reconnect-and-retry");
        assert_eq!(out, vec![0], "the retried answer is correct");
        let stats = remote.pool_stats();
        // The broken socket was re-dialed in place: the pooled client
        // survives, healthy, and nothing broken lingers in the pool.
        assert_eq!(stats.idle, 1, "{stats:?}");
        assert_eq!(proxy.severed(), 1);
        server.shutdown();
    }

    #[test]
    fn mutations_are_never_auto_retried() {
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap();
        // Sever the next INSERT before it reaches the server: the
        // client must fail the mutation, not replay it.
        proxy.inject(FaultRule {
            direction: Direction::ClientToServer,
            matches: FrameMatch::Opcode(OP_INSERT),
            action: FaultAction::Sever,
            remaining: 1,
            skip: 0,
        });
        let err = remote.insert(c, boxed(5.0, 5.0, 2.0, 2.0)).unwrap_err();
        assert!(matches!(err, ShardError::Wire(_)), "{err}");
        // Mirror and shard still agree on the OLD state — the shard
        // never saw the insert, the mirror never recorded it.
        assert_eq!(remote.collection_len(c), 1);
        assert!(remote.check().is_empty(), "{:?}", remote.check());
        // And the connection heals for the next mutation.
        assert_eq!(remote.insert(c, boxed(5.0, 5.0, 2.0, 2.0)).unwrap(), 1);
        assert!(remote.check().is_empty());
        server.shutdown();
    }

    #[test]
    fn a_lost_ack_surfaces_as_mirror_drift_not_a_silent_retry() {
        // The reason mutations must not auto-retry: once the request
        // reached the shard, a lost ack leaves the shard mutated and
        // the mirror not — replaying would double-apply. The client
        // errors out and the drift is *detectable* via check().
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap();
        proxy.inject(FaultRule {
            direction: Direction::ServerToClient,
            matches: FrameMatch::Any,
            action: FaultAction::Sever,
            remaining: 1,
            skip: 0,
        });
        let err = remote.remove(c, 0).unwrap_err();
        assert!(matches!(err, ShardError::Wire(_)), "{err}");
        let problems = remote.check();
        assert!(
            problems.iter().any(|p| p.contains("drift")),
            "a lost ack must be visible as mirror drift: {problems:?}"
        );
        server.shutdown();
    }

    #[test]
    fn truncation_mid_length_prefix_is_the_named_error() {
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        // Let 2 of the 4 length-prefix bytes of the next response
        // through, then sever: the client must report the distinct
        // prefix-truncation error, not a generic I/O failure. Use a
        // mutation so no retry masks the error.
        proxy.inject(FaultRule {
            direction: Direction::ServerToClient,
            matches: FrameMatch::Any,
            action: FaultAction::Truncate { keep: 2 },
            remaining: 1,
            skip: 0,
        });
        let err = remote.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap_err();
        assert_eq!(
            err,
            ShardError::Wire(WireError::TruncatedLengthPrefix { got: 2 }),
            "mid-prefix close must be the named error"
        );
        server.shutdown();
    }

    #[test]
    fn truncation_mid_body_is_a_named_error_too() {
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        proxy.inject(FaultRule {
            direction: Direction::ServerToClient,
            matches: FrameMatch::Any,
            action: FaultAction::Truncate { keep: 5 },
            remaining: 1,
            skip: 0,
        });
        let err = remote.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap_err();
        assert_eq!(err, ShardError::Wire(WireError::Truncated), "{err}");
        server.shutdown();
    }

    #[test]
    fn garbled_responses_are_named_decode_errors_and_queries_recover() {
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(10.0, 10.0, 5.0, 5.0)).unwrap();
        // Corrupt the response-kind byte of the next response — the
        // first body byte AFTER the 9-byte mux header (corrupting the
        // header itself would orphan the response instead). The decode
        // fails loudly, that one request errors, and the idempotent
        // query transparently retries.
        proxy.inject(FaultRule {
            direction: Direction::ServerToClient,
            matches: FrameMatch::Any,
            action: FaultAction::Garble {
                offset: crate::wire::MUX_HEADER,
                xor: 0x77,
            },
            remaining: 1,
            skip: 0,
        });
        let mut out = Vec::new();
        let mut trace = ProbeTrace::default();
        remote
            .try_corner_query(
                c,
                IndexKind::Scan,
                &CornerQuery::unconstrained(),
                &mut out,
                &mut trace,
            )
            .unwrap();
        assert_eq!(trace.retries, 1, "the garbled exchange is retried once");
        assert_eq!(out, vec![0]);
        server.shutdown();
    }

    /// The tentpole concurrency proof: two corner queries on ONE
    /// `RemoteShard` are in flight at the same time over ONE
    /// multiplexed connection. The first query's request frame is
    /// parked at a gate; while it is provably held, the second query
    /// runs to completion over the same socket (its frames flow past
    /// the parked one); then the gate opens and the first completes
    /// too. No sleeps, no racing clocks.
    #[test]
    fn concurrent_queries_overlap_on_one_multiplexed_connection() {
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(10.0, 10.0, 5.0, 5.0)).unwrap();
        remote.insert(c, boxed(60.0, 60.0, 5.0, 5.0)).unwrap();
        let gate = FaultGate::new();
        proxy.inject(FaultRule {
            direction: Direction::ClientToServer,
            matches: FrameMatch::Opcode(OP_QUERY),
            action: FaultAction::Hold(gate.clone()),
            remaining: 1,
            skip: 0,
        });
        let remote = &remote;
        std::thread::scope(|scope| {
            let held = scope.spawn(move || {
                let mut out = Vec::new();
                remote
                    .try_corner_query(
                        c,
                        IndexKind::RTree,
                        &CornerQuery::unconstrained(),
                        &mut out,
                        &mut ProbeTrace::default(),
                    )
                    .expect("held query completes after the gate opens");
                out.sort_unstable();
                out
            });
            assert!(
                gate.wait_for_hold(Duration::from_secs(10)),
                "the first query must reach the gate"
            );
            // First query provably in flight. A second on the SAME
            // RemoteShard completes over the same socket — impossible
            // on a serialized request/response protocol.
            let mut out = Vec::new();
            remote
                .try_corner_query(
                    c,
                    IndexKind::RTree,
                    &CornerQuery::unconstrained(),
                    &mut out,
                    &mut ProbeTrace::default(),
                )
                .expect("the overlapping query completes while the first is held");
            out.sort_unstable();
            assert_eq!(out, vec![0, 1]);
            assert!(
                gate.holding() > 0,
                "the first query is still parked at the gate"
            );
            gate.open();
            assert_eq!(held.join().expect("no panic"), vec![0, 1]);
        });
        let stats = remote.pool_stats();
        assert!(
            stats.peak_in_flight >= 2,
            "both queries must have been in flight at once: {stats:?}"
        );
        assert_eq!(
            stats.created, 1,
            "everything multiplexed over ONE connection: {stats:?}"
        );
        server.shutdown();
    }

    /// Depth, not just overlap: EIGHT requests in flight on ONE
    /// connection, each provably parked at the proxy's gate at the
    /// same instant. This is the acceptance proof for the mux pool
    /// collapse — no sleeps, the gate count is the evidence.
    #[test]
    fn eight_requests_in_flight_on_one_multiplexed_connection() {
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(10.0, 10.0, 5.0, 5.0)).unwrap();
        let gate = FaultGate::new();
        proxy.inject(FaultRule {
            direction: Direction::ClientToServer,
            matches: FrameMatch::Opcode(OP_QUERY),
            action: FaultAction::Hold(gate.clone()),
            remaining: 8,
            skip: 0,
        });
        let remote = &remote;
        std::thread::scope(|scope| {
            let waiters: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        remote
                            .try_corner_query(
                                c,
                                IndexKind::RTree,
                                &CornerQuery::unconstrained(),
                                &mut out,
                                &mut ProbeTrace::default(),
                            )
                            .expect("held query completes after the gate opens");
                        out
                    })
                })
                .collect();
            assert!(
                gate.wait_for_holding(8, Duration::from_secs(10)),
                "all 8 queries must be parked at the gate simultaneously \
                 (holding = {})",
                gate.holding()
            );
            let stats = remote.pool_stats();
            assert_eq!(stats.created, 1, "one connection carries all 8: {stats:?}");
            assert!(stats.peak_in_flight >= 8, "{stats:?}");
            gate.open();
            for waiter in waiters {
                assert_eq!(waiter.join().expect("no panic"), vec![0]);
            }
        });
        server.shutdown();
    }

    /// A connection severed in the middle of a chunked response stream
    /// must surface as a *named* transport error on the waiting
    /// request — never a hang — and the client must recover once the
    /// fault clears.
    #[test]
    fn mid_stream_sever_is_a_named_error_then_recovers() {
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        // Fat objects (64 disjoint boxes each) push the snapshot past
        // one chunk (1 MiB) cheaply: the response streams as
        // MUX_CHUNK frames with a terminal MUX_END.
        for i in 0..900u64 {
            let x = (i % 40) as f64;
            let y = (i / 40) as f64;
            let cells = (0..64u64).map(|j| {
                let fx = x + (j % 8) as f64 * 0.125;
                let fy = y + (j / 8) as f64 * 0.125;
                AaBox::new([fx, fy], [fx + 0.06, fy + 0.06])
            });
            remote.insert(c, Region::from_boxes(cells)).unwrap();
        }
        // Let the first response chunk through, then sever mid-stream.
        // remaining = 2 so the automatic idempotent retry hits the
        // same fault and the error genuinely surfaces.
        proxy.inject(FaultRule {
            direction: Direction::ServerToClient,
            matches: FrameMatch::Any,
            action: FaultAction::Sever,
            remaining: 2,
            skip: 1,
        });
        let err = remote
            .snapshot_stream()
            .expect_err("a severed stream must error, not hang");
        match err {
            ShardError::Wire(e) => assert!(
                e.is_transport(),
                "mid-stream sever must be a named transport error: {e:?}"
            ),
            other => panic!("expected a wire transport error, got {other:?}"),
        }
        // Fault spent; a fresh attempt streams the whole snapshot.
        let bytes = remote
            .snapshot_stream()
            .expect("the healed connection streams the snapshot");
        assert!(
            bytes.len() > crate::wire::STREAM_CHUNK,
            "the snapshot must span multiple chunks to prove mid-stream \
             recovery ({} bytes)",
            bytes.len()
        );
        assert!(remote.check().is_empty(), "{:?}", remote.check());
        server.shutdown();
    }

    #[test]
    fn partition_and_heal_round_trips_without_a_new_client() {
        let (server, proxy, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(10.0, 10.0, 5.0, 5.0)).unwrap();
        proxy.partition();
        let mut out = Vec::new();
        let mut trace = ProbeTrace::default();
        assert!(
            remote
                .try_corner_query(
                    c,
                    IndexKind::RTree,
                    &CornerQuery::unconstrained(),
                    &mut out,
                    &mut trace,
                )
                .is_err(),
            "a partitioned shard cannot answer"
        );
        assert!(out.is_empty());
        assert_eq!(
            trace.retries, 1,
            "the failed probe still accounts for its retry attempt"
        );
        proxy.heal();
        let mut out = Vec::new();
        remote
            .try_corner_query(
                c,
                IndexKind::RTree,
                &CornerQuery::unconstrained(),
                &mut out,
                &mut ProbeTrace::default(),
            )
            .expect("the healed shard answers the same client");
        assert_eq!(out, vec![0]);
        // Mirror and shard are still in lockstep after the outage.
        assert!(remote.check().is_empty(), "{:?}", remote.check());
        server.shutdown();
    }
}
