//! Per-shard write-ahead log: durable mutation records between
//! snapshots.
//!
//! A shard process with a WAL survives SIGKILL without losing a single
//! **acknowledged** mutation: every committed `create`/`insert`/
//! `remove`/`update`/`compact` is encoded with the same `SCQW` codec
//! the wire protocol uses ([`crate::wire::encode_request`]), framed as
//! a length-prefixed, checksummed record, appended to the current
//! **segment** file, and the client's response is held back until a
//! **group-commit** flusher has fsynced the batch. Recovery is
//! *newest snapshot + replay*: startup loads the newest `snap-*.scqs`
//! file (if any) and replays every segment past it, tolerating exactly
//! one **torn tail** record at the physical end of the newest segment
//! (the record a crash cut mid-write was, by construction, never
//! acknowledged). Any other damage — a checksum mismatch, a record
//! spliced in from another shard's log, a truncated *sealed* segment,
//! a gap in the segment sequence — is a loud named [`WalError`], never
//! a silently shorter history.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! <dir>/seg-00000000.scql     segment: header, then records
//! <dir>/seg-00000001.scql     (rotated when a segment passes the cap)
//! <dir>/snap-00000002.scqs    an SCQS snapshot; replay resumes at seg 2
//!
//! segment header := "SCQL" | u16 version (=1) | u64 salt | u64 seq
//! record         := u32 payload_len | u32 crc | payload
//! payload        := encode_request(create/insert/remove/update/compact)
//! crc            := crc32(salt_le_bytes ++ payload)
//! ```
//!
//! The **salt** is drawn once per log and stamped into every segment
//! header and every record checksum, so a record (or whole segment)
//! copied in from a *different* shard's WAL fails validation instead of
//! replaying someone else's history.
//!
//! [`Wal::truncate`] is the log-truncation point behind `SNAPSHOT
//! SAVE`/`SNAPSHOT LOAD`: it snapshots the current state next to the
//! log (tmp file + atomic rename), seals the current segment, opens the
//! next one, and deletes everything the snapshot makes redundant. A
//! crash anywhere inside truncation recovers cleanly: until the rename
//! lands the old snapshot + full replay win; after it, stale files are
//! swept at the next recovery.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use scq_engine::{snapshot, ObjectRef, SpatialDatabase};
use scq_obs::Histogram;
use scq_region::AaBox;

use crate::wire::{decode_request, encode_request, Request, MAX_FRAME};

/// Magic prefix of every segment file.
pub const SEGMENT_MAGIC: &[u8; 4] = b"SCQL";
/// Current segment format version. Bump on any layout change; old
/// versions must keep loading (the `SCQM` v1→v3 discipline).
pub const SEGMENT_VERSION: u16 = 1;
/// Byte length of the segment header: magic + version + salt + seq.
pub const SEGMENT_HEADER_LEN: usize = 4 + 2 + 8 + 8;
/// Fixed per-record overhead: `u32` payload length + `u32` checksum.
pub const RECORD_HEADER_LEN: usize = 8;

/// A WAL-export response larger than this is refused (`complete =
/// false`) so it always fits a wire frame with room to spare; the
/// caller falls back to shipping a snapshot.
pub const EXPORT_BUDGET: usize = MAX_FRAME / 2;

// ── errors ──────────────────────────────────────────────────────────────

/// Errors from the write-ahead log. Everything recovery refuses to
/// guess about is its own named variant.
#[derive(Clone, Debug, PartialEq)]
pub enum WalError {
    /// Filesystem-level failure.
    Io(String),
    /// A segment header is malformed (bad magic, unknown version,
    /// sequence number disagreeing with the file name).
    BadHeader {
        /// What was wrong.
        reason: String,
    },
    /// A segment carries a different salt than the rest of the log —
    /// it belongs to another shard's WAL.
    SaltMismatch {
        /// Offending file name.
        file: String,
        /// Salt the rest of the log carries.
        expected: u64,
        /// Salt the offending segment carries.
        found: u64,
    },
    /// The segment sequence has a hole: records are missing and replay
    /// cannot be trusted.
    SequenceGap {
        /// The sequence number recovery expected next.
        expected: u64,
        /// The sequence number it found instead.
        found: u64,
    },
    /// A record failed validation somewhere other than the tolerated
    /// torn tail: checksum mismatch, oversized or undecodable payload,
    /// a truncated record inside a sealed segment.
    CorruptRecord {
        /// File the record lives in.
        file: String,
        /// Byte offset of the record start.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// A record decoded cleanly but the database refused it on replay
    /// (an impossible slot, a non-mutation opcode): the log and the
    /// state it claims to rebuild disagree.
    ReplayRejected {
        /// File the record lives in.
        file: String,
        /// Byte offset of the record start.
        offset: u64,
        /// Why the database refused it.
        reason: String,
    },
    /// The newest snapshot file would not load.
    BadSnapshot {
        /// Snapshot file name.
        file: String,
        /// The snapshot codec's complaint.
        reason: String,
    },
    /// The request is not a loggable mutation (queries, handshakes and
    /// snapshot transfers never enter the WAL).
    NotLoggable {
        /// Debug rendering of the refused request.
        op: String,
    },
    /// The log was shut down or its flusher died; no further appends
    /// or durability waits can succeed.
    Closed(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(m) => write!(f, "wal io: {m}"),
            WalError::BadHeader { reason } => write!(f, "bad segment header: {reason}"),
            WalError::SaltMismatch {
                file,
                expected,
                found,
            } => write!(
                f,
                "{file}: salt {found:#018x} does not match this log's {expected:#018x} \
                 (segment from another shard's wal?)"
            ),
            WalError::SequenceGap { expected, found } => {
                write!(
                    f,
                    "segment sequence gap: expected seg {expected}, found {found}"
                )
            }
            WalError::CorruptRecord {
                file,
                offset,
                reason,
            } => write!(f, "{file}: corrupt record at offset {offset}: {reason}"),
            WalError::ReplayRejected {
                file,
                offset,
                reason,
            } => write!(
                f,
                "{file}: replay rejected record at offset {offset}: {reason}"
            ),
            WalError::BadSnapshot { file, reason } => {
                write!(f, "{file}: snapshot would not load: {reason}")
            }
            WalError::NotLoggable { op } => write!(f, "not a loggable mutation: {op}"),
            WalError::Closed(m) => write!(f, "wal closed: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.to_string())
    }
}

// ── configuration and observability ─────────────────────────────────────

/// Where and how a shard keeps its WAL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalConfig {
    /// Directory holding this shard's segments and snapshots. One
    /// directory per shard **address** — two shards must never share.
    pub dir: PathBuf,
    /// The group-commit window: how long appended records may wait for
    /// the batching fsync. Acknowledgement latency trades directly
    /// against fsyncs per second.
    pub group_commit: Duration,
    /// Rotate to a fresh segment once the current one passes this many
    /// bytes. Small segments keep per-file replay and export granular.
    pub segment_cap: u64,
}

/// Default group-commit window (5 ms).
pub const DEFAULT_GROUP_COMMIT_MS: u64 = 5;
/// Default segment rotation threshold (1 MiB).
pub const DEFAULT_SEGMENT_CAP: u64 = 1 << 20;

impl WalConfig {
    /// A config with the default group-commit window and segment cap.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            group_commit: Duration::from_millis(DEFAULT_GROUP_COMMIT_MS),
            segment_cap: DEFAULT_SEGMENT_CAP,
        }
    }
}

/// Counters describing a live WAL. `appended`/`fsync_batches` count
/// this process's session; `replayed`/`torn_tails` describe the
/// recovery that opened it; `segments`/`bytes` describe the on-disk
/// log right now.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since the log was opened.
    pub appended: u64,
    /// Records replayed by the recovery that opened the log.
    pub replayed: u64,
    /// Batched fsyncs issued since the log was opened.
    pub fsync_batches: u64,
    /// Segment files currently on disk.
    pub segments: u64,
    /// Total bytes across those segment files.
    pub bytes: u64,
    /// Torn tail records discarded by recovery (0 or 1).
    pub torn_tails: u64,
}

impl WalStats {
    /// Field-wise sum, for aggregating across shards.
    pub fn merge(&self, other: &WalStats) -> WalStats {
        WalStats {
            appended: self.appended + other.appended,
            replayed: self.replayed + other.replayed,
            fsync_batches: self.fsync_batches + other.fsync_batches,
            segments: self.segments + other.segments,
            bytes: self.bytes + other.bytes,
            torn_tails: self.torn_tails + other.torn_tails,
        }
    }
}

/// A claim ticket from [`Wal::append`]: pass to [`Wal::wait_durable`]
/// before acknowledging the mutation it logged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket(u64);

/// An exported slice of the log, for replica resync.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalExport {
    /// Whether the segments reach back to genesis (segment 0, never
    /// truncated) — only then can they rebuild a pristine replica.
    pub complete: bool,
    /// Raw segment files, oldest first. Empty when `complete` is
    /// false.
    pub segments: Vec<Vec<u8>>,
}

// ── checksums and the segment header ────────────────────────────────────

/// CRC-32 (IEEE) over the log salt followed by the payload, so the
/// same bytes under a different salt never validate.
pub fn record_crc(salt: u64, payload: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = u32::MAX;
    for &b in salt.to_le_bytes().iter().chain(payload.iter()) {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// A parsed segment header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// The log's salt.
    pub salt: u64,
    /// This segment's sequence number.
    pub seq: u64,
}

/// Serializes the v1 segment header. The layout is frozen: magic at
/// 0, version at 4, salt at 6, seq at 14 — a future v2 must bump
/// [`SEGMENT_VERSION`] and keep parsing this.
pub fn segment_header(salt: u64, seq: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[0..4].copy_from_slice(SEGMENT_MAGIC);
    h[4..6].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    h[6..14].copy_from_slice(&salt.to_le_bytes());
    h[14..22].copy_from_slice(&seq.to_le_bytes());
    h
}

/// Parses a segment header, rejecting bad magic and unknown versions
/// with named errors.
pub fn parse_segment_header(bytes: &[u8]) -> Result<SegmentHeader, WalError> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(WalError::BadHeader {
            reason: format!(
                "{} bytes is shorter than the {SEGMENT_HEADER_LEN}-byte header",
                bytes.len()
            ),
        });
    }
    if &bytes[0..4] != SEGMENT_MAGIC {
        return Err(WalError::BadHeader {
            reason: "not a wal segment (bad magic)".into(),
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SEGMENT_VERSION {
        return Err(WalError::BadHeader {
            reason: format!(
                "unknown segment version {version} (this build reads {SEGMENT_VERSION})"
            ),
        });
    }
    let salt = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
    let seq = u64::from_le_bytes(bytes[14..22].try_into().expect("8 bytes"));
    Ok(SegmentHeader { salt, seq })
}

fn seg_name(seq: u64) -> String {
    format!("seg-{seq:08}.scql")
}

fn snap_name(seq: u64) -> String {
    format!("snap-{seq:08}.scqs")
}

fn parse_name(name: &str) -> Option<(bool, u64)> {
    let (is_seg, rest) = if let Some(r) = name.strip_prefix("seg-") {
        (true, r.strip_suffix(".scql")?)
    } else if let Some(r) = name.strip_prefix("snap-") {
        (false, r.strip_suffix(".scqs")?)
    } else {
        return None;
    };
    rest.parse::<u64>().ok().map(|seq| (is_seg, seq))
}

/// Which requests belong in the log: exactly the mutations (compaction
/// included — its remap is deterministic given the state it runs on,
/// so replay reproduces the same slot layout).
pub fn loggable(req: &Request) -> bool {
    matches!(
        req,
        Request::Create { .. }
            | Request::Insert { .. }
            | Request::Remove { .. }
            | Request::Update { .. }
            | Request::Compact
    )
}

/// Applies one replayed mutation to the database. Refusals are loud:
/// a record that does not fit the state it claims to extend means the
/// log is not the history of this database.
fn apply_record(db: &mut SpatialDatabase<2>, req: &Request) -> Result<(), String> {
    let known = |db: &SpatialDatabase<2>, coll: scq_engine::CollectionId| {
        if coll.0 < db.collections().count() {
            Ok(())
        } else {
            Err(format!("unknown collection id {}", coll.0))
        }
    };
    match req {
        Request::Create { name } => {
            db.collection(name);
            Ok(())
        }
        Request::Insert { coll, region } => {
            known(db, *coll)?;
            db.insert(*coll, region.clone());
            Ok(())
        }
        Request::Remove { coll, local } => {
            known(db, *coll)?;
            let index = *local as usize;
            if index >= db.collection_len(*coll) {
                return Err(format!("slot {index} out of range"));
            }
            db.remove(ObjectRef {
                collection: *coll,
                index,
            });
            Ok(())
        }
        Request::Update {
            coll,
            local,
            region,
        } => {
            known(db, *coll)?;
            let index = *local as usize;
            if index >= db.collection_len(*coll) {
                return Err(format!("slot {index} out of range"));
            }
            db.update(
                ObjectRef {
                    collection: *coll,
                    index,
                },
                region.clone(),
            );
            Ok(())
        }
        Request::Compact => {
            db.compact();
            Ok(())
        }
        other => Err(format!("non-mutation record {other:?}")),
    }
}

// ── segment scanning ────────────────────────────────────────────────────

struct ScanOutcome {
    header: Option<SegmentHeader>,
    records: u64,
    /// Byte length of the valid prefix (header + whole records).
    valid_len: u64,
    /// Whether bytes past `valid_len` were discarded as a torn tail.
    torn: bool,
}

/// Walks one segment's bytes, calling `on_record` for each valid
/// record. `allow_torn` permits an incomplete record (or header) at
/// the physical end — legal only in the newest segment.
fn scan_segment<F>(
    name: &str,
    bytes: &[u8],
    expected_salt: Option<u64>,
    expected_seq: Option<u64>,
    allow_torn: bool,
    mut on_record: F,
) -> Result<ScanOutcome, WalError>
where
    F: FnMut(Request, u64) -> Result<(), WalError>,
{
    if bytes.len() < SEGMENT_HEADER_LEN {
        if allow_torn {
            // A crash during segment creation: no complete header ever
            // hit the disk. Nothing in it can have been acknowledged.
            return Ok(ScanOutcome {
                header: None,
                records: 0,
                valid_len: 0,
                torn: !bytes.is_empty(),
            });
        }
        return Err(WalError::BadHeader {
            reason: format!("{name}: sealed segment shorter than its header"),
        });
    }
    let header = parse_segment_header(bytes).map_err(|e| match e {
        WalError::BadHeader { reason } => WalError::BadHeader {
            reason: format!("{name}: {reason}"),
        },
        other => other,
    })?;
    if let Some(salt) = expected_salt {
        if header.salt != salt {
            return Err(WalError::SaltMismatch {
                file: name.to_string(),
                expected: salt,
                found: header.salt,
            });
        }
    }
    if let Some(seq) = expected_seq {
        if header.seq != seq {
            return Err(WalError::BadHeader {
                reason: format!(
                    "{name}: header claims sequence {} but the file is named {seq}",
                    header.seq
                ),
            });
        }
    }
    let mut off = SEGMENT_HEADER_LEN;
    let mut records = 0u64;
    loop {
        let remaining = bytes.len() - off;
        if remaining == 0 {
            return Ok(ScanOutcome {
                header: Some(header),
                records,
                valid_len: off as u64,
                torn: false,
            });
        }
        let torn_tail = |off: usize, records: u64| {
            if allow_torn {
                Ok(ScanOutcome {
                    header: Some(header),
                    records,
                    valid_len: off as u64,
                    torn: true,
                })
            } else {
                Err(WalError::CorruptRecord {
                    file: name.to_string(),
                    offset: off as u64,
                    reason: "record truncated inside a sealed segment".into(),
                })
            }
        };
        if remaining < RECORD_HEADER_LEN {
            return torn_tail(off, records);
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            // Append caps record payloads at MAX_FRAME, so a larger
            // length is corruption of the length field itself — a torn
            // write leaves a *prefix* of a real record, never a
            // rewritten one.
            return Err(WalError::CorruptRecord {
                file: name.to_string(),
                offset: off as u64,
                reason: format!("record length {len} exceeds the {MAX_FRAME}-byte cap"),
            });
        }
        if RECORD_HEADER_LEN + len > remaining {
            return torn_tail(off, records);
        }
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        let payload = &bytes[off + RECORD_HEADER_LEN..off + RECORD_HEADER_LEN + len];
        if record_crc(header.salt, payload) != crc {
            return Err(WalError::CorruptRecord {
                file: name.to_string(),
                offset: off as u64,
                reason: "checksum mismatch".into(),
            });
        }
        let req = decode_request(payload).map_err(|e| WalError::CorruptRecord {
            file: name.to_string(),
            offset: off as u64,
            reason: format!("undecodable record: {e}"),
        })?;
        if !loggable(&req) {
            return Err(WalError::CorruptRecord {
                file: name.to_string(),
                offset: off as u64,
                reason: format!("non-mutation record {req:?}"),
            });
        }
        on_record(req, off as u64)?;
        records += 1;
        off += RECORD_HEADER_LEN + len;
    }
}

// ── recovery ────────────────────────────────────────────────────────────

struct Recovered {
    db: SpatialDatabase<2>,
    salt: Option<u64>,
    /// Sequence of the segment appends should continue in (recreated
    /// if its header never finished, resumed otherwise).
    next_seq: u64,
    /// Valid byte length to resume the newest segment at, when it
    /// exists with an intact header.
    resume_len: Option<u64>,
    replayed: u64,
    torn_tails: u64,
}

type NumberedFiles = BTreeMap<u64, PathBuf>;

fn list_dir(dir: &Path) -> Result<(NumberedFiles, NumberedFiles), WalError> {
    let mut segs = BTreeMap::new();
    let mut snaps = BTreeMap::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        match parse_name(name) {
            Some((true, seq)) => {
                segs.insert(seq, entry.path());
            }
            Some((false, seq)) => {
                snaps.insert(seq, entry.path());
            }
            // Tmp files from an interrupted truncation, editor
            // droppings: not ours to interpret.
            None => {}
        }
    }
    Ok((segs, snaps))
}

fn recover(dir: &Path, universe: AaBox<2>) -> Result<Recovered, WalError> {
    fs::create_dir_all(dir)?;
    let (segs, snaps) = list_dir(dir)?;

    // Newest snapshot is the replay base. Older snapshots are
    // redundant; a corrupt *newest* snapshot is a loud error because
    // the segments its truncation deleted are gone with it.
    let (mut db, base_seq) = match snaps.iter().next_back() {
        Some((&seq, path)) => {
            let file = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("snapshot");
            let bytes = fs::read(path)?;
            let db = snapshot::load::<2>(&bytes).map_err(|e| WalError::BadSnapshot {
                file: file.to_string(),
                reason: e.to_string(),
            })?;
            (db, seq)
        }
        None => (SpatialDatabase::new(universe), 0),
    };

    // Segments below the base are leftovers of a truncation that
    // crashed before its deletes finished; the snapshot superseded
    // them. Sweep now so they never confuse a later recovery.
    for (&seq, path) in &segs {
        if seq < base_seq {
            let _ = fs::remove_file(path);
        }
    }
    for (&seq, path) in &snaps {
        if seq < base_seq {
            let _ = fs::remove_file(path);
        }
    }

    let replay: Vec<(u64, &PathBuf)> = segs.range(base_seq..).map(|(s, p)| (*s, p)).collect();
    let mut salt: Option<u64> = None;
    let mut replayed = 0u64;
    let mut torn_tails = 0u64;
    let mut next_seq = base_seq;
    let mut resume_len = None;
    for (i, (seq, path)) in replay.iter().enumerate() {
        let expected = base_seq + i as u64;
        if *seq != expected {
            return Err(WalError::SequenceGap {
                expected,
                found: *seq,
            });
        }
        let newest = i + 1 == replay.len();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("segment")
            .to_string();
        let bytes = fs::read(path)?;
        let outcome = scan_segment(&name, &bytes, salt, Some(*seq), newest, |req, off| {
            apply_record(&mut db, &req).map_err(|reason| WalError::ReplayRejected {
                file: name.clone(),
                offset: off,
                reason,
            })
        })?;
        if let Some(h) = outcome.header {
            salt = Some(h.salt);
        }
        replayed += outcome.records;
        if outcome.torn {
            torn_tails += 1;
        }
        if newest {
            next_seq = *seq;
            if outcome.header.is_some() {
                resume_len = Some(outcome.valid_len);
            }
        }
    }
    Ok(Recovered {
        db,
        salt,
        next_seq,
        resume_len,
        replayed,
        torn_tails,
    })
}

// ── the log itself ──────────────────────────────────────────────────────

struct WalState {
    file: File,
    seq: u64,
    file_len: u64,
    appended: u64,
    durable: u64,
    fsync_batches: u64,
    broken: Option<String>,
    shutdown: bool,
}

struct Shared {
    dir: PathBuf,
    salt: u64,
    segment_cap: u64,
    state: Mutex<WalState>,
    cv: Condvar,
    /// Latency of every data fsync (group-commit batches, rotation
    /// seals, truncation and export flushes). Shared out via
    /// [`Wal::fsync_latency`] so the shard server can register it as
    /// `wal.fsync.latency` without a stats-plumbing detour.
    fsync_latency: Histogram,
}

/// A shard's open write-ahead log: appends, the group-commit flusher,
/// truncation and export. Construct with [`Wal::open`], which runs
/// recovery first and hands back the recovered database alongside the
/// log.
pub struct Wal {
    shared: Arc<Shared>,
    group_commit: Duration,
    replayed: u64,
    torn_tails: u64,
    flusher: Option<JoinHandle<()>>,
}

fn sync_dir(dir: &Path) -> Result<(), WalError> {
    // Directory fsync makes creates/renames/deletes durable on Linux;
    // a platform where opening a directory fails just skips it.
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

fn fresh_salt() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let pid = std::process::id() as u64;
    // SplitMix64 scrambles the timestamp/pid so two shards started in
    // the same instant still diverge.
    let mut z = nanos ^ (pid << 32) ^ pid;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn create_segment(dir: &Path, salt: u64, seq: u64) -> Result<File, WalError> {
    let path = dir.join(seg_name(seq));
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    file.write_all(&segment_header(salt, seq))?;
    file.sync_data()?;
    sync_dir(dir)?;
    Ok(file)
}

impl Wal {
    /// Recovers the directory (newest snapshot + replay, tolerating
    /// one torn tail) and opens the log for appending. Returns the log
    /// and the recovered database.
    pub fn open(
        config: &WalConfig,
        universe: AaBox<2>,
    ) -> Result<(Wal, SpatialDatabase<2>), WalError> {
        let r = recover(&config.dir, universe)?;
        let salt = r.salt.unwrap_or_else(fresh_salt);
        let (file, file_len) = match r.resume_len {
            Some(valid) if valid >= SEGMENT_HEADER_LEN as u64 => {
                let path = config.dir.join(seg_name(r.next_seq));
                let file = OpenOptions::new().read(true).write(true).open(&path)?;
                // Drop the torn tail so the next append starts at a
                // record boundary.
                file.set_len(valid)?;
                file.sync_data()?;
                let mut file = file;
                std::io::Seek::seek(&mut file, std::io::SeekFrom::End(0))?;
                (file, valid)
            }
            _ => {
                let file = create_segment(&config.dir, salt, r.next_seq)?;
                (file, SEGMENT_HEADER_LEN as u64)
            }
        };
        let shared = Arc::new(Shared {
            dir: config.dir.clone(),
            salt,
            segment_cap: config.segment_cap.max(SEGMENT_HEADER_LEN as u64 + 1),
            state: Mutex::new(WalState {
                file,
                seq: r.next_seq,
                file_len,
                appended: 0,
                durable: 0,
                fsync_batches: 0,
                broken: None,
                shutdown: false,
            }),
            cv: Condvar::new(),
            fsync_latency: Histogram::new(),
        });
        let group_commit = config.group_commit.max(Duration::from_millis(1));
        let flusher = {
            let shared = Arc::clone(&shared);
            let window = group_commit;
            std::thread::spawn(move || flusher_loop(&shared, window))
        };
        Ok((
            Wal {
                shared,
                group_commit,
                replayed: r.replayed,
                torn_tails: r.torn_tails,
                flusher: Some(flusher),
            },
            r.db,
        ))
    }

    /// The log's salt (stamped into every segment and checksum).
    pub fn salt(&self) -> u64 {
        self.shared.salt
    }

    /// The configured group-commit window.
    pub fn group_commit(&self) -> Duration {
        self.group_commit
    }

    /// Appends one mutation record and returns the ticket to wait on.
    /// The record is in the OS page cache when this returns — it is
    /// **not durable** until [`Wal::wait_durable`] admits the ticket.
    ///
    /// Call while holding the lock that serializes mutations, so log
    /// order equals apply order; wait for durability *after* releasing
    /// it, so the fsync latency never blocks readers.
    pub fn append(&self, req: &Request) -> Result<Ticket, WalError> {
        if !loggable(req) {
            return Err(WalError::NotLoggable {
                op: format!("{req:?}"),
            });
        }
        let payload = encode_request(req);
        if payload.len() > MAX_FRAME {
            return Err(WalError::NotLoggable {
                op: format!("record of {} bytes exceeds the frame cap", payload.len()),
            });
        }
        let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&record_crc(self.shared.salt, &payload).to_le_bytes());
        record.extend_from_slice(&payload);

        let mut st = self.shared.state.lock().expect("wal state");
        if let Some(broken) = &st.broken {
            return Err(WalError::Closed(broken.clone()));
        }
        if st.shutdown {
            return Err(WalError::Closed("log shut down".into()));
        }
        if st.file_len + record.len() as u64 > self.shared.segment_cap
            && st.file_len > SEGMENT_HEADER_LEN as u64
        {
            self.rotate(&mut st)?;
        }
        st.file.write_all(&record)?;
        st.file_len += record.len() as u64;
        st.appended += 1;
        Ok(Ticket(st.appended))
    }

    /// Flushes any unacknowledged records in the open segment,
    /// recording the fsync latency. Caller holds the state lock.
    fn sync_pending(&self, st: &mut WalState) -> Result<(), WalError> {
        if st.durable < st.appended {
            let started = std::time::Instant::now();
            st.file.sync_data()?;
            self.shared.fsync_latency.observe(started.elapsed());
            st.durable = st.appended;
            st.fsync_batches += 1;
            self.shared.cv.notify_all();
        }
        Ok(())
    }

    /// Seals the current segment (flushing what it holds) and opens
    /// the next one. Caller holds the state lock.
    fn rotate(&self, st: &mut WalState) -> Result<(), WalError> {
        self.sync_pending(st)?;
        let next = st.seq + 1;
        st.file = create_segment(&self.shared.dir, self.shared.salt, next)?;
        st.seq = next;
        st.file_len = SEGMENT_HEADER_LEN as u64;
        Ok(())
    }

    /// Blocks until the ticket's record is fsynced (the group-commit
    /// flusher batches waiters into one sync). Only after this returns
    /// may the mutation be acknowledged.
    pub fn wait_durable(&self, ticket: Ticket) -> Result<(), WalError> {
        let mut st = self.shared.state.lock().expect("wal state");
        while st.durable < ticket.0 {
            if let Some(broken) = &st.broken {
                return Err(WalError::Closed(broken.clone()));
            }
            if st.shutdown {
                return Err(WalError::Closed(
                    "log shut down before the record was durable".into(),
                ));
            }
            st = self.shared.cv.wait(st).expect("wal state");
        }
        Ok(())
    }

    /// [`Wal::append`] + [`Wal::wait_durable`] in one call, for
    /// callers with no lock to release in between.
    pub fn append_durable(&self, req: &Request) -> Result<(), WalError> {
        let t = self.append(req)?;
        self.wait_durable(t)
    }

    /// The truncation point: snapshots `db` next to the log (tmp +
    /// atomic rename), seals the current segment, opens the next one
    /// and deletes every file the snapshot made redundant. Call with
    /// mutations excluded (the shard server holds its database lock)
    /// and `db` equal to the state the log describes.
    pub fn truncate(&self, db: &SpatialDatabase<2>) -> Result<(), WalError> {
        let mut st = self.shared.state.lock().expect("wal state");
        if let Some(broken) = &st.broken {
            return Err(WalError::Closed(broken.clone()));
        }
        // Everything appended so far must be on disk before the
        // snapshot claims to supersede it.
        self.sync_pending(&mut st)?;
        let next = st.seq + 1;
        let tmp = self.shared.dir.join(format!("snap-{next:08}.tmp"));
        let stream = snapshot::save(db);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&stream)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.shared.dir.join(snap_name(next)))?;
        sync_dir(&self.shared.dir)?;
        // The snapshot is durable: recovery now starts at `next`
        // whatever happens below.
        st.file = create_segment(&self.shared.dir, self.shared.salt, next)?;
        st.seq = next;
        st.file_len = SEGMENT_HEADER_LEN as u64;
        drop(st);
        let (segs, snaps) = list_dir(&self.shared.dir)?;
        for (seq, path) in segs.iter().chain(snaps.iter()) {
            if *seq < next {
                let _ = fs::remove_file(path);
            }
        }
        sync_dir(&self.shared.dir)?;
        Ok(())
    }

    /// Reads the whole log for replica resync. `complete` only when
    /// the segments reach back to genesis (never truncated) and fit
    /// the [`EXPORT_BUDGET`]; otherwise the caller must ship a
    /// snapshot instead. Call with mutations excluded so no append
    /// lands mid-read.
    pub fn export(&self) -> Result<WalExport, WalError> {
        let mut st = self.shared.state.lock().expect("wal state");
        self.sync_pending(&mut st)?;
        drop(st);
        let (segs, _) = list_dir(&self.shared.dir)?;
        let complete = segs.keys().next() == Some(&0);
        if !complete {
            return Ok(WalExport {
                complete: false,
                segments: Vec::new(),
            });
        }
        let mut total = 0usize;
        let mut segments = Vec::with_capacity(segs.len());
        for path in segs.values() {
            let bytes = fs::read(path)?;
            total += bytes.len();
            if total > EXPORT_BUDGET {
                return Ok(WalExport {
                    complete: false,
                    segments: Vec::new(),
                });
            }
            segments.push(bytes);
        }
        Ok(WalExport {
            complete: true,
            segments,
        })
    }

    /// The log's fsync-latency histogram. The handle shares cells with
    /// the live log, so registering it once
    /// (`registry.register_histogram("wal.fsync.latency", …)`) keeps
    /// scrapes current with no polling.
    pub fn fsync_latency(&self) -> Histogram {
        self.shared.fsync_latency.clone()
    }

    /// Live counters (see [`WalStats`]).
    pub fn stats(&self) -> WalStats {
        let st = self.shared.state.lock().expect("wal state");
        let (appended, fsync_batches) = (st.appended, st.fsync_batches);
        drop(st);
        let (mut segments, mut bytes) = (0u64, 0u64);
        if let Ok((segs, _)) = list_dir(&self.shared.dir) {
            for path in segs.values() {
                segments += 1;
                bytes += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            }
        }
        WalStats {
            appended,
            replayed: self.replayed,
            fsync_batches,
            segments,
            bytes,
            torn_tails: self.torn_tails,
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("wal state");
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        if let Some(f) = self.flusher.take() {
            let _ = f.join();
        }
    }
}

fn flusher_loop(shared: &Shared, window: Duration) {
    let mut st = shared.state.lock().expect("wal state");
    loop {
        if st.broken.is_none() && st.appended > st.durable {
            let started = std::time::Instant::now();
            match st.file.sync_data() {
                Ok(()) => {
                    shared.fsync_latency.observe(started.elapsed());
                    st.durable = st.appended;
                    st.fsync_batches += 1;
                }
                Err(e) => {
                    // A failed fsync poisons the log: nothing after it
                    // may be acknowledged, and waiters must fail loud.
                    st.broken = Some(format!("fsync failed: {e}"));
                }
            }
            shared.cv.notify_all();
        }
        if st.shutdown {
            return;
        }
        let (guard, _) = shared.cv.wait_timeout(st, window).expect("wal state");
        st = guard;
    }
}

/// Rebuilds a database from exported segments (the replica side of
/// WAL-shipped resync). The segments must be self-consistent — shared
/// salt, contiguous sequence from 0, intact checksums; no torn tail is
/// tolerated (they came from a live log, not a crash). Returns the
/// number of records applied.
pub fn replay_export(db: &mut SpatialDatabase<2>, segments: &[Vec<u8>]) -> Result<u64, WalError> {
    if segments.is_empty() {
        return Ok(0);
    }
    let mut salt: Option<u64> = None;
    let mut applied = 0u64;
    for (i, bytes) in segments.iter().enumerate() {
        let name = format!("exported segment {i}");
        let outcome = scan_segment(&name, bytes, salt, Some(i as u64), false, |req, off| {
            apply_record(db, &req).map_err(|reason| WalError::ReplayRejected {
                file: name.clone(),
                offset: off,
                reason,
            })
        })?;
        if let Some(h) = outcome.header {
            salt = Some(h.salt);
        }
        applied += outcome.records;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_engine::CollectionId;
    use scq_region::Region;

    fn universe() -> AaBox<2> {
        AaBox::new([0.0, 0.0], [100.0, 100.0])
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scq-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_config(dir: &Path) -> WalConfig {
        WalConfig {
            dir: dir.to_path_buf(),
            group_commit: Duration::from_millis(1),
            segment_cap: DEFAULT_SEGMENT_CAP,
        }
    }

    fn boxed(lo: f64) -> Region<2> {
        Region::from_box(AaBox::new([lo, lo], [lo + 1.0, lo + 1.0]))
    }

    /// A scripted little history: create, three inserts, an update, a
    /// remove — applied to `db` and appended durably to `wal`.
    fn churn(wal: &Wal, db: &mut SpatialDatabase<2>) {
        let reqs = sample_history();
        for req in &reqs {
            apply_record(db, req).unwrap();
            wal.append_durable(req).unwrap();
        }
    }

    fn sample_history() -> Vec<Request> {
        vec![
            Request::Create {
                name: "objs".into(),
            },
            Request::Insert {
                coll: CollectionId(0),
                region: boxed(1.0),
            },
            Request::Insert {
                coll: CollectionId(0),
                region: boxed(10.0),
            },
            Request::Insert {
                coll: CollectionId(0),
                region: boxed(20.0),
            },
            Request::Update {
                coll: CollectionId(0),
                local: 1,
                region: boxed(30.0),
            },
            Request::Remove {
                coll: CollectionId(0),
                local: 0,
            },
            Request::Compact,
            Request::Insert {
                coll: CollectionId(0),
                region: boxed(40.0),
            },
        ]
    }

    fn state_bytes(db: &SpatialDatabase<2>) -> Vec<u8> {
        snapshot::save(db).to_vec()
    }

    #[test]
    fn append_then_recover_rebuilds_the_exact_state() {
        let dir = tmpdir("roundtrip");
        let oracle;
        {
            let (wal, db) = Wal::open(&small_config(&dir), universe()).unwrap();
            let mut db = db;
            churn(&wal, &mut db);
            oracle = db;
            assert_eq!(wal.stats().appended, sample_history().len() as u64);
        }
        let (wal, recovered) = Wal::open(&small_config(&dir), universe()).unwrap();
        assert_eq!(state_bytes(&recovered), state_bytes(&oracle));
        let stats = wal.stats();
        assert_eq!(stats.replayed, sample_history().len() as u64);
        assert_eq!(stats.torn_tails, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_spans_rotated_segments() {
        let dir = tmpdir("rotate");
        let mut cfg = small_config(&dir);
        cfg.segment_cap = 80; // force a rotation every record or two
        let oracle;
        {
            let (wal, mut db) = Wal::open(&cfg, universe()).unwrap();
            churn(&wal, &mut db);
            oracle = db;
            assert!(wal.stats().segments > 1, "cap of 80 bytes must rotate");
        }
        let (wal, recovered) = Wal::open(&cfg, universe()).unwrap();
        assert_eq!(state_bytes(&recovered), state_bytes(&oracle));
        assert_eq!(wal.stats().replayed, sample_history().len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_byte_offset_is_torn_tail_or_clean() {
        // Build a two-segment log, then cut the NEWEST segment at every
        // byte offset: recovery must always succeed, replaying exactly
        // the records whose bytes survived whole, counting one torn
        // tail when (and only when) partial bytes were dropped.
        let dir = tmpdir("everycut");
        let mut cfg = small_config(&dir);
        cfg.segment_cap = 120;
        {
            let (wal, mut db) = Wal::open(&cfg, universe()).unwrap();
            churn(&wal, &mut db);
        }
        let (segs, _) = list_dir(&dir).unwrap();
        assert!(segs.len() >= 2, "need a sealed segment and a newest one");
        let (&last_seq, last_path) = segs.iter().next_back().unwrap();
        let pristine = fs::read(last_path).unwrap();

        // Count the records of the untouched newest segment and the
        // boundaries where each one ends.
        let mut boundaries = vec![SEGMENT_HEADER_LEN];
        {
            let mut off = SEGMENT_HEADER_LEN;
            while off < pristine.len() {
                let len = u32::from_le_bytes(pristine[off..off + 4].try_into().unwrap()) as usize;
                off += RECORD_HEADER_LEN + len;
                boundaries.push(off);
            }
        }
        let earlier_records: u64 = segs
            .iter()
            .filter(|(s, _)| **s != last_seq)
            .map(|(_, p)| {
                let bytes = fs::read(p).unwrap();
                scan_segment("seg", &bytes, None, None, false, |_, _| Ok(()))
                    .unwrap()
                    .records
            })
            .sum();

        for cut in 0..=pristine.len() {
            let f = OpenOptions::new().write(true).open(last_path).unwrap();
            f.set_len(cut as u64).unwrap();
            drop(f);
            let (wal, _db) = Wal::open(&cfg, universe()).unwrap_or_else(|e| {
                panic!("cut at {cut}: recovery must tolerate a torn tail, got {e}")
            });
            let stats = wal.stats();
            let whole = (boundaries.iter().filter(|b| **b <= cut).count() as u64).saturating_sub(1);
            let at_boundary = boundaries.contains(&cut);
            if cut < SEGMENT_HEADER_LEN {
                // Torn header: the segment is recreated empty.
                assert_eq!(stats.replayed, earlier_records, "cut {cut}");
                assert_eq!(stats.torn_tails, u64::from(cut != 0), "cut {cut}");
            } else {
                assert_eq!(stats.replayed, earlier_records + whole, "cut {cut}");
                assert_eq!(stats.torn_tails, u64::from(!at_boundary), "cut {cut}");
            }
            drop(wal);
            // Restore the pristine segment for the next cut (recovery
            // may have truncated or recreated it).
            fs::write(last_path, &pristine).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbled_checksum_is_a_loud_corrupt_record() {
        let dir = tmpdir("garble");
        {
            let (wal, mut db) = Wal::open(&small_config(&dir), universe()).unwrap();
            churn(&wal, &mut db);
        }
        let (segs, _) = list_dir(&dir).unwrap();
        let path = segs.values().next().unwrap();
        let mut bytes = fs::read(path).unwrap();
        // Flip one payload byte of the FIRST record: its length stays
        // intact, so this is unambiguous corruption, never a torn tail.
        let flip_at = SEGMENT_HEADER_LEN + RECORD_HEADER_LEN;
        bytes[flip_at] ^= 0xFF;
        fs::write(path, &bytes).unwrap();
        match Wal::open(&small_config(&dir), universe()).map(|_| ()) {
            Err(WalError::CorruptRecord { offset, reason, .. }) => {
                assert_eq!(offset, SEGMENT_HEADER_LEN as u64);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbled_complete_tail_record_is_corruption_not_torn() {
        let dir = tmpdir("garbletail");
        {
            let (wal, mut db) = Wal::open(&small_config(&dir), universe()).unwrap();
            churn(&wal, &mut db);
        }
        let (segs, _) = list_dir(&dir).unwrap();
        let path = segs.values().next_back().unwrap();
        let mut bytes = fs::read(path).unwrap();
        // Flip the LAST byte: the final record is complete (its length
        // fits), so a checksum mismatch must stay loud even at the tail.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(path, &bytes).unwrap();
        match Wal::open(&small_config(&dir), universe()).map(|_| ()) {
            Err(WalError::CorruptRecord { reason, .. }) => {
                assert!(reason.contains("checksum"), "{reason}")
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_spliced_from_another_shards_wal_is_rejected() {
        let dir_a = tmpdir("splice-a");
        let dir_b = tmpdir("splice-b");
        {
            let (wal_a, mut db_a) = Wal::open(&small_config(&dir_a), universe()).unwrap();
            churn(&wal_a, &mut db_a);
            let (wal_b, mut db_b) = Wal::open(&small_config(&dir_b), universe()).unwrap();
            churn(&wal_b, &mut db_b);
            assert_ne!(wal_a.salt(), wal_b.salt(), "two logs, two salts");
        }
        // Graft B's first record (same wire bytes, B's salt in the
        // checksum) onto the end of A's newest segment.
        let (segs_b, _) = list_dir(&dir_b).unwrap();
        let b_bytes = fs::read(segs_b.values().next().unwrap()).unwrap();
        let b_len = u32::from_le_bytes(
            b_bytes[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + 4]
                .try_into()
                .unwrap(),
        ) as usize;
        let b_record = &b_bytes[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + RECORD_HEADER_LEN + b_len];
        let (segs_a, _) = list_dir(&dir_a).unwrap();
        let a_path = segs_a.values().next_back().unwrap().clone();
        let mut a_bytes = fs::read(&a_path).unwrap();
        let offset = a_bytes.len() as u64;
        a_bytes.extend_from_slice(b_record);
        fs::write(&a_path, &a_bytes).unwrap();
        match Wal::open(&small_config(&dir_a), universe()).map(|_| ()) {
            Err(WalError::CorruptRecord {
                offset: o, reason, ..
            }) => {
                assert_eq!(o, offset);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected CorruptRecord, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn whole_foreign_segment_is_a_salt_mismatch() {
        let dir_a = tmpdir("foreign-a");
        let dir_b = tmpdir("foreign-b");
        {
            let (wal_a, mut db_a) = Wal::open(&small_config(&dir_a), universe()).unwrap();
            churn(&wal_a, &mut db_a);
            let (wal_b, mut db_b) = Wal::open(&small_config(&dir_b), universe()).unwrap();
            churn(&wal_b, &mut db_b);
        }
        // B's seg-0, renamed as A's seg-1: the sequence is contiguous
        // and records are internally valid, but the salt betrays it.
        let (segs_b, _) = list_dir(&dir_b).unwrap();
        let mut bytes = fs::read(segs_b.values().next().unwrap()).unwrap();
        bytes[14..22].copy_from_slice(&1u64.to_le_bytes()); // rewrite seq 0 -> 1
        fs::write(dir_a.join(seg_name(1)), &bytes).unwrap();
        match Wal::open(&small_config(&dir_a), universe()).map(|_| ()) {
            Err(WalError::SaltMismatch { file, .. }) => assert!(file.contains("seg-00000001")),
            other => panic!("expected SaltMismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn missing_middle_segment_is_a_sequence_gap() {
        let dir = tmpdir("gap");
        let mut cfg = small_config(&dir);
        cfg.segment_cap = 80;
        {
            let (wal, mut db) = Wal::open(&cfg, universe()).unwrap();
            churn(&wal, &mut db);
            assert!(wal.stats().segments >= 3);
        }
        let (segs, _) = list_dir(&dir).unwrap();
        let middle = segs.keys().nth(1).copied().unwrap();
        fs::remove_file(dir.join(seg_name(middle))).unwrap();
        match Wal::open(&cfg, universe()).map(|_| ()) {
            Err(WalError::SequenceGap { expected, found }) => {
                assert_eq!(expected, middle);
                assert!(found > middle);
            }
            other => panic!("expected SequenceGap, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_header_layout_is_locked() {
        // The byte-exact v1 layout, so a future format change cannot
        // land without bumping SEGMENT_VERSION (and keeping this
        // parsing): magic at 0, version LE at 4, salt LE at 6, seq LE
        // at 14, 22 bytes total.
        let h = segment_header(0x1122_3344_5566_7788, 9);
        assert_eq!(h.len(), 22);
        assert_eq!(&h[0..4], b"SCQL");
        assert_eq!(u16::from_le_bytes([h[4], h[5]]), 1);
        assert_eq!(
            u64::from_le_bytes(h[6..14].try_into().unwrap()),
            0x1122_3344_5566_7788
        );
        assert_eq!(u64::from_le_bytes(h[14..22].try_into().unwrap()), 9);
        // …and it round-trips through the parser.
        let parsed = parse_segment_header(&h).unwrap();
        assert_eq!(
            parsed,
            SegmentHeader {
                salt: 0x1122_3344_5566_7788,
                seq: 9
            }
        );
        // Unknown versions and bad magic are named errors.
        let mut bumped = h;
        bumped[4] = 2;
        assert!(matches!(
            parse_segment_header(&bumped),
            Err(WalError::BadHeader { .. })
        ));
        let mut wrong = h;
        wrong[0] = b'X';
        assert!(matches!(
            parse_segment_header(&wrong),
            Err(WalError::BadHeader { .. })
        ));
    }

    #[test]
    fn truncate_seals_deletes_and_replay_resumes_past_the_snapshot() {
        let dir = tmpdir("truncate");
        let oracle;
        {
            let (wal, mut db) = Wal::open(&small_config(&dir), universe()).unwrap();
            churn(&wal, &mut db);
            wal.truncate(&db).unwrap();
            // Only the fresh (empty) segment and one snapshot remain.
            let (segs, snaps) = list_dir(&dir).unwrap();
            assert_eq!(segs.len(), 1);
            assert_eq!(snaps.len(), 1);
            assert_eq!(segs.keys().next(), snaps.keys().next());
            // Mutations after the truncation land in the new segment.
            let post = Request::Insert {
                coll: CollectionId(0),
                region: boxed(50.0),
            };
            apply_record(&mut db, &post).unwrap();
            wal.append_durable(&post).unwrap();
            oracle = db;
        }
        let (wal, recovered) = Wal::open(&small_config(&dir), universe()).unwrap();
        assert_eq!(state_bytes(&recovered), state_bytes(&oracle));
        // Replay covered only the post-truncation record.
        assert_eq!(wal.stats().replayed, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_is_loud() {
        let dir = tmpdir("badsnap");
        {
            let (wal, mut db) = Wal::open(&small_config(&dir), universe()).unwrap();
            churn(&wal, &mut db);
            wal.truncate(&db).unwrap();
        }
        let (_, snaps) = list_dir(&dir).unwrap();
        let path = snaps.values().next().unwrap();
        let mut bytes = fs::read(path).unwrap();
        // Garble the stream header: the codec must refuse, and the
        // refusal must surface as a named error, not an empty shard.
        bytes[0] ^= 0xFF;
        fs::write(path, &bytes).unwrap();
        match Wal::open(&small_config(&dir), universe()).map(|_| ()) {
            Err(WalError::BadSnapshot { .. }) => {}
            other => panic!("expected BadSnapshot, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_many_records_per_fsync() {
        let dir = tmpdir("batch");
        let mut cfg = small_config(&dir);
        // A wide window so the flusher cannot keep pace record-by-record.
        cfg.group_commit = Duration::from_millis(40);
        let (wal, _db) = Wal::open(&cfg, universe()).unwrap();
        let n = 200u64;
        let mut last = Ticket(0);
        for i in 0..n {
            last = wal
                .append(&Request::Insert {
                    coll: CollectionId(0),
                    region: boxed((i % 50) as f64),
                })
                .unwrap();
        }
        wal.wait_durable(last).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.appended, n);
        assert!(stats.fsync_batches >= 1);
        assert!(
            stats.fsync_batches < n,
            "group commit must batch: {n} records took {} fsyncs",
            stats.fsync_batches
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_covers_genesis_until_truncated_and_applies_cleanly() {
        let dir = tmpdir("export");
        let mut cfg = small_config(&dir);
        cfg.segment_cap = 120; // several segments
        let (wal, mut db) = Wal::open(&cfg, universe()).unwrap();
        churn(&wal, &mut db);
        let export = wal.export().unwrap();
        assert!(export.complete, "never-truncated log covers genesis");
        assert!(export.segments.len() > 1);
        let mut rebuilt = SpatialDatabase::new(universe());
        let applied = replay_export(&mut rebuilt, &export.segments).unwrap();
        assert_eq!(applied, sample_history().len() as u64);
        assert_eq!(state_bytes(&rebuilt), state_bytes(&db));
        // After truncation the head is gone: export must refuse.
        wal.truncate(&db).unwrap();
        let export = wal.export().unwrap();
        assert!(!export.complete);
        assert!(export.segments.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_export_is_rejected() {
        let dir = tmpdir("export-tamper");
        let (wal, mut db) = Wal::open(&small_config(&dir), universe()).unwrap();
        churn(&wal, &mut db);
        let export = wal.export().unwrap();
        // A garbled byte inside the export: loud, even though a live
        // log would have tolerated nothing less.
        let mut garbled = export.segments.clone();
        let last = garbled[0].len() - 1;
        garbled[0][last] ^= 0xFF;
        let mut target = SpatialDatabase::new(universe());
        assert!(matches!(
            replay_export(&mut target, &garbled),
            Err(WalError::CorruptRecord { .. })
        ));
        // A truncated final segment: exports carry no torn-tail grace.
        let mut cut = export.segments.clone();
        let keep = cut[0].len() - 3;
        cut[0].truncate(keep);
        let mut target = SpatialDatabase::new(universe());
        assert!(matches!(
            replay_export(&mut target, &cut),
            Err(WalError::CorruptRecord { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_mutations_are_not_loggable() {
        let dir = tmpdir("notloggable");
        let (wal, _db) = Wal::open(&small_config(&dir), universe()).unwrap();
        assert!(matches!(
            wal.append(&Request::Stat),
            Err(WalError::NotLoggable { .. })
        ));
        assert!(matches!(
            wal.append(&Request::Query {
                coll: CollectionId(0),
                kind: scq_engine::IndexKind::Scan,
                query: scq_bbox::CornerQuery::unconstrained(),
            }),
            Err(WalError::NotLoggable { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_rejected_when_log_and_state_disagree() {
        let dir = tmpdir("rejected");
        {
            let (wal, _db) = Wal::open(&small_config(&dir), universe()).unwrap();
            // Log an insert into a collection that was never created:
            // the database must refuse it on replay.
            wal.append_durable(&Request::Insert {
                coll: CollectionId(3),
                region: boxed(1.0),
            })
            .unwrap();
        }
        match Wal::open(&small_config(&dir), universe()).map(|_| ()) {
            Err(WalError::ReplayRejected { reason, .. }) => {
                assert!(reason.contains("unknown collection"), "{reason}")
            }
            other => panic!("expected ReplayRejected, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_snapshot_and_new_segment_recovers_clean() {
        // Simulate a truncation that crashed after the snapshot rename
        // but before anything else: delete every segment, keep the
        // snapshot. Recovery must come back with the snapshot state
        // and zero replay.
        let dir = tmpdir("midtruncate");
        let oracle;
        {
            let (wal, mut db) = Wal::open(&small_config(&dir), universe()).unwrap();
            churn(&wal, &mut db);
            wal.truncate(&db).unwrap();
            oracle = db;
        }
        let (segs, _) = list_dir(&dir).unwrap();
        for p in segs.values() {
            fs::remove_file(p).unwrap();
        }
        let (wal, recovered) = Wal::open(&small_config(&dir), universe()).unwrap();
        assert_eq!(state_bytes(&recovered), state_bytes(&oracle));
        assert_eq!(wal.stats().replayed, 0);
        // …and the log accepts appends again.
        wal.append_durable(&Request::Create {
            name: "more".into(),
        })
        .unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
