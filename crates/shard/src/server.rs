//! The shard server: one [`SpatialDatabase`] behind the wire protocol.
//!
//! This is what runs inside each shard **process** of a cluster
//! (`scq-serve --shard`). It knows nothing about siblings, routing or
//! global slots — it answers exactly the [`crate::ShardBackend`]
//! contract over TCP: mutations and compaction under a write lock,
//! corner queries and snapshot streaming under a read lock, so one
//! router connection and any number of diagnostic connections can work
//! concurrently.
//!
//! Connection handling is **thread-per-connection** behind a small
//! acceptor pool: router tiers keep a *pool* of long-lived connections
//! per shard (so their concurrent probes overlap on the wire), and a
//! fixed serve-to-completion worker pool would cap that concurrency at
//! the worker count — the connection past the cap would hang in the
//! accept backlog until its peer times out. Acceptors hand each
//! connection its own handler thread instead; connection count is
//! bounded in practice by the clients' pool sizes. Each connection
//! reads frames through a short receive timeout so
//! [`ShardServerHandle::shutdown`] never hangs on an idle peer, and
//! every decoded request gets exactly one response frame.
//! Framing-level poison — an oversized length prefix, a frame
//! that fails to decode — earns an error response and a closed
//! connection (the stream cannot be resynchronized); shard-level
//! failures (unknown collection, bad snapshot payload) are ordinary
//! [`Response::Err`]s and the connection lives on.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use scq_engine::{snapshot, CollectionId, SpatialDatabase};
use scq_region::AaBox;

use crate::wire::{
    decode_request, encode_response, frame, FrameReader, Request, Response, WIRE_VERSION,
};

/// Shard server configuration.
#[derive(Clone, Debug)]
pub struct ShardServerConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Acceptor threads sharing the listener. Each accepted connection
    /// gets its own handler thread, so this bounds accept throughput,
    /// not connection concurrency (see
    /// [`ShardServerConfig::max_connections`]).
    pub threads: usize,
    /// Hard cap on concurrently served connections: a connection
    /// accepted while this many handlers are live is closed
    /// immediately (its peer sees a transport failure, which router
    /// tiers degrade or retry). Bounds the thread-per-connection
    /// model against misbehaving or malicious peers; size it to the
    /// sum of your router tiers' pool sizes plus diagnostic headroom.
    pub max_connections: usize,
    /// The universe square side: the shard spans `[0, size]²`. Must
    /// match the router tier's universe or the cluster handshake's
    /// consistency checks will reject the shard.
    pub universe_size: f64,
}

impl Default for ShardServerConfig {
    fn default() -> Self {
        ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_connections: 64,
            universe_size: 1000.0,
        }
    }
}

/// A running shard server: bound address, acceptor pool and the live
/// connection handler threads.
pub struct ShardServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ShardServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks acceptors and connection handlers,
    /// and joins them all (handlers notice the stop flag at their next
    /// receive timeout).
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for _ in &self.acceptors {
            let _ = TcpStream::connect(self.addr);
        }
        for a in self.acceptors {
            let _ = a.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler registry"));
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// Starts a shard server: binds, spawns the acceptor pool, returns
/// immediately. Every accepted connection is served on its own thread
/// — a router tier's whole connection pool can be in flight against
/// this shard at once.
pub fn serve_shard(config: &ShardServerConfig) -> std::io::Result<ShardServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let universe = AaBox::new([0.0, 0.0], [config.universe_size, config.universe_size]);
    let db = Arc::new(RwLock::new(SpatialDatabase::new(universe)));
    let stop = Arc::new(AtomicBool::new(false));
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let max_connections = config.max_connections.max(1);
    let mut acceptors = Vec::new();
    for _ in 0..config.threads.max(1) {
        let listener = listener.try_clone()?;
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let handlers = Arc::clone(&handlers);
        acceptors.push(std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let mut registry = handlers.lock().expect("handler registry");
                // Reap finished handlers here so the registry tracks
                // *live* connections, not every connection ever
                // accepted — both for the cap below and so a
                // long-lived server's memory stays bounded.
                registry.retain(|h| !h.is_finished());
                if registry.len() >= max_connections {
                    // Over the cap: close immediately. The peer sees a
                    // transport failure and degrades or retries.
                    drop(stream);
                    continue;
                }
                let db = Arc::clone(&db);
                let stop = Arc::clone(&stop);
                registry.push(std::thread::spawn(move || {
                    serve_connection(stream, &db, &stop)
                }));
            }
        }));
    }
    Ok(ShardServerHandle {
        addr,
        stop,
        acceptors,
        handlers,
    })
}

/// What to do with the connection after answering a request.
enum After {
    KeepOpen,
    Close,
}

fn serve_connection(stream: TcpStream, db: &Arc<RwLock<SpatialDatabase<2>>>, stop: &AtomicBool) {
    // The receive timeout is the shutdown heartbeat: an idle or
    // mid-frame connection wakes up periodically, notices the stop
    // flag, and returns. FrameReader keeps partial bytes across
    // timeouts, so a slow sender's frame is never corrupted.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    let mut reader = FrameReader::new();
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut stream = stream;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain every complete frame before reading more bytes.
        loop {
            match reader.next_frame() {
                Ok(Some(payload)) => {
                    let (response, after) = match decode_request(&payload) {
                        Ok(req) => handle_request(db, req),
                        // An undecodable frame means the peer and we
                        // disagree about the protocol; answer once and
                        // hang up rather than guess at resync.
                        Err(e) => (Response::Err(format!("bad request: {e}")), After::Close),
                    };
                    if write_response(&mut writer, &response).is_err() {
                        return;
                    }
                    if matches!(after, After::Close) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing poison (oversized prefix): report, close.
                    let _ = write_response(&mut writer, &Response::Err(format!("bad frame: {e}")));
                    return;
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match std::io::Read::read(&mut stream, &mut chunk) {
            Ok(0) => return, // peer hung up (mid-frame or not, nothing to answer)
            Ok(n) => reader.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let framed = match frame(&encode_response(response)) {
        Ok(framed) => framed,
        // The only oversize response is a snapshot stream; refuse it
        // with a (small) error frame instead of poisoning the peer.
        Err(e) => frame(&encode_response(&Response::Err(format!(
            "response exceeds the frame cap: {e}"
        ))))
        .expect("the error frame is small"),
    };
    writer.write_all(&framed)?;
    writer.flush()
}

fn poisoned<T>(_: T) -> Response {
    Response::Err("shard lock poisoned".into())
}

/// Executes one decoded request against the shard database.
fn handle_request(db: &Arc<RwLock<SpatialDatabase<2>>>, req: Request) -> (Response, After) {
    let resp = match req {
        Request::Hello { version } => {
            if version != WIRE_VERSION {
                // A mismatched peer must not get garbage answers;
                // reject the handshake and close.
                return (
                    Response::Err(format!(
                        "wire version mismatch: shard speaks {WIRE_VERSION}, client speaks {version}"
                    )),
                    After::Close,
                );
            }
            Response::Hello {
                version: WIRE_VERSION,
            }
        }
        Request::Create { name } => {
            if name.len() > 255 {
                Response::Err(format!(
                    "collection name too long ({} > 255 bytes)",
                    name.len()
                ))
            } else {
                match db.write() {
                    Ok(mut d) => Response::Coll(d.collection(&name)),
                    Err(e) => poisoned(e),
                }
            }
        }
        Request::Insert { coll, region } => match db.write() {
            Ok(mut d) => match known(&d, coll) {
                Ok(()) => Response::Slot(d.insert(coll, region).index as u64),
                Err(e) => e,
            },
            Err(e) => poisoned(e),
        },
        Request::Remove { coll, local } => match db.write() {
            Ok(mut d) => match known_slot(&d, coll, local) {
                Ok(obj) => Response::Flag(d.remove(obj)),
                Err(e) => e,
            },
            Err(e) => poisoned(e),
        },
        Request::Update {
            coll,
            local,
            region,
        } => match db.write() {
            Ok(mut d) => match known_slot(&d, coll, local) {
                Ok(obj) => Response::Flag(d.update(obj, region)),
                Err(e) => e,
            },
            Err(e) => poisoned(e),
        },
        Request::Query { coll, kind, query } => match db.read() {
            Ok(d) => match known(&d, coll) {
                Ok(()) => {
                    let mut ids = Vec::new();
                    d.query_collection(coll, kind, &query, &mut ids);
                    Response::Ids(ids)
                }
                Err(e) => e,
            },
            Err(e) => poisoned(e),
        },
        Request::Stat => match db.read() {
            Ok(d) => Response::Stat(
                d.collections()
                    .map(|c| {
                        (
                            d.collection_name(c).to_owned(),
                            d.collection_len(c) as u64,
                            d.live_len(c) as u64,
                        )
                    })
                    .collect(),
            ),
            Err(e) => poisoned(e),
        },
        Request::Compact => match db.write() {
            Ok(mut d) => Response::from_compact(&d.compact()),
            Err(e) => poisoned(e),
        },
        Request::SnapshotSave => match db.read() {
            Ok(d) => Response::Bytes(snapshot::save(&d).to_vec()),
            Err(e) => poisoned(e),
        },
        Request::SnapshotLoad { stream } => match snapshot::load::<2>(&stream) {
            Ok(loaded) => match db.write() {
                Ok(mut d) => {
                    *d = loaded;
                    Response::Ok
                }
                Err(e) => poisoned(e),
            },
            Err(e) => Response::Err(format!("bad snapshot stream: {e}")),
        },
        Request::Check => match db.read() {
            Ok(d) => Response::Problems(scq_engine::integrity::check(&d).err().unwrap_or_default()),
            Err(e) => poisoned(e),
        },
        Request::Bye => return (Response::Ok, After::Close),
    };
    (resp, After::KeepOpen)
}

fn known(d: &SpatialDatabase<2>, coll: CollectionId) -> Result<(), Response> {
    if coll.0 < d.collections().count() {
        Ok(())
    } else {
        Err(Response::Err(format!("unknown collection id {}", coll.0)))
    }
}

fn known_slot(
    d: &SpatialDatabase<2>,
    coll: CollectionId,
    local: u64,
) -> Result<scq_engine::ObjectRef, Response> {
    known(d, coll)?;
    let index = local as usize;
    if index >= d.collection_len(coll) {
        return Err(Response::Err(format!(
            "slot {index} out of range (shard collection has {} slots)",
            d.collection_len(coll)
        )));
    }
    Ok(scq_engine::ObjectRef {
        collection: coll,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_request, read_frame, MAX_FRAME};
    use scq_region::Region;
    use std::io::Read;

    fn start() -> ShardServerHandle {
        serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .expect("bind shard server")
    }

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Response {
        stream
            .write_all(&frame(&encode_request(req)).unwrap())
            .unwrap();
        let payload = read_frame(stream).unwrap().expect("response frame");
        crate::wire::decode_response(&payload).unwrap()
    }

    fn hello(addr: SocketAddr) -> TcpStream {
        let mut s = TcpStream::connect(addr).unwrap();
        let resp = roundtrip(
            &mut s,
            &Request::Hello {
                version: WIRE_VERSION,
            },
        );
        assert_eq!(
            resp,
            Response::Hello {
                version: WIRE_VERSION
            }
        );
        s
    }

    #[test]
    fn scripted_session_over_real_sockets() {
        let server = start();
        let mut s = hello(server.addr());
        let coll = match roundtrip(
            &mut s,
            &Request::Create {
                name: "objs".into(),
            },
        ) {
            Response::Coll(c) => c,
            other => panic!("{other:?}"),
        };
        let region = Region::from_box(AaBox::new([1.0, 1.0], [5.0, 5.0]));
        assert_eq!(
            roundtrip(
                &mut s,
                &Request::Insert {
                    coll,
                    region: region.clone()
                }
            ),
            Response::Slot(0)
        );
        assert_eq!(
            roundtrip(
                &mut s,
                &Request::Query {
                    coll,
                    kind: scq_engine::IndexKind::RTree,
                    query: scq_bbox::CornerQuery::unconstrained()
                        .and_overlaps(&scq_bbox::Bbox::new([0.0, 0.0], [10.0, 10.0])),
                }
            ),
            Response::Ids(vec![0])
        );
        assert_eq!(
            roundtrip(&mut s, &Request::Remove { coll, local: 0 }),
            Response::Flag(true)
        );
        assert_eq!(
            roundtrip(&mut s, &Request::Remove { coll, local: 0 }),
            Response::Flag(false)
        );
        match roundtrip(&mut s, &Request::Compact) {
            Response::Remap { reclaimed, .. } => assert_eq!(reclaimed, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            roundtrip(&mut s, &Request::Check),
            Response::Problems(vec![])
        );
        assert_eq!(roundtrip(&mut s, &Request::Bye), Response::Ok);
        server.shutdown();
    }

    #[test]
    fn version_mismatch_is_rejected_and_closes() {
        let server = start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let resp = roundtrip(&mut s, &Request::Hello { version: 99 });
        match resp {
            Response::Err(m) => assert!(m.contains("version mismatch"), "{m}"),
            other => panic!("{other:?}"),
        }
        // the server hung up: the next read sees a clean close
        assert_eq!(read_frame(&mut s).unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn malformed_frames_error_and_close() {
        let server = start();
        // In-frame garbage: an unknown opcode.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&frame(&[0xEE, 1, 2, 3]).unwrap()).unwrap();
        match read_frame(&mut s).unwrap() {
            Some(payload) => match crate::wire::decode_response(&payload).unwrap() {
                Response::Err(m) => assert!(m.contains("bad request"), "{m}"),
                other => panic!("{other:?}"),
            },
            None => panic!("expected an error response before the close"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None, "connection closed");
        server.shutdown();
    }

    #[test]
    fn oversized_length_prefix_errors_and_closes() {
        let server = start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
            .unwrap();
        match read_frame(&mut s).unwrap() {
            Some(payload) => match crate::wire::decode_response(&payload).unwrap() {
                Response::Err(m) => assert!(m.contains("bad frame"), "{m}"),
                other => panic!("{other:?}"),
            },
            None => panic!("expected an error response before the close"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None, "connection closed");
        server.shutdown();
    }

    #[test]
    fn one_acceptor_serves_many_concurrent_long_lived_connections() {
        // Router tiers hold a POOL of long-lived connections per
        // shard. A serve-to-completion worker pool would wedge the
        // second connection behind the first until it closed; the
        // thread-per-connection server must interleave them freely,
        // even with a single acceptor.
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .unwrap();
        let mut a = hello(server.addr());
        let mut b = hello(server.addr()); // a is still open and idle
        assert_eq!(roundtrip(&mut b, &Request::Stat), Response::Stat(vec![]));
        assert_eq!(roundtrip(&mut a, &Request::Stat), Response::Stat(vec![]));
        // interleave once more in the other order
        assert_eq!(roundtrip(&mut a, &Request::Compact), {
            Response::Remap {
                reclaimed: 0,
                remap: vec![],
            }
        });
        assert_eq!(
            roundtrip(&mut b, &Request::Check),
            Response::Problems(vec![])
        );
        server.shutdown();
    }

    #[test]
    fn connections_over_the_cap_are_refused_and_slots_are_reclaimed() {
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            max_connections: 1,
            universe_size: 100.0,
        })
        .unwrap();
        // The first connection fills the cap…
        let mut a = hello(server.addr());
        // …so the second is closed before it gets a response.
        let mut b = TcpStream::connect(server.addr()).unwrap();
        let _ = b.write_all(
            &frame(&encode_request(&Request::Hello {
                version: WIRE_VERSION,
            }))
            .unwrap(),
        );
        match read_frame(&mut b) {
            Ok(None) | Err(_) => {} // closed, no protocol answer
            Ok(Some(p)) => panic!("over-cap connection was served: {p:?}"),
        }
        // The capped connection still works…
        assert_eq!(roundtrip(&mut a, &Request::Stat), Response::Stat(vec![]));
        // …and closing it frees the slot for a newcomer.
        assert_eq!(roundtrip(&mut a, &Request::Bye), Response::Ok);
        drop(a);
        // The handler may take a moment to wind down after Bye; the
        // accept-time reap then admits the new connection.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let ok = (|| {
                c.write_all(
                    &frame(&encode_request(&Request::Hello {
                        version: WIRE_VERSION,
                    }))
                    .ok()?,
                )
                .ok()?;
                match read_frame(&mut c) {
                    Ok(Some(payload)) => crate::wire::decode_response(&payload).ok(),
                    _ => None,
                }
            })();
            match ok {
                Some(Response::Hello { .. }) => break,
                _ if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                other => panic!("slot never freed: last answer {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn mid_stream_disconnect_leaves_the_server_serving() {
        let server = start();
        // A client that sends half a frame and vanishes…
        {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            let full = frame(&encode_request(&Request::Stat)).unwrap();
            s.write_all(&full[..full.len() - 2]).unwrap();
            // dropped here, mid-frame
        }
        // …must not wedge the worker: a fresh client gets served.
        let mut s = hello(server.addr());
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        server.shutdown();
    }

    #[test]
    fn unknown_collections_and_slots_are_ordinary_errors() {
        let server = start();
        let mut s = hello(server.addr());
        match roundtrip(
            &mut s,
            &Request::Insert {
                coll: CollectionId(7),
                region: Region::empty(),
            },
        ) {
            Response::Err(m) => assert!(m.contains("unknown collection"), "{m}"),
            other => panic!("{other:?}"),
        }
        // the connection survived the error
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        server.shutdown();
    }

    #[test]
    fn shutdown_returns_despite_idle_and_midframe_connections() {
        let server = start();
        let idle = TcpStream::connect(server.addr()).unwrap();
        let mut partial = TcpStream::connect(server.addr()).unwrap();
        partial.write_all(&[3, 0]).unwrap(); // half a length prefix
        std::thread::sleep(std::time::Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "shutdown must not hang"
        );
        drop(idle);
        let mut buf = [0u8; 8];
        let _ = partial.read(&mut buf);
    }
}
