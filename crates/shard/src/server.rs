//! The shard server: one [`SpatialDatabase`] behind the wire protocol.
//!
//! This is what runs inside each shard **process** of a cluster
//! (`scq-serve --shard`). It knows nothing about siblings, routing or
//! global slots — it answers exactly the [`crate::ShardBackend`]
//! contract over TCP: mutations and compaction under a write lock,
//! corner queries and snapshot streaming under a read lock, so one
//! router connection and any number of diagnostic connections can work
//! concurrently.
//!
//! Connection handling is a **readiness-driven event loop**: one loop
//! thread owns the (nonblocking) listener and every connection socket
//! through an epoll instance, assembles frames, and hands decoded-frame
//! work to a small worker pool ([`ShardServerConfig::threads`]) that
//! executes requests against the database. Workers push finished,
//! already-framed responses to a completion queue and wake the loop
//! through a self-pipe; the loop writes them out, parking partial
//! writes behind `EPOLLOUT`. Thousands of idle connections therefore
//! cost a file descriptor each, not a thread each.
//!
//! The handshake decides the connection's framing. Up to protocol v3 a
//! connection is strictly one-in-flight: one request frame, one
//! response frame, in order (the loop queues any pipelined frames and
//! releases them one at a time, so the old contract holds exactly). A
//! v4 handshake switches the connection to **mux framing**
//! ([`crate::wire::MUX_REQ`] and friends): every frame carries a
//! request id, any number of requests run concurrently across the
//! worker pool, responses complete out of order, and a response bigger
//! than [`STREAM_CHUNK`] streams back as `MUX_CHUNK…MUX_END` — the
//! 64 MiB frame cap stops being a cap on answers. `MUX_CANCEL` drops a
//! pending answer before it is written.
//!
//! Hello frames are handled inline on the loop thread: they are cheap,
//! and mux mode must flip before any later buffered frame is parsed.
//! Framing-level poison — an oversized length prefix, a frame that
//! fails to decode — earns an error response and a closed connection
//! (the stream cannot be resynchronized). On a mux connection a request
//! *body* that fails to decode is answered with an error under its id
//! and the connection lives on: the framing layer is intact and other
//! in-flight requests are unaffected. Shard-level failures (unknown
//! collection, bad snapshot payload) are ordinary [`Response::Err`]s
//! either way.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use epoll::{Epoll, Event, WakePipe, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use scq_engine::{snapshot, CollectionId, SpatialDatabase};
use scq_region::AaBox;

use crate::wal::{self, Wal, WalConfig, WalStats};
use crate::wire::{
    decode_mux, decode_request, encode_response, frame, split_response, FrameReader, Request,
    Response, MIN_WIRE_VERSION, MUX_CANCEL, MUX_MIN_VERSION, MUX_REQ, OP_HELLO, OP_METRICS,
    OP_TRACED, STREAM_CHUNK, WIRE_VERSION,
};

/// Shard server configuration.
#[derive(Clone, Debug)]
pub struct ShardServerConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads executing requests. The event loop handles all
    /// socket readiness on its own thread; this bounds how many
    /// requests *run* concurrently (and how many WAL group-commit
    /// waits can overlap), not how many connections are open or how
    /// many requests are in flight.
    pub threads: usize,
    /// Hard cap on concurrently open connections: a connection
    /// accepted while this many are live is closed immediately (its
    /// peer sees a transport failure, which router tiers degrade or
    /// retry). With multiplexing a router needs only a couple of
    /// connections per shard, so this bounds misbehaving or
    /// prehistoric peers, not legitimate concurrency.
    pub max_connections: usize,
    /// The universe square side: the shard spans `[0, size]²`. Must
    /// match the router tier's universe or the cluster handshake's
    /// consistency checks will reject the shard.
    pub universe_size: f64,
    /// Write-ahead log, when the shard should survive crashes: startup
    /// recovers the directory (newest snapshot + replay) instead of
    /// starting empty, and every mutation is acknowledged only once
    /// its log record is fsynced. `None` keeps the shard purely
    /// in-memory (the pre-WAL behavior).
    pub wal: Option<WalConfig>,
    /// Highest protocol version this server negotiates (clamped to
    /// [`MIN_WIRE_VERSION`]..=[`WIRE_VERSION`]). Defaults to
    /// [`WIRE_VERSION`]; set lower to rehearse a rolling upgrade — a
    /// v4 build answering at v3/v2 exactly as the old release did.
    pub wire_version: u16,
    /// Strict single-version mode: accept a handshake only at exactly
    /// [`ShardServerConfig::wire_version`] (no negotiation window, and
    /// the mismatch error names one version, not a range) and reject
    /// opcodes newer than it the way a real old release would —
    /// `strict` + `wire_version: 2` is a faithful v2 server for the
    /// protocol-conformance matrix.
    pub strict: bool,
}

impl Default for ShardServerConfig {
    fn default() -> Self {
        ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_connections: 64,
            universe_size: 1000.0,
            wal: None,
            wire_version: WIRE_VERSION,
            strict: false,
        }
    }
}

/// The shard a server drives: the database plus its optional log.
/// Mutations append under the database write lock (so log order is
/// apply order) and wait for durability after releasing it.
struct ShardState {
    db: RwLock<SpatialDatabase<2>>,
    wal: Option<Wal>,
    /// Shard-local instruments (`shard.<op>.latency` histograms plus
    /// the WAL's `wal.fsync.latency`), answered wholesale over
    /// [`Request::Metrics`] so the router can merge them into one
    /// cluster scrape.
    registry: scq_obs::Registry,
    /// Traces installed by [`Request::Traced`]: the shard-side span
    /// record of recently traced requests, for diagnostics.
    traces: scq_obs::TraceRing,
}

/// A running shard server: bound address, the event-loop thread and
/// its request worker pool.
pub struct ShardServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<ShardState>,
}

impl ShardServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// WAL counters, when the server keeps a log (`None` otherwise).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.state.wal.as_ref().map(Wal::stats)
    }

    /// A point-in-time snapshot of the shard's instruments — the same
    /// rows [`Request::Metrics`] answers over the wire.
    pub fn metrics(&self) -> scq_obs::Snapshot {
        self.state.registry.snapshot()
    }

    /// The shard-side trace a [`Request::Traced`] request recorded,
    /// newest match by ID.
    pub fn trace(&self, id: u64) -> Option<Arc<scq_obs::TraceState>> {
        self.state.traces.get(id)
    }

    /// Stops the event loop (closing every connection) and the worker
    /// pool, and joins them all. The loop notices the stop flag at its
    /// next wakeup — forced immediately through the wake pipe.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.wake();
        self.shared.work.ready.notify_all();
        let _ = self.event_loop.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// State shared between the event loop and the worker pool.
struct Shared {
    state: Arc<ShardState>,
    work: WorkQueue,
    /// Finished responses, already framed, awaiting delivery by the
    /// loop thread.
    done: Mutex<Vec<Completion>>,
    wake: Arc<WakePipe>,
    stop: Arc<AtomicBool>,
    /// Negotiation ceiling (see [`ShardServerConfig::wire_version`]).
    wire_version: u16,
    strict: bool,
}

struct WorkQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

/// One decoded frame's worth of work for the pool.
struct Job {
    /// The connection the answer goes back to.
    token: u64,
    /// Encoded request bytes (the mux body on a mux connection).
    payload: Vec<u8>,
    /// The request id on a mux connection; `None` on a legacy one.
    mux_id: Option<u64>,
}

/// A finished response on its way back through the loop thread.
struct Completion {
    token: u64,
    mux_id: Option<u64>,
    /// Framed bytes ready for the socket (possibly several frames: a
    /// chunked stream).
    bytes: Vec<u8>,
    /// Close the connection once these bytes flush.
    close: bool,
}

/// Starts a shard server: binds, spawns the event loop and worker
/// pool, returns immediately.
pub fn serve_shard(config: &ShardServerConfig) -> std::io::Result<ShardServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let universe = AaBox::new([0.0, 0.0], [config.universe_size, config.universe_size]);
    // With a WAL, startup *is* recovery: the database the connections
    // see is the newest snapshot plus every durable record past it. A
    // log that fails recovery refuses to serve — better no shard than
    // a shard silently missing acknowledged history.
    let (wal, db) = match &config.wal {
        Some(wal_config) => {
            let (wal, db) = Wal::open(wal_config, universe)
                .map_err(|e| std::io::Error::other(format!("wal recovery failed: {e}")))?;
            (Some(wal), db)
        }
        None => (None, SpatialDatabase::new(universe)),
    };
    let registry = scq_obs::Registry::new();
    if let Some(wal) = &wal {
        // The histogram handle shares cells with the live log: every
        // group-commit fsync lands in scrapes with no polling.
        registry.register_histogram("wal.fsync.latency", wal.fsync_latency());
    }
    let state = Arc::new(ShardState {
        db: RwLock::new(db),
        wal,
        registry,
        traces: scq_obs::TraceRing::new(64),
    });
    let epoll = Epoll::new()?;
    let wake = Arc::new(WakePipe::new()?);
    epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(wake.read_fd(), EPOLLIN, TOKEN_WAKE)?;
    let shared = Arc::new(Shared {
        state: Arc::clone(&state),
        work: WorkQueue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        },
        done: Mutex::new(Vec::new()),
        wake,
        stop: Arc::new(AtomicBool::new(false)),
        wire_version: config.wire_version.clamp(MIN_WIRE_VERSION, WIRE_VERSION),
        strict: config.strict,
    });
    let mut workers = Vec::new();
    for _ in 0..config.threads.max(1) {
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    let max_connections = config.max_connections.max(1);
    let loop_shared = Arc::clone(&shared);
    let event_loop =
        std::thread::spawn(move || event_loop(listener, epoll, loop_shared, max_connections));
    Ok(ShardServerHandle {
        addr,
        shared,
        event_loop,
        workers,
        state,
    })
}

/// What to do with the connection after answering a request.
enum After {
    KeepOpen,
    Close,
}

// ── the event loop ──────────────────────────────────────────────────────

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Outbound bytes with a write cursor, so partially-flushed buffers
/// never shift their remaining bytes (a chunked stream can be tens of
/// megabytes deep while the socket drains at its own pace).
#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    fn push(&mut self, bytes: &[u8]) {
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn unwritten(&self) -> &[u8] {
        &self.buf[self.pos.min(self.buf.len())..]
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
    }
}

/// One connection's loop-side state.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    out: OutBuf,
    /// Negotiated version; 0 until a Hello lands (legacy framing).
    version: u16,
    /// Mux framing active (negotiated ≥ [`MUX_MIN_VERSION`]).
    mux: bool,
    /// Legacy: a request is executing; later frames wait in `pending`
    /// so one-request-one-response ordering holds exactly.
    busy: bool,
    pending: VecDeque<Vec<u8>>,
    /// Mux: ids queued or executing.
    in_flight: HashSet<u64>,
    /// Mux: in-flight ids whose answers must be discarded (cancelled).
    cancelled: HashSet<u64>,
    /// Close once `out` drains; stop consuming inbound frames.
    closing: bool,
    /// `EPOLLOUT` currently registered.
    wants_out: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(),
            out: OutBuf::default(),
            version: 0,
            mux: false,
            busy: false,
            pending: VecDeque::new(),
            in_flight: HashSet::new(),
            cancelled: HashSet::new(),
            closing: false,
            wants_out: false,
        }
    }
}

fn event_loop(listener: TcpListener, epoll: Epoll, shared: Arc<Shared>, max_connections: usize) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = [Event::new(0, 0); 64];
    loop {
        // The timeout is the shutdown heartbeat; the wake pipe makes
        // completions (and shutdown itself) immediate, not 100ms late.
        let n = epoll.wait(100, &mut events).unwrap_or(0);
        if shared.stop.load(Ordering::SeqCst) {
            // Dropping the map closes every socket.
            return;
        }
        for ev in &events[..n] {
            match ev.token() {
                TOKEN_LISTENER => accept_ready(
                    &listener,
                    &epoll,
                    &mut conns,
                    &mut next_token,
                    max_connections,
                ),
                TOKEN_WAKE => shared.wake.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue; // already closed earlier in this batch
                    };
                    if ev.events() & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
                        && !read_ready(conn, token, &shared)
                    {
                        conns.remove(&token);
                    }
                    // EPOLLOUT needs no per-event work: the flush pass
                    // below writes every connection with queued bytes.
                }
            }
        }
        for done in std::mem::take(&mut *shared.done.lock().expect("completion queue")) {
            deliver(&mut conns, &shared, done);
        }
        // Flush pass: write what the sockets will take, keep EPOLLOUT
        // registered exactly while bytes are queued, reap dead conns.
        conns.retain(|&token, conn| {
            if !flush(conn) {
                return false;
            }
            let want = !conn.out.is_empty();
            if want != conn.wants_out {
                let interest = EPOLLIN | EPOLLRDHUP | (if want { EPOLLOUT } else { 0 });
                if epoll
                    .modify(conn.stream.as_raw_fd(), interest, token)
                    .is_err()
                {
                    return false;
                }
                conn.wants_out = want;
            }
            true
        });
    }
}

fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    max_connections: usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if conns.len() >= max_connections {
                    // Over the cap: close immediately. The peer sees a
                    // transport failure and degrades or retries.
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                if epoll
                    .add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                    .is_err()
                {
                    continue;
                }
                conns.insert(token, Conn::new(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Reads everything the socket has, assembling and dispatching frames.
/// Returns `false` when the connection is dead and must be dropped.
fn read_ready(conn: &mut Conn, token: u64, shared: &Shared) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if conn.closing {
            // Answered a fatal error; ignore further input, just flush.
            return true;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => return false, // peer hung up; nothing to answer
            Ok(n) => {
                conn.reader.push(&chunk[..n]);
                if !dispatch_frames(conn, token, shared) {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

fn dispatch_frames(conn: &mut Conn, token: u64, shared: &Shared) -> bool {
    while !conn.closing {
        match conn.reader.next_frame() {
            Ok(Some(payload)) => dispatch_payload(conn, token, shared, payload),
            Ok(None) => break,
            Err(e) => {
                // Framing poison (oversized prefix): report, close.
                conn.out
                    .push(&frame_legacy(&Response::Err(format!("bad frame: {e}"))));
                conn.closing = true;
            }
        }
    }
    true
}

fn dispatch_payload(conn: &mut Conn, token: u64, shared: &Shared, payload: Vec<u8>) {
    if conn.mux {
        match decode_mux(&payload) {
            Ok(f) if f.kind == MUX_REQ => {
                conn.in_flight.insert(f.id);
                enqueue(
                    shared,
                    Job {
                        token,
                        payload: f.body,
                        mux_id: Some(f.id),
                    },
                );
            }
            Ok(f) if f.kind == MUX_CANCEL => {
                // Only ids actually pending can be cancelled; anything
                // else already completed (or never existed) and the
                // cancel is a no-op, not state to keep forever.
                if conn.in_flight.contains(&f.id) {
                    conn.cancelled.insert(f.id);
                }
            }
            Ok(f) => {
                // A response-direction kind from a client: desync.
                conn.out.push(&frame_legacy(&Response::Err(format!(
                    "bad request: unexpected mux kind {:#04x} from a client",
                    f.kind
                ))));
                conn.closing = true;
            }
            Err(e) => {
                // Un-muxed bytes on a muxed connection cannot be
                // resynchronized; answer once and hang up.
                conn.out
                    .push(&frame_legacy(&Response::Err(format!("bad request: {e}"))));
                conn.closing = true;
            }
        }
    } else if conn.busy {
        conn.pending.push_back(payload);
    } else {
        start_legacy(conn, token, shared, payload);
    }
}

/// Starts one legacy (one-in-flight) payload: Hello and strict-mode
/// refusals inline on the loop thread, everything else to the pool.
fn start_legacy(conn: &mut Conn, token: u64, shared: &Shared, payload: Vec<u8>) {
    if payload.first() == Some(&OP_HELLO) {
        handle_hello(conn, shared, &payload);
        return;
    }
    if shared.strict
        && shared.wire_version < crate::wire::TRACED_MIN_VERSION
        && matches!(payload.first(), Some(&(OP_TRACED | OP_METRICS)))
    {
        // A real v2 release has no decoder for these opcodes: it
        // answers "bad request" and hangs up. Emulate it exactly.
        let op = payload[0];
        conn.out.push(&frame_legacy(&Response::Err(format!(
            "bad request: unknown opcode {op:#04x}"
        ))));
        conn.closing = true;
        return;
    }
    conn.busy = true;
    enqueue(
        shared,
        Job {
            token,
            payload,
            mux_id: None,
        },
    );
}

/// The handshake, inline on the loop thread: cheap, and the connection
/// must flip to mux framing before any later buffered frame is parsed.
fn handle_hello(conn: &mut Conn, shared: &Shared, payload: &[u8]) {
    let started = std::time::Instant::now();
    let cap = shared.wire_version;
    let resp = match decode_request(payload) {
        Ok(Request::Hello { version }) => {
            let ok = if shared.strict {
                version == cap
            } else {
                (MIN_WIRE_VERSION..=cap).contains(&version)
            };
            if ok {
                // Answer the client's version: it is the highest both
                // sides speak, so an old client keeps its old protocol.
                conn.version = version;
                conn.mux = version >= MUX_MIN_VERSION;
                Response::Hello { version }
            } else {
                // A peer outside the window we can speak must not get
                // garbage answers; reject the handshake and close. A
                // strict server names its one version (no window — old
                // releases had no negotiation range to advertise).
                conn.closing = true;
                if shared.strict {
                    Response::Err(format!(
                        "wire version mismatch: shard speaks {cap}, client speaks {version}"
                    ))
                } else {
                    Response::Err(format!(
                        "wire version mismatch: shard speaks {MIN_WIRE_VERSION}..={cap}, client speaks {version}"
                    ))
                }
            }
        }
        Ok(_) | Err(_) => {
            conn.closing = true;
            Response::Err("bad request: malformed handshake".into())
        }
    };
    shared
        .state
        .registry
        .histogram("shard.hello.latency")
        .observe(started.elapsed());
    conn.out.push(&frame_legacy(&resp));
}

fn enqueue(shared: &Shared, job: Job) {
    shared.work.jobs.lock().expect("work queue").push_back(job);
    shared.work.ready.notify_one();
}

/// Hands one finished response to its connection and, on a legacy
/// connection, releases the next queued frame to the pool.
fn deliver(conns: &mut HashMap<u64, Conn>, shared: &Shared, done: Completion) {
    let Some(conn) = conns.get_mut(&done.token) else {
        return; // connection died while the request ran
    };
    match done.mux_id {
        Some(id) => {
            conn.in_flight.remove(&id);
            if !conn.cancelled.remove(&id) {
                conn.out.push(&done.bytes);
            }
            if done.close {
                conn.closing = true;
            }
        }
        None => {
            conn.out.push(&done.bytes);
            if done.close {
                conn.closing = true;
                conn.pending.clear();
            } else {
                conn.busy = false;
                while !conn.busy && !conn.closing {
                    let Some(next) = conn.pending.pop_front() else {
                        break;
                    };
                    start_legacy(conn, done.token, shared, next);
                }
            }
        }
    }
}

/// Writes what the socket will take. Returns `false` when the
/// connection is finished (dead socket, or `closing` fully flushed).
fn flush(conn: &mut Conn) -> bool {
    while !conn.out.is_empty() {
        match conn.stream.write(conn.out.unwritten()) {
            Ok(0) => return false,
            Ok(n) => conn.out.consume(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    !(conn.closing && conn.out.is_empty())
}

// ── the worker pool ─────────────────────────────────────────────────────

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut jobs = shared.work.jobs.lock().expect("work queue");
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                // The timeout is a belt-and-braces stop check; the
                // shutdown notify_all makes exit immediate.
                let (guard, _) = shared
                    .work
                    .ready
                    .wait_timeout(jobs, Duration::from_millis(100))
                    .expect("work queue");
                jobs = guard;
            }
        };
        let done = execute(&shared.state, job);
        shared.done.lock().expect("completion queue").push(done);
        shared.wake.wake();
    }
}

/// Decodes, executes and frames one request on a worker thread.
fn execute(state: &ShardState, job: Job) -> Completion {
    let (response, after) = match decode_request(&job.payload) {
        Ok(req) => {
            let op = op_name(&req);
            let started = std::time::Instant::now();
            let out = handle_request(state, req);
            state
                .registry
                .histogram(&format!("shard.{op}.latency"))
                .observe(started.elapsed());
            out
        }
        // An undecodable legacy frame means the peer and we disagree
        // about the protocol; answer once and hang up rather than
        // guess at resync. On a mux connection the *framing* is intact
        // — only this request's body is garbage — so the error answers
        // under its id and every other in-flight request proceeds.
        Err(e) => (
            Response::Err(format!("bad request: {e}")),
            if job.mux_id.is_some() {
                After::KeepOpen
            } else {
                After::Close
            },
        ),
    };
    let bytes = match job.mux_id {
        None => frame_legacy(&response),
        Some(id) => frame_mux(id, &response),
    };
    Completion {
        token: job.token,
        mux_id: job.mux_id,
        bytes,
        close: matches!(after, After::Close),
    }
}

/// Frames a legacy (un-muxed) response. The only oversize response is
/// a snapshot stream; a legacy peer gets a (small) error frame instead
/// of a poisoned connection — streaming needs a v4 handshake.
fn frame_legacy(response: &Response) -> Vec<u8> {
    match frame(&encode_response(response)) {
        Ok(framed) => framed,
        Err(e) => frame(&encode_response(&Response::Err(format!(
            "response exceeds the frame cap: {e}"
        ))))
        .expect("the error frame is small"),
    }
}

/// Frames a mux response: one `MUX_RESP` frame, or a `MUX_CHUNK…END`
/// stream when the response outgrows [`STREAM_CHUNK`] — this is where
/// the old 64 MiB answer cap dies.
fn frame_mux(id: u64, response: &Response) -> Vec<u8> {
    let encoded = encode_response(response);
    let mut out = Vec::with_capacity(encoded.len() + 64);
    for payload in split_response(id, &encoded, STREAM_CHUNK) {
        out.extend_from_slice(&frame(&payload).expect("chunks fit under the frame cap"));
    }
    out
}

fn poisoned<T>(_: T) -> Response {
    Response::Err("shard lock poisoned".into())
}

/// Runs one mutation under the write lock and, when the shard keeps a
/// WAL, acknowledges it only once its record is durable. The append
/// happens **while still holding the lock** — log order is exactly
/// apply order — and the fsync wait happens after releasing it, so a
/// group-commit window never blocks readers or other writers.
fn mutate<F>(state: &ShardState, req: &Request, op: F) -> Response
where
    F: FnOnce(&mut SpatialDatabase<2>) -> Response,
{
    let mut d = match state.db.write() {
        Ok(d) => d,
        Err(e) => return poisoned(e),
    };
    let resp = op(&mut d);
    if matches!(resp, Response::Err(_)) {
        // The mutation was refused: nothing changed, nothing to log.
        return resp;
    }
    let ticket = match &state.wal {
        Some(wal) => match wal.append(req) {
            Ok(t) => Some(t),
            // The mutation applied in memory but could not be logged:
            // fail the request (the client must not treat it as
            // committed). The next recovery rebuilds without it.
            Err(e) => return Response::Err(format!("wal append failed: {e}")),
        },
        None => None,
    };
    drop(d);
    if let Some(ticket) = ticket {
        let wal = state.wal.as_ref().expect("ticket implies wal");
        if let Err(e) = wal.wait_durable(ticket) {
            return Response::Err(format!("wal not durable: {e}"));
        }
    }
    resp
}

/// The request's flat name, for per-op latency instruments. A traced
/// request reports as its inner op — the wrapper is plumbing, not work.
fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Hello { .. } => "hello",
        Request::Create { .. } => "create",
        Request::Insert { .. } => "insert",
        Request::Remove { .. } => "remove",
        Request::Update { .. } => "update",
        Request::Query { .. } => "query",
        Request::Stat => "stat",
        Request::Compact => "compact",
        Request::SnapshotSave => "snapshot_save",
        Request::SnapshotRead => "snapshot_read",
        Request::SnapshotLoad { .. } => "snapshot_load",
        Request::Check => "check",
        Request::WalStat => "wal_stat",
        Request::WalExport => "wal_export",
        Request::WalApply { .. } => "wal_apply",
        Request::Metrics => "metrics",
        Request::Epochs => "epochs",
        Request::Traced { inner, .. } => op_name(inner),
        Request::Bye => "bye",
    }
}

/// Executes one decoded request against the shard database.
fn handle_request(state: &ShardState, req: Request) -> (Response, After) {
    // Unwrap tracing before the main dispatch so the inner request is
    // handled — and WAL-logged — as itself. The router's trace ID rides
    // the frame header; installing a shard-side trace under it means
    // spans recorded here land in the shard's ring under the same ID
    // the client saw.
    if let Request::Traced { trace_id, inner } = req {
        let trace = scq_obs::TraceState::new(trace_id);
        let out = {
            let _guard = trace.install();
            let _span = scq_obs::span("shard.handle", format!("op={}", op_name(&inner)));
            handle_request(state, *inner)
        };
        state.traces.push(trace);
        return out;
    }
    let db = &state.db;
    let resp = match &req {
        Request::Hello { version } => {
            let version = *version;
            if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
                // A peer outside the window we can speak must not get
                // garbage answers; reject the handshake and close.
                return (
                    Response::Err(format!(
                        "wire version mismatch: shard speaks {MIN_WIRE_VERSION}..={WIRE_VERSION}, client speaks {version}"
                    )),
                    After::Close,
                );
            }
            // Answer the client's version: it is the highest both
            // sides speak, so an old client keeps its old protocol.
            Response::Hello { version }
        }
        Request::Create { name } => {
            if name.len() > 255 {
                Response::Err(format!(
                    "collection name too long ({} > 255 bytes)",
                    name.len()
                ))
            } else {
                mutate(state, &req, |d| Response::Coll(d.collection(name)))
            }
        }
        Request::Insert { coll, region } => mutate(state, &req, |d| match known(d, *coll) {
            Ok(()) => Response::Slot(d.insert(*coll, region.clone()).index as u64),
            Err(e) => e,
        }),
        Request::Remove { coll, local } => {
            mutate(state, &req, |d| match known_slot(d, *coll, *local) {
                Ok(obj) => Response::Flag(d.remove(obj)),
                Err(e) => e,
            })
        }
        Request::Update {
            coll,
            local,
            region,
        } => mutate(state, &req, |d| match known_slot(d, *coll, *local) {
            Ok(obj) => Response::Flag(d.update(obj, region.clone())),
            Err(e) => e,
        }),
        Request::Query { coll, kind, query } => match db.read() {
            Ok(d) => match known(&d, *coll) {
                Ok(()) => {
                    let mut ids = Vec::new();
                    d.query_collection(*coll, *kind, query, &mut ids);
                    Response::Ids(ids)
                }
                Err(e) => e,
            },
            Err(e) => poisoned(e),
        },
        Request::Stat => match db.read() {
            Ok(d) => Response::Stat(
                d.collections()
                    .map(|c| {
                        (
                            d.collection_name(c).to_owned(),
                            d.collection_len(c) as u64,
                            d.live_len(c) as u64,
                        )
                    })
                    .collect(),
            ),
            Err(e) => poisoned(e),
        },
        // Epochs answer in collection-id order so the mirror can match
        // them positionally against its own collection table.
        Request::Epochs => match db.read() {
            Ok(d) => Response::Ids(d.collections().map(|c| d.epoch(c)).collect()),
            Err(e) => poisoned(e),
        },
        // Compaction is a logged mutation: its remap is deterministic
        // in the state it runs on, so replay reproduces the exact slot
        // layout the answers after it were built on.
        Request::Compact => mutate(state, &req, |d| Response::from_compact(&d.compact())),
        Request::SnapshotSave => match db.read() {
            Ok(d) => {
                let bytes = snapshot::save(&d).to_vec();
                // The read lock excludes writers, so the stream and
                // the truncation snapshot describe the same state:
                // SNAPSHOT SAVE *is* the log-truncation point.
                if let Some(wal) = &state.wal {
                    if let Err(e) = wal.truncate(&d) {
                        return (
                            Response::Err(format!("wal truncation failed: {e}")),
                            After::KeepOpen,
                        );
                    }
                }
                Response::Bytes(bytes)
            }
            Err(e) => poisoned(e),
        },
        // The read-only stream: same bytes, no truncation — reading a
        // shard's state must never seal its log.
        Request::SnapshotRead => match db.read() {
            Ok(d) => Response::Bytes(snapshot::save(&d).to_vec()),
            Err(e) => poisoned(e),
        },
        Request::SnapshotLoad { stream } => match snapshot::load::<2>(stream) {
            Ok(loaded) => match db.write() {
                Ok(mut d) => {
                    *d = loaded;
                    // The load rewrote history wholesale; the old log
                    // no longer describes this state. Truncating seals
                    // it behind a snapshot of the loaded state.
                    if let Some(wal) = &state.wal {
                        if let Err(e) = wal.truncate(&d) {
                            return (
                                Response::Err(format!("wal truncation failed: {e}")),
                                After::KeepOpen,
                            );
                        }
                    }
                    Response::Ok
                }
                Err(e) => poisoned(e),
            },
            Err(e) => Response::Err(format!("bad snapshot stream: {e}")),
        },
        Request::Check => match db.read() {
            Ok(d) => Response::Problems(scq_engine::integrity::check(&d).err().unwrap_or_default()),
            Err(e) => poisoned(e),
        },
        Request::WalStat => match &state.wal {
            Some(wal) => Response::WalStat(wal.stats()),
            None => Response::Err("wal not enabled on this shard".into()),
        },
        Request::WalExport => match &state.wal {
            // The read lock excludes mutations (and their appends), so
            // the export is a consistent cut of the log.
            Some(wal) => match db.read() {
                Ok(_guard) => match wal.export() {
                    Ok(export) => Response::WalSegments {
                        complete: export.complete,
                        segments: export.segments,
                    },
                    Err(e) => Response::Err(format!("wal export failed: {e}")),
                },
                Err(e) => poisoned(e),
            },
            None => Response::Err("wal not enabled on this shard".into()),
        },
        Request::WalApply { segments } => match db.write() {
            Ok(mut d) => {
                if d.collections().count() != 0 {
                    Response::Err("wal apply requires a pristine shard".into())
                } else {
                    // Replay into a copy of the pristine state so a
                    // bad export leaves the shard untouched.
                    match snapshot::load::<2>(&snapshot::save(&d)) {
                        Ok(mut scratch) => match wal::replay_export(&mut scratch, segments) {
                            Ok(applied) => {
                                *d = scratch;
                                if let Some(wal) = &state.wal {
                                    // The applied records were never
                                    // appended to *our* log; a snapshot
                                    // truncation makes them durable.
                                    if let Err(e) = wal.truncate(&d) {
                                        return (
                                            Response::Err(format!("wal truncation failed: {e}")),
                                            After::KeepOpen,
                                        );
                                    }
                                }
                                Response::Applied(applied)
                            }
                            Err(e) => Response::Err(format!("wal apply failed: {e}")),
                        },
                        Err(e) => Response::Err(format!("wal apply failed: {e}")),
                    }
                }
            }
            Err(e) => poisoned(e),
        },
        Request::Metrics => Response::Metrics(state.registry.snapshot()),
        // Handled above, before the dispatch; decode rejects nesting.
        Request::Traced { .. } => Response::Err("nested Traced request".into()),
        Request::Bye => return (Response::Ok, After::Close),
    };
    (resp, After::KeepOpen)
}

fn known(d: &SpatialDatabase<2>, coll: CollectionId) -> Result<(), Response> {
    if coll.0 < d.collections().count() {
        Ok(())
    } else {
        Err(Response::Err(format!("unknown collection id {}", coll.0)))
    }
}

fn known_slot(
    d: &SpatialDatabase<2>,
    coll: CollectionId,
    local: u64,
) -> Result<scq_engine::ObjectRef, Response> {
    known(d, coll)?;
    let index = local as usize;
    if index >= d.collection_len(coll) {
        return Err(Response::Err(format!(
            "slot {index} out of range (shard collection has {} slots)",
            d.collection_len(coll)
        )));
    }
    Ok(scq_engine::ObjectRef {
        collection: coll,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_request, read_frame, MAX_FRAME};
    use scq_region::Region;
    use std::io::Read;

    fn start() -> ShardServerHandle {
        serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .expect("bind shard server")
    }

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Response {
        stream
            .write_all(&frame(&encode_request(req)).unwrap())
            .unwrap();
        let payload = read_frame(stream).unwrap().expect("response frame");
        crate::wire::decode_response(&payload).unwrap()
    }

    /// Handshakes at v3: the newest **legacy** (one-in-flight, plain
    /// frames) protocol, which is what `roundtrip` speaks. A v4
    /// handshake flips the connection to mux framing — covered by the
    /// dedicated mux tests below.
    fn hello(addr: SocketAddr) -> TcpStream {
        let mut s = TcpStream::connect(addr).unwrap();
        let resp = roundtrip(
            &mut s,
            &Request::Hello {
                version: crate::wire::TRACED_MIN_VERSION,
            },
        );
        assert_eq!(
            resp,
            Response::Hello {
                version: crate::wire::TRACED_MIN_VERSION
            }
        );
        s
    }

    #[test]
    fn scripted_session_over_real_sockets() {
        let server = start();
        let mut s = hello(server.addr());
        let coll = match roundtrip(
            &mut s,
            &Request::Create {
                name: "objs".into(),
            },
        ) {
            Response::Coll(c) => c,
            other => panic!("{other:?}"),
        };
        let region = Region::from_box(AaBox::new([1.0, 1.0], [5.0, 5.0]));
        assert_eq!(
            roundtrip(
                &mut s,
                &Request::Insert {
                    coll,
                    region: region.clone()
                }
            ),
            Response::Slot(0)
        );
        assert_eq!(
            roundtrip(
                &mut s,
                &Request::Query {
                    coll,
                    kind: scq_engine::IndexKind::RTree,
                    query: scq_bbox::CornerQuery::unconstrained()
                        .and_overlaps(&scq_bbox::Bbox::new([0.0, 0.0], [10.0, 10.0])),
                }
            ),
            Response::Ids(vec![0])
        );
        assert_eq!(
            roundtrip(&mut s, &Request::Remove { coll, local: 0 }),
            Response::Flag(true)
        );
        assert_eq!(
            roundtrip(&mut s, &Request::Remove { coll, local: 0 }),
            Response::Flag(false)
        );
        match roundtrip(&mut s, &Request::Compact) {
            Response::Remap { reclaimed, .. } => assert_eq!(reclaimed, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            roundtrip(&mut s, &Request::Check),
            Response::Problems(vec![])
        );
        assert_eq!(roundtrip(&mut s, &Request::Bye), Response::Ok);
        server.shutdown();
    }

    #[test]
    fn version_mismatch_is_rejected_and_closes() {
        let server = start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let resp = roundtrip(&mut s, &Request::Hello { version: 99 });
        match resp {
            Response::Err(m) => assert!(m.contains("version mismatch"), "{m}"),
            other => panic!("{other:?}"),
        }
        // the server hung up: the next read sees a clean close
        assert_eq!(read_frame(&mut s).unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn older_supported_version_negotiates_down() {
        let server = start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // A v2 peer (the previous release) must be answered at v2, not
        // rejected and not upgraded past what it speaks.
        let resp = roundtrip(
            &mut s,
            &Request::Hello {
                version: MIN_WIRE_VERSION,
            },
        );
        assert_eq!(
            resp,
            Response::Hello {
                version: MIN_WIRE_VERSION
            }
        );
        // The connection stays serviceable after the downgrade.
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        server.shutdown();
    }

    #[test]
    fn versions_below_the_window_are_rejected() {
        let server = start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let resp = roundtrip(&mut s, &Request::Hello { version: 1 });
        match resp {
            Response::Err(m) => assert!(m.contains("version mismatch"), "{m}"),
            other => panic!("{other:?}"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn metrics_reports_per_op_latency_histograms() {
        let server = start();
        let mut s = hello(server.addr());
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        let snap = match roundtrip(&mut s, &Request::Metrics) {
            Response::Metrics(snap) => snap,
            other => panic!("{other:?}"),
        };
        // The hello and stat already served must have landed in their
        // per-op histograms; the metrics request itself is observed
        // only after its response is built, so it may not appear yet.
        for op in ["hello", "stat"] {
            let h = snap
                .histogram(&format!("shard.{op}.latency"))
                .unwrap_or_else(|| panic!("missing shard.{op}.latency"));
            assert_eq!(h.count(), 1, "one {op} was served");
        }
        server.shutdown();
    }

    #[test]
    fn epochs_answer_in_collection_id_order_and_track_mutations() {
        let server = start();
        let mut s = hello(server.addr());
        assert_eq!(roundtrip(&mut s, &Request::Epochs), Response::Ids(vec![]));
        let towns = match roundtrip(
            &mut s,
            &Request::Create {
                name: "towns".into(),
            },
        ) {
            Response::Coll(id) => id,
            other => panic!("{other:?}"),
        };
        match roundtrip(
            &mut s,
            &Request::Create {
                name: "roads".into(),
            },
        ) {
            Response::Coll(_) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(
            roundtrip(&mut s, &Request::Epochs),
            Response::Ids(vec![0, 0])
        );
        let region = Region::from_box(scq_region::AaBox::new([1.0, 1.0], [2.0, 2.0]));
        match roundtrip(
            &mut s,
            &Request::Insert {
                coll: towns,
                region,
            },
        ) {
            Response::Slot(_) => {}
            other => panic!("{other:?}"),
        }
        // Only the mutated collection's epoch advanced.
        assert_eq!(
            roundtrip(&mut s, &Request::Epochs),
            Response::Ids(vec![1, 0])
        );
        server.shutdown();
    }

    #[test]
    fn traced_requests_answer_as_the_inner_op_and_record_a_span() {
        let server = start();
        let mut s = hello(server.addr());
        let resp = roundtrip(
            &mut s,
            &Request::Traced {
                trace_id: 42,
                inner: Box::new(Request::Stat),
            },
        );
        assert_eq!(resp, Response::Stat(vec![]));
        let trace = server.trace(42).expect("shard kept the trace");
        let spans = trace.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "shard.handle");
        assert_eq!(spans[0].detail, "op=stat");
        assert!(server.trace(7).is_none(), "unknown ids stay unknown");
        server.shutdown();
    }

    #[test]
    fn malformed_frames_error_and_close() {
        let server = start();
        // In-frame garbage: an unknown opcode.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&frame(&[0xEE, 1, 2, 3]).unwrap()).unwrap();
        match read_frame(&mut s).unwrap() {
            Some(payload) => match crate::wire::decode_response(&payload).unwrap() {
                Response::Err(m) => assert!(m.contains("bad request"), "{m}"),
                other => panic!("{other:?}"),
            },
            None => panic!("expected an error response before the close"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None, "connection closed");
        server.shutdown();
    }

    #[test]
    fn oversized_length_prefix_errors_and_closes() {
        let server = start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
            .unwrap();
        match read_frame(&mut s).unwrap() {
            Some(payload) => match crate::wire::decode_response(&payload).unwrap() {
                Response::Err(m) => assert!(m.contains("bad frame"), "{m}"),
                other => panic!("{other:?}"),
            },
            None => panic!("expected an error response before the close"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None, "connection closed");
        server.shutdown();
    }

    #[test]
    fn one_acceptor_serves_many_concurrent_long_lived_connections() {
        // Router tiers hold a POOL of long-lived connections per
        // shard. A serve-to-completion worker pool would wedge the
        // second connection behind the first until it closed; the
        // thread-per-connection server must interleave them freely,
        // even with a single acceptor.
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .unwrap();
        let mut a = hello(server.addr());
        let mut b = hello(server.addr()); // a is still open and idle
        assert_eq!(roundtrip(&mut b, &Request::Stat), Response::Stat(vec![]));
        assert_eq!(roundtrip(&mut a, &Request::Stat), Response::Stat(vec![]));
        // interleave once more in the other order
        assert_eq!(roundtrip(&mut a, &Request::Compact), {
            Response::Remap {
                reclaimed: 0,
                remap: vec![],
            }
        });
        assert_eq!(
            roundtrip(&mut b, &Request::Check),
            Response::Problems(vec![])
        );
        server.shutdown();
    }

    #[test]
    fn connections_over_the_cap_are_refused_and_slots_are_reclaimed() {
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            max_connections: 1,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .unwrap();
        // The first connection fills the cap…
        let mut a = hello(server.addr());
        // …so the second is closed before it gets a response.
        let mut b = TcpStream::connect(server.addr()).unwrap();
        let _ = b.write_all(
            &frame(&encode_request(&Request::Hello {
                version: WIRE_VERSION,
            }))
            .unwrap(),
        );
        match read_frame(&mut b) {
            Ok(None) | Err(_) => {} // closed, no protocol answer
            Ok(Some(p)) => panic!("over-cap connection was served: {p:?}"),
        }
        // The capped connection still works…
        assert_eq!(roundtrip(&mut a, &Request::Stat), Response::Stat(vec![]));
        // …and closing it frees the slot for a newcomer.
        assert_eq!(roundtrip(&mut a, &Request::Bye), Response::Ok);
        drop(a);
        // The handler may take a moment to wind down after Bye; the
        // accept-time reap then admits the new connection.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let ok = (|| {
                c.write_all(
                    &frame(&encode_request(&Request::Hello {
                        version: WIRE_VERSION,
                    }))
                    .ok()?,
                )
                .ok()?;
                match read_frame(&mut c) {
                    Ok(Some(payload)) => crate::wire::decode_response(&payload).ok(),
                    _ => None,
                }
            })();
            match ok {
                Some(Response::Hello { .. }) => break,
                _ if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                other => panic!("slot never freed: last answer {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn mid_stream_disconnect_leaves_the_server_serving() {
        let server = start();
        // A client that sends half a frame and vanishes…
        {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            let full = frame(&encode_request(&Request::Stat)).unwrap();
            s.write_all(&full[..full.len() - 2]).unwrap();
            // dropped here, mid-frame
        }
        // …must not wedge the worker: a fresh client gets served.
        let mut s = hello(server.addr());
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        server.shutdown();
    }

    #[test]
    fn unknown_collections_and_slots_are_ordinary_errors() {
        let server = start();
        let mut s = hello(server.addr());
        match roundtrip(
            &mut s,
            &Request::Insert {
                coll: CollectionId(7),
                region: Region::empty(),
            },
        ) {
            Response::Err(m) => assert!(m.contains("unknown collection"), "{m}"),
            other => panic!("{other:?}"),
        }
        // the connection survived the error
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        server.shutdown();
    }

    fn wal_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scq-server-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wal_config(dir: &std::path::Path) -> ShardServerConfig {
        ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 100.0,
            wal: Some(WalConfig {
                dir: dir.to_path_buf(),
                group_commit: std::time::Duration::from_millis(1),
                segment_cap: crate::wal::DEFAULT_SEGMENT_CAP,
            }),
            ..ShardServerConfig::default()
        }
    }

    fn overlap_all(coll: CollectionId) -> Request {
        Request::Query {
            coll,
            kind: scq_engine::IndexKind::Scan,
            query: scq_bbox::CornerQuery::unconstrained()
                .and_overlaps(&scq_bbox::Bbox::new([0.0, 0.0], [100.0, 100.0])),
        }
    }

    #[test]
    fn wal_server_restarts_with_every_acknowledged_mutation() {
        let dir = wal_dir("restart");
        let config = wal_config(&dir);
        let server = serve_shard(&config).unwrap();
        let mut s = hello(server.addr());
        let coll = match roundtrip(
            &mut s,
            &Request::Create {
                name: "objs".into(),
            },
        ) {
            Response::Coll(c) => c,
            other => panic!("{other:?}"),
        };
        for i in 0..4u64 {
            let lo = 10.0 * i as f64;
            assert_eq!(
                roundtrip(
                    &mut s,
                    &Request::Insert {
                        coll,
                        region: Region::from_box(AaBox::new([lo, lo], [lo + 1.0, lo + 1.0])),
                    }
                ),
                Response::Slot(i)
            );
        }
        assert_eq!(
            roundtrip(&mut s, &Request::Remove { coll, local: 2 }),
            Response::Flag(true)
        );
        let before = match roundtrip(&mut s, &overlap_all(coll)) {
            Response::Ids(ids) => ids,
            other => panic!("{other:?}"),
        };
        drop(s);
        server.shutdown();

        // Same directory, fresh process-equivalent: recovery must
        // rebuild exactly the acknowledged state, and say so in stats.
        let server = serve_shard(&config).unwrap();
        assert_eq!(server.wal_stats().expect("wal enabled").replayed, 6);
        let mut s = hello(server.addr());
        match roundtrip(&mut s, &overlap_all(coll)) {
            Response::Ids(ids) => assert_eq!(ids, before),
            other => panic!("{other:?}"),
        }
        match roundtrip(&mut s, &Request::WalStat) {
            Response::WalStat(stats) => {
                assert_eq!(stats.replayed, 6);
                assert_eq!(stats.torn_tails, 0);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_save_truncates_the_log() {
        let dir = wal_dir("truncpoint");
        let config = wal_config(&dir);
        let server = serve_shard(&config).unwrap();
        let mut s = hello(server.addr());
        let coll = match roundtrip(
            &mut s,
            &Request::Create {
                name: "objs".into(),
            },
        ) {
            Response::Coll(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            roundtrip(
                &mut s,
                &Request::Insert {
                    coll,
                    region: Region::from_box(AaBox::new([1.0, 1.0], [2.0, 2.0])),
                }
            ),
            Response::Slot(0)
        );
        match roundtrip(&mut s, &Request::SnapshotSave) {
            Response::Bytes(_) => {}
            other => panic!("{other:?}"),
        }
        drop(s);
        server.shutdown();
        // Recovery past the truncation point replays nothing — the
        // snapshot carries the whole state.
        let server = serve_shard(&config).unwrap();
        assert_eq!(server.wal_stats().expect("wal enabled").replayed, 0);
        let mut s = hello(server.addr());
        match roundtrip(&mut s, &overlap_all(coll)) {
            Response::Ids(ids) => assert_eq!(ids, vec![0]),
            other => panic!("{other:?}"),
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_export_apply_clones_a_shard_over_sockets() {
        let dir_a = wal_dir("export-a");
        let dir_b = wal_dir("export-b");
        let server_a = serve_shard(&wal_config(&dir_a)).unwrap();
        let server_b = serve_shard(&wal_config(&dir_b)).unwrap();
        let mut a = hello(server_a.addr());
        let coll = match roundtrip(
            &mut a,
            &Request::Create {
                name: "objs".into(),
            },
        ) {
            Response::Coll(c) => c,
            other => panic!("{other:?}"),
        };
        for i in 0..3u64 {
            let lo = 10.0 * i as f64;
            roundtrip(
                &mut a,
                &Request::Insert {
                    coll,
                    region: Region::from_box(AaBox::new([lo, lo], [lo + 1.0, lo + 1.0])),
                },
            );
        }
        let segments = match roundtrip(&mut a, &Request::WalExport) {
            Response::WalSegments { complete, segments } => {
                assert!(complete, "never-truncated log exports completely");
                segments
            }
            other => panic!("{other:?}"),
        };
        let mut b = hello(server_b.addr());
        assert_eq!(
            roundtrip(
                &mut b,
                &Request::WalApply {
                    segments: segments.clone()
                }
            ),
            Response::Applied(4)
        );
        // A second apply must be refused: the shard is no longer pristine.
        match roundtrip(&mut b, &Request::WalApply { segments }) {
            Response::Err(m) => assert!(m.contains("pristine"), "{m}"),
            other => panic!("{other:?}"),
        }
        let want = match roundtrip(&mut a, &overlap_all(coll)) {
            Response::Ids(ids) => ids,
            other => panic!("{other:?}"),
        };
        match roundtrip(&mut b, &overlap_all(coll)) {
            Response::Ids(ids) => assert_eq!(ids, want),
            other => panic!("{other:?}"),
        }
        server_a.shutdown();
        server_b.shutdown();
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    // ── mux framing (v4) ────────────────────────────────────────────

    use crate::wire::{
        decode_mux, encode_mux, MuxReassembly, MAX_FRAME as CAP, MUX_CANCEL, MUX_CHUNK, MUX_REQ,
    };

    /// Handshakes at v4, flipping the connection to mux framing.
    fn hello_mux(addr: SocketAddr) -> TcpStream {
        let mut s = TcpStream::connect(addr).unwrap();
        let resp = roundtrip(
            &mut s,
            &Request::Hello {
                version: WIRE_VERSION,
            },
        );
        assert_eq!(
            resp,
            Response::Hello {
                version: WIRE_VERSION
            }
        );
        s
    }

    fn mux_send(s: &mut TcpStream, id: u64, req: &Request) {
        s.write_all(&frame(&encode_mux(MUX_REQ, id, &encode_request(req))).unwrap())
            .unwrap();
    }

    /// Reads server frames until one response completes; counts the
    /// chunk frames it took.
    fn mux_read(
        s: &mut TcpStream,
        reasm: &mut MuxReassembly,
        chunks: &mut usize,
    ) -> (u64, Response) {
        loop {
            let payload = read_frame(s).unwrap().expect("mux frame");
            let f = decode_mux(&payload).unwrap();
            if f.kind == MUX_CHUNK {
                *chunks += 1;
            }
            if let Some((id, bytes)) = reasm.accept(f).unwrap() {
                return (id, crate::wire::decode_response(&bytes).unwrap());
            }
        }
    }

    #[test]
    fn mux_session_pipelines_many_requests_on_one_connection() {
        let server = start();
        let mut s = hello_mux(server.addr());
        mux_send(
            &mut s,
            1,
            &Request::Create {
                name: "objs".into(),
            },
        );
        let mut reasm = MuxReassembly::new();
        let mut chunks = 0;
        let (id, resp) = mux_read(&mut s, &mut reasm, &mut chunks);
        assert_eq!(id, 1);
        let coll = match resp {
            Response::Coll(c) => c,
            other => panic!("{other:?}"),
        };
        // Pipeline a burst of requests before reading any answer: the
        // whole point of mux framing. Responses may complete in any
        // order; ids pair every answer with its question.
        for i in 0..8u64 {
            let lo = 2.0 * i as f64;
            mux_send(
                &mut s,
                100 + i,
                &Request::Insert {
                    coll,
                    region: Region::from_box(AaBox::new([lo, lo], [lo + 1.0, lo + 1.0])),
                },
            );
        }
        let mut slots = std::collections::HashMap::new();
        for _ in 0..8 {
            let (id, resp) = mux_read(&mut s, &mut reasm, &mut chunks);
            match resp {
                Response::Slot(n) => assert!(slots.insert(id, n).is_none()),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(slots.len(), 8, "every id answered exactly once");
        let mut seen: Vec<u64> = slots.into_values().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        // A bad request *body* errors under its id and the connection
        // survives — the framing layer is intact.
        s.write_all(&frame(&encode_mux(MUX_REQ, 999, &[0xEE, 1, 2])).unwrap())
            .unwrap();
        let (id, resp) = mux_read(&mut s, &mut reasm, &mut chunks);
        assert_eq!(id, 999);
        match resp {
            Response::Err(m) => assert!(m.contains("bad request"), "{m}"),
            other => panic!("{other:?}"),
        }
        mux_send(&mut s, 1000, &Request::Stat);
        let (id, resp) = mux_read(&mut s, &mut reasm, &mut chunks);
        assert_eq!(id, 1000);
        assert_eq!(resp, Response::Stat(vec![("objs".into(), 8, 8)]));
        server.shutdown();
    }

    #[test]
    fn cancelled_requests_are_never_answered() {
        // One worker: request A occupies it while B waits in the
        // queue, so the cancel (dispatched by the loop thread the
        // moment it reads the frame, microseconds after B is queued)
        // deterministically lands while B is still pending.
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .unwrap();
        {
            let mut d = server.state.db.write().unwrap();
            let coll = d.collection("bulk");
            for i in 0..50_000u64 {
                let x = (i % 90) as f64;
                let y = ((i / 90) % 90) as f64;
                d.insert(
                    coll,
                    Region::from_box(AaBox::new([x, y], [x + 0.5, y + 0.5])),
                );
            }
        }
        let mut s = hello_mux(server.addr());
        // A (slow: a multi-megabyte snapshot), B, cancel-B, C — written
        // back-to-back so the loop dispatches them in one batch.
        let mut burst = Vec::new();
        burst.extend_from_slice(
            &frame(&encode_mux(
                MUX_REQ,
                1,
                &encode_request(&Request::SnapshotRead),
            ))
            .unwrap(),
        );
        burst.extend_from_slice(
            &frame(&encode_mux(MUX_REQ, 2, &encode_request(&Request::Stat))).unwrap(),
        );
        burst.extend_from_slice(&frame(&encode_mux(MUX_CANCEL, 2, &[])).unwrap());
        burst.extend_from_slice(
            &frame(&encode_mux(MUX_REQ, 3, &encode_request(&Request::Check))).unwrap(),
        );
        s.write_all(&burst).unwrap();
        let mut reasm = MuxReassembly::new();
        let mut chunks = 0;
        let mut answered = Vec::new();
        for _ in 0..2 {
            let (id, _) = mux_read(&mut s, &mut reasm, &mut chunks);
            answered.push(id);
        }
        answered.sort_unstable();
        assert_eq!(answered, vec![1, 3], "id 2 was cancelled, never answered");
        server.shutdown();
    }

    #[test]
    fn answers_past_the_frame_cap_stream_as_chunked_frames() {
        let server = start();
        // Populate directly — in-process, not via 1.7M wire inserts —
        // until the snapshot stream is provably bigger than one frame.
        // Calibrate bytes-per-object from a probe batch so the test
        // tracks the snapshot codec instead of hard-coding its size.
        {
            let mut d = server.state.db.write().unwrap();
            let coll = d.collection("bulk");
            // Fat regions (64 fragment boxes each) reach the byte
            // target with ~50× fewer index inserts than singletons —
            // the snapshot stores every fragment, the indexes only the
            // bounding box.
            let insert = |d: &mut SpatialDatabase<2>, i: u64| {
                let x = (i % 80) as f64;
                let y = ((i / 80) % 80) as f64;
                let cells = (0..64u64).map(|j| {
                    let fx = x + (j % 8) as f64 * 0.125;
                    let fy = y + (j / 8) as f64 * 0.125;
                    AaBox::new([fx, fy], [fx + 0.06, fy + 0.06])
                });
                d.insert(coll, Region::from_boxes(cells));
            };
            let probe = 256u64;
            for i in 0..probe {
                insert(&mut d, i);
            }
            let per_object = (snapshot::save(&d).len() / probe as usize).max(1);
            let target = CAP + CAP / 16; // comfortably past the cap
            let total = (target / per_object) as u64 + probe;
            for i in probe..total {
                insert(&mut d, i);
            }
        }
        // A legacy connection still gets the old refusal…
        let mut legacy = hello(server.addr());
        match roundtrip(&mut legacy, &Request::SnapshotRead) {
            Response::Err(m) => assert!(m.contains("exceeds the frame cap"), "{m}"),
            other => panic!("{other:?}"),
        }
        // …while a v4 connection streams the whole answer as chunks.
        let mut s = hello_mux(server.addr());
        mux_send(&mut s, 7, &Request::SnapshotRead);
        let mut reasm = MuxReassembly::new();
        let mut chunks = 0;
        let (id, resp) = mux_read(&mut s, &mut reasm, &mut chunks);
        assert_eq!(id, 7);
        let stream = match resp {
            Response::Bytes(b) => b,
            other => panic!("{other:?}"),
        };
        assert!(
            stream.len() > CAP,
            "the reassembled answer ({} bytes) must beat the {CAP}-byte cap",
            stream.len()
        );
        assert!(chunks >= 2, "a >cap answer takes multiple chunks");
        let loaded = snapshot::load::<2>(&stream).expect("streamed snapshot decodes");
        let d = server.state.db.read().unwrap();
        assert_eq!(
            loaded.collection_len(CollectionId(0)),
            d.collection_len(CollectionId(0))
        );
        drop(d);
        server.shutdown();
    }

    #[test]
    fn wire_version_cap_rehearses_a_rolling_upgrade() {
        // A v4 build capped at v3 behaves exactly like the old release:
        // v4 clients are told the window and negotiate down; v3 and v2
        // clients proceed untouched.
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 100.0,
            wire_version: 3,
            ..ShardServerConfig::default()
        })
        .unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        match roundtrip(
            &mut s,
            &Request::Hello {
                version: WIRE_VERSION,
            },
        ) {
            Response::Err(m) => {
                assert!(m.contains("shard speaks 2..=3"), "{m}");
                assert!(m.contains("client speaks 4"), "{m}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None, "mismatch closes");
        let mut s = hello(server.addr()); // v3 handshake succeeds
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        server.shutdown();
    }

    #[test]
    fn strict_mode_is_a_faithful_v2_server() {
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 100.0,
            wire_version: 2,
            strict: true,
            ..ShardServerConfig::default()
        })
        .unwrap();
        // The mismatch names ONE version — a pre-negotiation release
        // had no window to advertise.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        match roundtrip(
            &mut s,
            &Request::Hello {
                version: WIRE_VERSION,
            },
        ) {
            Response::Err(m) => {
                assert!(m.contains("shard speaks 2,"), "{m}");
                assert!(!m.contains("..="), "strict mode advertises no window: {m}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None);
        // At exactly v2 the full op surface works…
        let mut s = TcpStream::connect(server.addr()).unwrap();
        assert_eq!(
            roundtrip(&mut s, &Request::Hello { version: 2 }),
            Response::Hello { version: 2 }
        );
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        // …but the v3 opcodes are as unknown as they were in 2022.
        match roundtrip(&mut s, &Request::Metrics) {
            Response::Err(m) => assert!(m.contains("bad request"), "{m}"),
            other => panic!("{other:?}"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None, "a real v2 hangs up");
        server.shutdown();
    }

    #[test]
    fn shutdown_returns_despite_idle_and_midframe_connections() {
        let server = start();
        let idle = TcpStream::connect(server.addr()).unwrap();
        let mut partial = TcpStream::connect(server.addr()).unwrap();
        partial.write_all(&[3, 0]).unwrap(); // half a length prefix
        std::thread::sleep(std::time::Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "shutdown must not hang"
        );
        drop(idle);
        let mut buf = [0u8; 8];
        let _ = partial.read(&mut buf);
    }
}
