//! The shard server: one [`SpatialDatabase`] behind the wire protocol.
//!
//! This is what runs inside each shard **process** of a cluster
//! (`scq-serve --shard`). It knows nothing about siblings, routing or
//! global slots — it answers exactly the [`crate::ShardBackend`]
//! contract over TCP: mutations and compaction under a write lock,
//! corner queries and snapshot streaming under a read lock, so one
//! router connection and any number of diagnostic connections can work
//! concurrently.
//!
//! Connection handling is **thread-per-connection** behind a small
//! acceptor pool: router tiers keep a *pool* of long-lived connections
//! per shard (so their concurrent probes overlap on the wire), and a
//! fixed serve-to-completion worker pool would cap that concurrency at
//! the worker count — the connection past the cap would hang in the
//! accept backlog until its peer times out. Acceptors hand each
//! connection its own handler thread instead; connection count is
//! bounded in practice by the clients' pool sizes. Each connection
//! reads frames through a short receive timeout so
//! [`ShardServerHandle::shutdown`] never hangs on an idle peer, and
//! every decoded request gets exactly one response frame.
//! Framing-level poison — an oversized length prefix, a frame
//! that fails to decode — earns an error response and a closed
//! connection (the stream cannot be resynchronized); shard-level
//! failures (unknown collection, bad snapshot payload) are ordinary
//! [`Response::Err`]s and the connection lives on.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use scq_engine::{snapshot, CollectionId, SpatialDatabase};
use scq_region::AaBox;

use crate::wal::{self, Wal, WalConfig, WalStats};
use crate::wire::{
    decode_request, encode_response, frame, FrameReader, Request, Response, MIN_WIRE_VERSION,
    WIRE_VERSION,
};

/// Shard server configuration.
#[derive(Clone, Debug)]
pub struct ShardServerConfig {
    /// Listen address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Acceptor threads sharing the listener. Each accepted connection
    /// gets its own handler thread, so this bounds accept throughput,
    /// not connection concurrency (see
    /// [`ShardServerConfig::max_connections`]).
    pub threads: usize,
    /// Hard cap on concurrently served connections: a connection
    /// accepted while this many handlers are live is closed
    /// immediately (its peer sees a transport failure, which router
    /// tiers degrade or retry). Bounds the thread-per-connection
    /// model against misbehaving or malicious peers; size it to the
    /// sum of your router tiers' pool sizes plus diagnostic headroom.
    pub max_connections: usize,
    /// The universe square side: the shard spans `[0, size]²`. Must
    /// match the router tier's universe or the cluster handshake's
    /// consistency checks will reject the shard.
    pub universe_size: f64,
    /// Write-ahead log, when the shard should survive crashes: startup
    /// recovers the directory (newest snapshot + replay) instead of
    /// starting empty, and every mutation is acknowledged only once
    /// its log record is fsynced. `None` keeps the shard purely
    /// in-memory (the pre-WAL behavior).
    pub wal: Option<WalConfig>,
}

impl Default for ShardServerConfig {
    fn default() -> Self {
        ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_connections: 64,
            universe_size: 1000.0,
            wal: None,
        }
    }
}

/// The shard a server drives: the database plus its optional log.
/// Mutations append under the database write lock (so log order is
/// apply order) and wait for durability after releasing it.
struct ShardState {
    db: RwLock<SpatialDatabase<2>>,
    wal: Option<Wal>,
    /// Shard-local instruments (`shard.<op>.latency` histograms plus
    /// the WAL's `wal.fsync.latency`), answered wholesale over
    /// [`Request::Metrics`] so the router can merge them into one
    /// cluster scrape.
    registry: scq_obs::Registry,
    /// Traces installed by [`Request::Traced`]: the shard-side span
    /// record of recently traced requests, for diagnostics.
    traces: scq_obs::TraceRing,
}

/// A running shard server: bound address, acceptor pool and the live
/// connection handler threads.
pub struct ShardServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    state: Arc<ShardState>,
}

impl ShardServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// WAL counters, when the server keeps a log (`None` otherwise).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.state.wal.as_ref().map(Wal::stats)
    }

    /// A point-in-time snapshot of the shard's instruments — the same
    /// rows [`Request::Metrics`] answers over the wire.
    pub fn metrics(&self) -> scq_obs::Snapshot {
        self.state.registry.snapshot()
    }

    /// The shard-side trace a [`Request::Traced`] request recorded,
    /// newest match by ID.
    pub fn trace(&self, id: u64) -> Option<Arc<scq_obs::TraceState>> {
        self.state.traces.get(id)
    }

    /// Stops accepting, unblocks acceptors and connection handlers,
    /// and joins them all (handlers notice the stop flag at their next
    /// receive timeout).
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for _ in &self.acceptors {
            let _ = TcpStream::connect(self.addr);
        }
        for a in self.acceptors {
            let _ = a.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler registry"));
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// Starts a shard server: binds, spawns the acceptor pool, returns
/// immediately. Every accepted connection is served on its own thread
/// — a router tier's whole connection pool can be in flight against
/// this shard at once.
pub fn serve_shard(config: &ShardServerConfig) -> std::io::Result<ShardServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let universe = AaBox::new([0.0, 0.0], [config.universe_size, config.universe_size]);
    // With a WAL, startup *is* recovery: the database the connections
    // see is the newest snapshot plus every durable record past it. A
    // log that fails recovery refuses to serve — better no shard than
    // a shard silently missing acknowledged history.
    let (wal, db) = match &config.wal {
        Some(wal_config) => {
            let (wal, db) = Wal::open(wal_config, universe)
                .map_err(|e| std::io::Error::other(format!("wal recovery failed: {e}")))?;
            (Some(wal), db)
        }
        None => (None, SpatialDatabase::new(universe)),
    };
    let registry = scq_obs::Registry::new();
    if let Some(wal) = &wal {
        // The histogram handle shares cells with the live log: every
        // group-commit fsync lands in scrapes with no polling.
        registry.register_histogram("wal.fsync.latency", wal.fsync_latency());
    }
    let state = Arc::new(ShardState {
        db: RwLock::new(db),
        wal,
        registry,
        traces: scq_obs::TraceRing::new(64),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let max_connections = config.max_connections.max(1);
    let mut acceptors = Vec::new();
    for _ in 0..config.threads.max(1) {
        let listener = listener.try_clone()?;
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let handlers = Arc::clone(&handlers);
        acceptors.push(std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let mut registry = handlers.lock().expect("handler registry");
                // Reap finished handlers here so the registry tracks
                // *live* connections, not every connection ever
                // accepted — both for the cap below and so a
                // long-lived server's memory stays bounded.
                registry.retain(|h| !h.is_finished());
                if registry.len() >= max_connections {
                    // Over the cap: close immediately. The peer sees a
                    // transport failure and degrades or retries.
                    drop(stream);
                    continue;
                }
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                registry.push(std::thread::spawn(move || {
                    serve_connection(stream, &state, &stop)
                }));
            }
        }));
    }
    Ok(ShardServerHandle {
        addr,
        stop,
        acceptors,
        handlers,
        state,
    })
}

/// What to do with the connection after answering a request.
enum After {
    KeepOpen,
    Close,
}

fn serve_connection(stream: TcpStream, state: &ShardState, stop: &AtomicBool) {
    // The receive timeout is the shutdown heartbeat: an idle or
    // mid-frame connection wakes up periodically, notices the stop
    // flag, and returns. FrameReader keeps partial bytes across
    // timeouts, so a slow sender's frame is never corrupted.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    let mut reader = FrameReader::new();
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut stream = stream;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        // Drain every complete frame before reading more bytes.
        loop {
            match reader.next_frame() {
                Ok(Some(payload)) => {
                    let (response, after) = match decode_request(&payload) {
                        Ok(req) => {
                            let op = op_name(&req);
                            let started = std::time::Instant::now();
                            let out = handle_request(state, req);
                            state
                                .registry
                                .histogram(&format!("shard.{op}.latency"))
                                .observe(started.elapsed());
                            out
                        }
                        // An undecodable frame means the peer and we
                        // disagree about the protocol; answer once and
                        // hang up rather than guess at resync.
                        Err(e) => (Response::Err(format!("bad request: {e}")), After::Close),
                    };
                    if write_response(&mut writer, &response).is_err() {
                        return;
                    }
                    if matches!(after, After::Close) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing poison (oversized prefix): report, close.
                    let _ = write_response(&mut writer, &Response::Err(format!("bad frame: {e}")));
                    return;
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match std::io::Read::read(&mut stream, &mut chunk) {
            Ok(0) => return, // peer hung up (mid-frame or not, nothing to answer)
            Ok(n) => reader.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let framed = match frame(&encode_response(response)) {
        Ok(framed) => framed,
        // The only oversize response is a snapshot stream; refuse it
        // with a (small) error frame instead of poisoning the peer.
        Err(e) => frame(&encode_response(&Response::Err(format!(
            "response exceeds the frame cap: {e}"
        ))))
        .expect("the error frame is small"),
    };
    writer.write_all(&framed)?;
    writer.flush()
}

fn poisoned<T>(_: T) -> Response {
    Response::Err("shard lock poisoned".into())
}

/// Runs one mutation under the write lock and, when the shard keeps a
/// WAL, acknowledges it only once its record is durable. The append
/// happens **while still holding the lock** — log order is exactly
/// apply order — and the fsync wait happens after releasing it, so a
/// group-commit window never blocks readers or other writers.
fn mutate<F>(state: &ShardState, req: &Request, op: F) -> Response
where
    F: FnOnce(&mut SpatialDatabase<2>) -> Response,
{
    let mut d = match state.db.write() {
        Ok(d) => d,
        Err(e) => return poisoned(e),
    };
    let resp = op(&mut d);
    if matches!(resp, Response::Err(_)) {
        // The mutation was refused: nothing changed, nothing to log.
        return resp;
    }
    let ticket = match &state.wal {
        Some(wal) => match wal.append(req) {
            Ok(t) => Some(t),
            // The mutation applied in memory but could not be logged:
            // fail the request (the client must not treat it as
            // committed). The next recovery rebuilds without it.
            Err(e) => return Response::Err(format!("wal append failed: {e}")),
        },
        None => None,
    };
    drop(d);
    if let Some(ticket) = ticket {
        let wal = state.wal.as_ref().expect("ticket implies wal");
        if let Err(e) = wal.wait_durable(ticket) {
            return Response::Err(format!("wal not durable: {e}"));
        }
    }
    resp
}

/// The request's flat name, for per-op latency instruments. A traced
/// request reports as its inner op — the wrapper is plumbing, not work.
fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Hello { .. } => "hello",
        Request::Create { .. } => "create",
        Request::Insert { .. } => "insert",
        Request::Remove { .. } => "remove",
        Request::Update { .. } => "update",
        Request::Query { .. } => "query",
        Request::Stat => "stat",
        Request::Compact => "compact",
        Request::SnapshotSave => "snapshot_save",
        Request::SnapshotRead => "snapshot_read",
        Request::SnapshotLoad { .. } => "snapshot_load",
        Request::Check => "check",
        Request::WalStat => "wal_stat",
        Request::WalExport => "wal_export",
        Request::WalApply { .. } => "wal_apply",
        Request::Metrics => "metrics",
        Request::Traced { inner, .. } => op_name(inner),
        Request::Bye => "bye",
    }
}

/// Executes one decoded request against the shard database.
fn handle_request(state: &ShardState, req: Request) -> (Response, After) {
    // Unwrap tracing before the main dispatch so the inner request is
    // handled — and WAL-logged — as itself. The router's trace ID rides
    // the frame header; installing a shard-side trace under it means
    // spans recorded here land in the shard's ring under the same ID
    // the client saw.
    if let Request::Traced { trace_id, inner } = req {
        let trace = scq_obs::TraceState::new(trace_id);
        let out = {
            let _guard = trace.install();
            let _span = scq_obs::span("shard.handle", format!("op={}", op_name(&inner)));
            handle_request(state, *inner)
        };
        state.traces.push(trace);
        return out;
    }
    let db = &state.db;
    let resp = match &req {
        Request::Hello { version } => {
            let version = *version;
            if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
                // A peer outside the window we can speak must not get
                // garbage answers; reject the handshake and close.
                return (
                    Response::Err(format!(
                        "wire version mismatch: shard speaks {MIN_WIRE_VERSION}..={WIRE_VERSION}, client speaks {version}"
                    )),
                    After::Close,
                );
            }
            // Answer the client's version: it is the highest both
            // sides speak, so an old client keeps its old protocol.
            Response::Hello { version }
        }
        Request::Create { name } => {
            if name.len() > 255 {
                Response::Err(format!(
                    "collection name too long ({} > 255 bytes)",
                    name.len()
                ))
            } else {
                mutate(state, &req, |d| Response::Coll(d.collection(name)))
            }
        }
        Request::Insert { coll, region } => mutate(state, &req, |d| match known(d, *coll) {
            Ok(()) => Response::Slot(d.insert(*coll, region.clone()).index as u64),
            Err(e) => e,
        }),
        Request::Remove { coll, local } => {
            mutate(state, &req, |d| match known_slot(d, *coll, *local) {
                Ok(obj) => Response::Flag(d.remove(obj)),
                Err(e) => e,
            })
        }
        Request::Update {
            coll,
            local,
            region,
        } => mutate(state, &req, |d| match known_slot(d, *coll, *local) {
            Ok(obj) => Response::Flag(d.update(obj, region.clone())),
            Err(e) => e,
        }),
        Request::Query { coll, kind, query } => match db.read() {
            Ok(d) => match known(&d, *coll) {
                Ok(()) => {
                    let mut ids = Vec::new();
                    d.query_collection(*coll, *kind, query, &mut ids);
                    Response::Ids(ids)
                }
                Err(e) => e,
            },
            Err(e) => poisoned(e),
        },
        Request::Stat => match db.read() {
            Ok(d) => Response::Stat(
                d.collections()
                    .map(|c| {
                        (
                            d.collection_name(c).to_owned(),
                            d.collection_len(c) as u64,
                            d.live_len(c) as u64,
                        )
                    })
                    .collect(),
            ),
            Err(e) => poisoned(e),
        },
        // Compaction is a logged mutation: its remap is deterministic
        // in the state it runs on, so replay reproduces the exact slot
        // layout the answers after it were built on.
        Request::Compact => mutate(state, &req, |d| Response::from_compact(&d.compact())),
        Request::SnapshotSave => match db.read() {
            Ok(d) => {
                let bytes = snapshot::save(&d).to_vec();
                // The read lock excludes writers, so the stream and
                // the truncation snapshot describe the same state:
                // SNAPSHOT SAVE *is* the log-truncation point.
                if let Some(wal) = &state.wal {
                    if let Err(e) = wal.truncate(&d) {
                        return (
                            Response::Err(format!("wal truncation failed: {e}")),
                            After::KeepOpen,
                        );
                    }
                }
                Response::Bytes(bytes)
            }
            Err(e) => poisoned(e),
        },
        // The read-only stream: same bytes, no truncation — reading a
        // shard's state must never seal its log.
        Request::SnapshotRead => match db.read() {
            Ok(d) => Response::Bytes(snapshot::save(&d).to_vec()),
            Err(e) => poisoned(e),
        },
        Request::SnapshotLoad { stream } => match snapshot::load::<2>(stream) {
            Ok(loaded) => match db.write() {
                Ok(mut d) => {
                    *d = loaded;
                    // The load rewrote history wholesale; the old log
                    // no longer describes this state. Truncating seals
                    // it behind a snapshot of the loaded state.
                    if let Some(wal) = &state.wal {
                        if let Err(e) = wal.truncate(&d) {
                            return (
                                Response::Err(format!("wal truncation failed: {e}")),
                                After::KeepOpen,
                            );
                        }
                    }
                    Response::Ok
                }
                Err(e) => poisoned(e),
            },
            Err(e) => Response::Err(format!("bad snapshot stream: {e}")),
        },
        Request::Check => match db.read() {
            Ok(d) => Response::Problems(scq_engine::integrity::check(&d).err().unwrap_or_default()),
            Err(e) => poisoned(e),
        },
        Request::WalStat => match &state.wal {
            Some(wal) => Response::WalStat(wal.stats()),
            None => Response::Err("wal not enabled on this shard".into()),
        },
        Request::WalExport => match &state.wal {
            // The read lock excludes mutations (and their appends), so
            // the export is a consistent cut of the log.
            Some(wal) => match db.read() {
                Ok(_guard) => match wal.export() {
                    Ok(export) => Response::WalSegments {
                        complete: export.complete,
                        segments: export.segments,
                    },
                    Err(e) => Response::Err(format!("wal export failed: {e}")),
                },
                Err(e) => poisoned(e),
            },
            None => Response::Err("wal not enabled on this shard".into()),
        },
        Request::WalApply { segments } => match db.write() {
            Ok(mut d) => {
                if d.collections().count() != 0 {
                    Response::Err("wal apply requires a pristine shard".into())
                } else {
                    // Replay into a copy of the pristine state so a
                    // bad export leaves the shard untouched.
                    match snapshot::load::<2>(&snapshot::save(&d)) {
                        Ok(mut scratch) => match wal::replay_export(&mut scratch, segments) {
                            Ok(applied) => {
                                *d = scratch;
                                if let Some(wal) = &state.wal {
                                    // The applied records were never
                                    // appended to *our* log; a snapshot
                                    // truncation makes them durable.
                                    if let Err(e) = wal.truncate(&d) {
                                        return (
                                            Response::Err(format!("wal truncation failed: {e}")),
                                            After::KeepOpen,
                                        );
                                    }
                                }
                                Response::Applied(applied)
                            }
                            Err(e) => Response::Err(format!("wal apply failed: {e}")),
                        },
                        Err(e) => Response::Err(format!("wal apply failed: {e}")),
                    }
                }
            }
            Err(e) => poisoned(e),
        },
        Request::Metrics => Response::Metrics(state.registry.snapshot()),
        // Handled above, before the dispatch; decode rejects nesting.
        Request::Traced { .. } => Response::Err("nested Traced request".into()),
        Request::Bye => return (Response::Ok, After::Close),
    };
    (resp, After::KeepOpen)
}

fn known(d: &SpatialDatabase<2>, coll: CollectionId) -> Result<(), Response> {
    if coll.0 < d.collections().count() {
        Ok(())
    } else {
        Err(Response::Err(format!("unknown collection id {}", coll.0)))
    }
}

fn known_slot(
    d: &SpatialDatabase<2>,
    coll: CollectionId,
    local: u64,
) -> Result<scq_engine::ObjectRef, Response> {
    known(d, coll)?;
    let index = local as usize;
    if index >= d.collection_len(coll) {
        return Err(Response::Err(format!(
            "slot {index} out of range (shard collection has {} slots)",
            d.collection_len(coll)
        )));
    }
    Ok(scq_engine::ObjectRef {
        collection: coll,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_request, read_frame, MAX_FRAME};
    use scq_region::Region;
    use std::io::Read;

    fn start() -> ShardServerHandle {
        serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .expect("bind shard server")
    }

    fn roundtrip(stream: &mut TcpStream, req: &Request) -> Response {
        stream
            .write_all(&frame(&encode_request(req)).unwrap())
            .unwrap();
        let payload = read_frame(stream).unwrap().expect("response frame");
        crate::wire::decode_response(&payload).unwrap()
    }

    fn hello(addr: SocketAddr) -> TcpStream {
        let mut s = TcpStream::connect(addr).unwrap();
        let resp = roundtrip(
            &mut s,
            &Request::Hello {
                version: WIRE_VERSION,
            },
        );
        assert_eq!(
            resp,
            Response::Hello {
                version: WIRE_VERSION
            }
        );
        s
    }

    #[test]
    fn scripted_session_over_real_sockets() {
        let server = start();
        let mut s = hello(server.addr());
        let coll = match roundtrip(
            &mut s,
            &Request::Create {
                name: "objs".into(),
            },
        ) {
            Response::Coll(c) => c,
            other => panic!("{other:?}"),
        };
        let region = Region::from_box(AaBox::new([1.0, 1.0], [5.0, 5.0]));
        assert_eq!(
            roundtrip(
                &mut s,
                &Request::Insert {
                    coll,
                    region: region.clone()
                }
            ),
            Response::Slot(0)
        );
        assert_eq!(
            roundtrip(
                &mut s,
                &Request::Query {
                    coll,
                    kind: scq_engine::IndexKind::RTree,
                    query: scq_bbox::CornerQuery::unconstrained()
                        .and_overlaps(&scq_bbox::Bbox::new([0.0, 0.0], [10.0, 10.0])),
                }
            ),
            Response::Ids(vec![0])
        );
        assert_eq!(
            roundtrip(&mut s, &Request::Remove { coll, local: 0 }),
            Response::Flag(true)
        );
        assert_eq!(
            roundtrip(&mut s, &Request::Remove { coll, local: 0 }),
            Response::Flag(false)
        );
        match roundtrip(&mut s, &Request::Compact) {
            Response::Remap { reclaimed, .. } => assert_eq!(reclaimed, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            roundtrip(&mut s, &Request::Check),
            Response::Problems(vec![])
        );
        assert_eq!(roundtrip(&mut s, &Request::Bye), Response::Ok);
        server.shutdown();
    }

    #[test]
    fn version_mismatch_is_rejected_and_closes() {
        let server = start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let resp = roundtrip(&mut s, &Request::Hello { version: 99 });
        match resp {
            Response::Err(m) => assert!(m.contains("version mismatch"), "{m}"),
            other => panic!("{other:?}"),
        }
        // the server hung up: the next read sees a clean close
        assert_eq!(read_frame(&mut s).unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn older_supported_version_negotiates_down() {
        let server = start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // A v2 peer (the previous release) must be answered at v2, not
        // rejected and not upgraded past what it speaks.
        let resp = roundtrip(
            &mut s,
            &Request::Hello {
                version: MIN_WIRE_VERSION,
            },
        );
        assert_eq!(
            resp,
            Response::Hello {
                version: MIN_WIRE_VERSION
            }
        );
        // The connection stays serviceable after the downgrade.
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        server.shutdown();
    }

    #[test]
    fn versions_below_the_window_are_rejected() {
        let server = start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let resp = roundtrip(&mut s, &Request::Hello { version: 1 });
        match resp {
            Response::Err(m) => assert!(m.contains("version mismatch"), "{m}"),
            other => panic!("{other:?}"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn metrics_reports_per_op_latency_histograms() {
        let server = start();
        let mut s = hello(server.addr());
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        let snap = match roundtrip(&mut s, &Request::Metrics) {
            Response::Metrics(snap) => snap,
            other => panic!("{other:?}"),
        };
        // The hello and stat already served must have landed in their
        // per-op histograms; the metrics request itself is observed
        // only after its response is built, so it may not appear yet.
        for op in ["hello", "stat"] {
            let h = snap
                .histogram(&format!("shard.{op}.latency"))
                .unwrap_or_else(|| panic!("missing shard.{op}.latency"));
            assert_eq!(h.count(), 1, "one {op} was served");
        }
        server.shutdown();
    }

    #[test]
    fn traced_requests_answer_as_the_inner_op_and_record_a_span() {
        let server = start();
        let mut s = hello(server.addr());
        let resp = roundtrip(
            &mut s,
            &Request::Traced {
                trace_id: 42,
                inner: Box::new(Request::Stat),
            },
        );
        assert_eq!(resp, Response::Stat(vec![]));
        let trace = server.trace(42).expect("shard kept the trace");
        let spans = trace.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "shard.handle");
        assert_eq!(spans[0].detail, "op=stat");
        assert!(server.trace(7).is_none(), "unknown ids stay unknown");
        server.shutdown();
    }

    #[test]
    fn malformed_frames_error_and_close() {
        let server = start();
        // In-frame garbage: an unknown opcode.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&frame(&[0xEE, 1, 2, 3]).unwrap()).unwrap();
        match read_frame(&mut s).unwrap() {
            Some(payload) => match crate::wire::decode_response(&payload).unwrap() {
                Response::Err(m) => assert!(m.contains("bad request"), "{m}"),
                other => panic!("{other:?}"),
            },
            None => panic!("expected an error response before the close"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None, "connection closed");
        server.shutdown();
    }

    #[test]
    fn oversized_length_prefix_errors_and_closes() {
        let server = start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
            .unwrap();
        match read_frame(&mut s).unwrap() {
            Some(payload) => match crate::wire::decode_response(&payload).unwrap() {
                Response::Err(m) => assert!(m.contains("bad frame"), "{m}"),
                other => panic!("{other:?}"),
            },
            None => panic!("expected an error response before the close"),
        }
        assert_eq!(read_frame(&mut s).unwrap(), None, "connection closed");
        server.shutdown();
    }

    #[test]
    fn one_acceptor_serves_many_concurrent_long_lived_connections() {
        // Router tiers hold a POOL of long-lived connections per
        // shard. A serve-to-completion worker pool would wedge the
        // second connection behind the first until it closed; the
        // thread-per-connection server must interleave them freely,
        // even with a single acceptor.
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .unwrap();
        let mut a = hello(server.addr());
        let mut b = hello(server.addr()); // a is still open and idle
        assert_eq!(roundtrip(&mut b, &Request::Stat), Response::Stat(vec![]));
        assert_eq!(roundtrip(&mut a, &Request::Stat), Response::Stat(vec![]));
        // interleave once more in the other order
        assert_eq!(roundtrip(&mut a, &Request::Compact), {
            Response::Remap {
                reclaimed: 0,
                remap: vec![],
            }
        });
        assert_eq!(
            roundtrip(&mut b, &Request::Check),
            Response::Problems(vec![])
        );
        server.shutdown();
    }

    #[test]
    fn connections_over_the_cap_are_refused_and_slots_are_reclaimed() {
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            max_connections: 1,
            universe_size: 100.0,
            wal: None,
        })
        .unwrap();
        // The first connection fills the cap…
        let mut a = hello(server.addr());
        // …so the second is closed before it gets a response.
        let mut b = TcpStream::connect(server.addr()).unwrap();
        let _ = b.write_all(
            &frame(&encode_request(&Request::Hello {
                version: WIRE_VERSION,
            }))
            .unwrap(),
        );
        match read_frame(&mut b) {
            Ok(None) | Err(_) => {} // closed, no protocol answer
            Ok(Some(p)) => panic!("over-cap connection was served: {p:?}"),
        }
        // The capped connection still works…
        assert_eq!(roundtrip(&mut a, &Request::Stat), Response::Stat(vec![]));
        // …and closing it frees the slot for a newcomer.
        assert_eq!(roundtrip(&mut a, &Request::Bye), Response::Ok);
        drop(a);
        // The handler may take a moment to wind down after Bye; the
        // accept-time reap then admits the new connection.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let ok = (|| {
                c.write_all(
                    &frame(&encode_request(&Request::Hello {
                        version: WIRE_VERSION,
                    }))
                    .ok()?,
                )
                .ok()?;
                match read_frame(&mut c) {
                    Ok(Some(payload)) => crate::wire::decode_response(&payload).ok(),
                    _ => None,
                }
            })();
            match ok {
                Some(Response::Hello { .. }) => break,
                _ if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                other => panic!("slot never freed: last answer {other:?}"),
            }
        }
        server.shutdown();
    }

    #[test]
    fn mid_stream_disconnect_leaves_the_server_serving() {
        let server = start();
        // A client that sends half a frame and vanishes…
        {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            let full = frame(&encode_request(&Request::Stat)).unwrap();
            s.write_all(&full[..full.len() - 2]).unwrap();
            // dropped here, mid-frame
        }
        // …must not wedge the worker: a fresh client gets served.
        let mut s = hello(server.addr());
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        server.shutdown();
    }

    #[test]
    fn unknown_collections_and_slots_are_ordinary_errors() {
        let server = start();
        let mut s = hello(server.addr());
        match roundtrip(
            &mut s,
            &Request::Insert {
                coll: CollectionId(7),
                region: Region::empty(),
            },
        ) {
            Response::Err(m) => assert!(m.contains("unknown collection"), "{m}"),
            other => panic!("{other:?}"),
        }
        // the connection survived the error
        assert_eq!(roundtrip(&mut s, &Request::Stat), Response::Stat(vec![]));
        server.shutdown();
    }

    fn wal_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scq-server-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wal_config(dir: &std::path::Path) -> ShardServerConfig {
        ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 100.0,
            wal: Some(WalConfig {
                dir: dir.to_path_buf(),
                group_commit: std::time::Duration::from_millis(1),
                segment_cap: crate::wal::DEFAULT_SEGMENT_CAP,
            }),
            ..ShardServerConfig::default()
        }
    }

    fn overlap_all(coll: CollectionId) -> Request {
        Request::Query {
            coll,
            kind: scq_engine::IndexKind::Scan,
            query: scq_bbox::CornerQuery::unconstrained()
                .and_overlaps(&scq_bbox::Bbox::new([0.0, 0.0], [100.0, 100.0])),
        }
    }

    #[test]
    fn wal_server_restarts_with_every_acknowledged_mutation() {
        let dir = wal_dir("restart");
        let config = wal_config(&dir);
        let server = serve_shard(&config).unwrap();
        let mut s = hello(server.addr());
        let coll = match roundtrip(
            &mut s,
            &Request::Create {
                name: "objs".into(),
            },
        ) {
            Response::Coll(c) => c,
            other => panic!("{other:?}"),
        };
        for i in 0..4u64 {
            let lo = 10.0 * i as f64;
            assert_eq!(
                roundtrip(
                    &mut s,
                    &Request::Insert {
                        coll,
                        region: Region::from_box(AaBox::new([lo, lo], [lo + 1.0, lo + 1.0])),
                    }
                ),
                Response::Slot(i)
            );
        }
        assert_eq!(
            roundtrip(&mut s, &Request::Remove { coll, local: 2 }),
            Response::Flag(true)
        );
        let before = match roundtrip(&mut s, &overlap_all(coll)) {
            Response::Ids(ids) => ids,
            other => panic!("{other:?}"),
        };
        drop(s);
        server.shutdown();

        // Same directory, fresh process-equivalent: recovery must
        // rebuild exactly the acknowledged state, and say so in stats.
        let server = serve_shard(&config).unwrap();
        assert_eq!(server.wal_stats().expect("wal enabled").replayed, 6);
        let mut s = hello(server.addr());
        match roundtrip(&mut s, &overlap_all(coll)) {
            Response::Ids(ids) => assert_eq!(ids, before),
            other => panic!("{other:?}"),
        }
        match roundtrip(&mut s, &Request::WalStat) {
            Response::WalStat(stats) => {
                assert_eq!(stats.replayed, 6);
                assert_eq!(stats.torn_tails, 0);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_save_truncates_the_log() {
        let dir = wal_dir("truncpoint");
        let config = wal_config(&dir);
        let server = serve_shard(&config).unwrap();
        let mut s = hello(server.addr());
        let coll = match roundtrip(
            &mut s,
            &Request::Create {
                name: "objs".into(),
            },
        ) {
            Response::Coll(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            roundtrip(
                &mut s,
                &Request::Insert {
                    coll,
                    region: Region::from_box(AaBox::new([1.0, 1.0], [2.0, 2.0])),
                }
            ),
            Response::Slot(0)
        );
        match roundtrip(&mut s, &Request::SnapshotSave) {
            Response::Bytes(_) => {}
            other => panic!("{other:?}"),
        }
        drop(s);
        server.shutdown();
        // Recovery past the truncation point replays nothing — the
        // snapshot carries the whole state.
        let server = serve_shard(&config).unwrap();
        assert_eq!(server.wal_stats().expect("wal enabled").replayed, 0);
        let mut s = hello(server.addr());
        match roundtrip(&mut s, &overlap_all(coll)) {
            Response::Ids(ids) => assert_eq!(ids, vec![0]),
            other => panic!("{other:?}"),
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_export_apply_clones_a_shard_over_sockets() {
        let dir_a = wal_dir("export-a");
        let dir_b = wal_dir("export-b");
        let server_a = serve_shard(&wal_config(&dir_a)).unwrap();
        let server_b = serve_shard(&wal_config(&dir_b)).unwrap();
        let mut a = hello(server_a.addr());
        let coll = match roundtrip(
            &mut a,
            &Request::Create {
                name: "objs".into(),
            },
        ) {
            Response::Coll(c) => c,
            other => panic!("{other:?}"),
        };
        for i in 0..3u64 {
            let lo = 10.0 * i as f64;
            roundtrip(
                &mut a,
                &Request::Insert {
                    coll,
                    region: Region::from_box(AaBox::new([lo, lo], [lo + 1.0, lo + 1.0])),
                },
            );
        }
        let segments = match roundtrip(&mut a, &Request::WalExport) {
            Response::WalSegments { complete, segments } => {
                assert!(complete, "never-truncated log exports completely");
                segments
            }
            other => panic!("{other:?}"),
        };
        let mut b = hello(server_b.addr());
        assert_eq!(
            roundtrip(
                &mut b,
                &Request::WalApply {
                    segments: segments.clone()
                }
            ),
            Response::Applied(4)
        );
        // A second apply must be refused: the shard is no longer pristine.
        match roundtrip(&mut b, &Request::WalApply { segments }) {
            Response::Err(m) => assert!(m.contains("pristine"), "{m}"),
            other => panic!("{other:?}"),
        }
        let want = match roundtrip(&mut a, &overlap_all(coll)) {
            Response::Ids(ids) => ids,
            other => panic!("{other:?}"),
        };
        match roundtrip(&mut b, &overlap_all(coll)) {
            Response::Ids(ids) => assert_eq!(ids, want),
            other => panic!("{other:?}"),
        }
        server_a.shutdown();
        server_b.shutdown();
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn shutdown_returns_despite_idle_and_midframe_connections() {
        let server = start();
        let idle = TcpStream::connect(server.addr()).unwrap();
        let mut partial = TcpStream::connect(server.addr()).unwrap();
        partial.write_all(&[3, 0]).unwrap(); // half a length prefix
        std::thread::sleep(std::time::Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "shutdown must not hang"
        );
        drop(idle);
        let mut buf = [0u8; 8];
        let _ = partial.read(&mut buf);
    }
}
