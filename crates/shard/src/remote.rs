//! The remote shard backend: a wire-protocol client plus a
//! write-through region mirror.
//!
//! A [`RemoteShard`] stands in for one shard **process**. The split of
//! responsibilities is the one that keeps the executors fast:
//!
//! * the shard process owns the **indexes** — corner queries,
//!   compaction, snapshot streaming and integrity checks run there;
//! * the client keeps a **mirror** of every slot's region, bounding
//!   box and liveness, maintained write-through on each mutation, so
//!   the executor read surface ([`ShardBackend::region`] /
//!   [`ShardBackend::bbox`] / liveness / lengths) never crosses the
//!   wire. Executors bind `&Region` out of the mirror exactly as they
//!   would out of a local database.
//!
//! Transport is a **connection pool**: up to [`RemoteShard::pool_size`]
//! lazily-dialed [`std::net::TcpStream`]s, each checked out for exactly
//! one request/response exchange, so concurrent executor threads and
//! `execute_fanout` workers probe the same shard **in parallel**
//! instead of convoying behind one socket (the single-mutex design
//! this replaced). A connection that breaks mid-use is discarded at
//! check-in and its successor re-dials; when every connection is
//! checked out, further requests wait for one to return rather than
//! dialing without bound. Idempotent reads (queries, stats, snapshot
//! pulls, checks) transparently reconnect and retry **once** after a
//! connection failure — the retry count surfaces through
//! [`crate::ShardBackend::try_corner_query`] into
//! `ExecStats::retries`; mutations never auto-retry — a lost ack is
//! indistinguishable from a lost request, and replaying an insert
//! would double it. [`RemoteShard::connect`] polls until the shard
//! process is reachable (readiness), validates the wire version, and
//! pulls the shard's snapshot to seed the mirror, rejecting a shard
//! whose universe disagrees with the cluster's — deployment
//! misconfiguration surfaces at connect time, not as wrong answers.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use scq_bbox::{Bbox, CornerQuery};
use scq_engine::{snapshot, CollectionId, CompactReport, IndexKind, SpatialDatabase};
use scq_region::{AaBox, Region};

use crate::backend::{ShardBackend, ShardError};
use crate::wire::{
    decode_response, encode_request, frame, read_frame, Request, Response, WireError, WIRE_VERSION,
};

/// One collection's mirrored slots.
#[derive(Clone, Debug, Default)]
struct MirrorCollection {
    name: String,
    regions: Vec<Region<2>>,
    bboxes: Vec<Bbox<2>>,
    live: Vec<bool>,
    live_count: usize,
}

/// The wire connection: lazily (re)established, dropped on any I/O
/// error so the next request starts from a clean handshake.
struct WireClient {
    addr: String,
    stream: Option<TcpStream>,
}

impl WireClient {
    fn connect_now(&mut self) -> Result<(), WireError> {
        let stream = TcpStream::connect(&self.addr).map_err(WireError::from)?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(WireError::from)?;
        self.stream = Some(stream);
        match self.exchange(&Request::Hello {
            version: WIRE_VERSION,
        }) {
            Ok(Response::Hello { version }) if version == WIRE_VERSION => Ok(()),
            Ok(Response::Hello { version }) => {
                self.stream = None;
                Err(WireError::VersionMismatch {
                    ours: WIRE_VERSION,
                    theirs: version,
                })
            }
            Ok(Response::Err(m)) => {
                self.stream = None;
                // The server names its own version in the rejection.
                Err(WireError::Remote(m))
            }
            Ok(other) => {
                self.stream = None;
                Err(WireError::Unexpected(format!(
                    "handshake answered {other:?}"
                )))
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// Sends one request and reads its response on the open stream.
    fn exchange(&mut self, req: &Request) -> Result<Response, WireError> {
        let stream = self.stream.as_mut().ok_or(WireError::Truncated)?;
        let send = (|| -> Result<Response, WireError> {
            stream.write_all(&frame(&encode_request(req))?)?;
            stream.flush()?;
            let payload = read_frame(stream)?.ok_or(WireError::Truncated)?;
            decode_response(&payload)
        })();
        if send.is_err() {
            self.stream = None;
        }
        send
    }

    /// One request with connection establishment; `idempotent` requests
    /// are retried once on a transport failure after reconnecting.
    /// Every retry attempted is counted into `retries` **before** its
    /// outcome is known, so a probe that retried and still failed is
    /// distinguishable from one that never got a second chance.
    fn request(
        &mut self,
        req: &Request,
        idempotent: bool,
        retries: &mut usize,
    ) -> Result<Response, WireError> {
        if self.stream.is_none() {
            self.connect_now()?;
        }
        match self.exchange(req) {
            Ok(resp) => Ok(resp),
            Err(WireError::VersionMismatch { ours, theirs }) => {
                Err(WireError::VersionMismatch { ours, theirs })
            }
            Err(e) if idempotent => {
                // transport died mid-exchange: reconnect, retry once
                let _ = e;
                *retries += 1;
                self.connect_now()?;
                self.exchange(req)
            }
            Err(e) => Err(e),
        }
    }
}

/// How many pooled wire connections a [`RemoteShard`] holds when no
/// explicit pool size is configured (the `pool` directive of a
/// [`crate::ClusterSpec`]).
pub const DEFAULT_POOL_SIZE: usize = 4;

/// Observable connection-pool counters (diagnostics and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Wire clients ever created (each dials lazily on its first use).
    pub created: usize,
    /// Broken clients discarded at check-in (their successors re-dial).
    pub discarded: usize,
    /// Most connections checked out at the same time — proof of
    /// concurrent probes on one shard.
    pub peak_in_flight: usize,
    /// Connections idle in the pool right now.
    pub idle: usize,
}

struct PoolState {
    idle: Vec<WireClient>,
    in_flight: usize,
    created: usize,
    discarded: usize,
    peak_in_flight: usize,
}

/// A bounded pool of [`WireClient`]s to one shard process. Checkout
/// hands out an idle connection when one exists, creates a fresh
/// lazily-dialing client while under the cap, and otherwise blocks
/// until a peer checks one back in — concurrency is bounded by the
/// configured pool size, never by a single serialized socket.
struct ConnectionPool {
    addr: String,
    cap: usize,
    state: Mutex<PoolState>,
    returned: Condvar,
}

impl ConnectionPool {
    fn new(addr: String, cap: usize) -> ConnectionPool {
        ConnectionPool {
            addr,
            cap: cap.max(1),
            state: Mutex::new(PoolState {
                idle: Vec::new(),
                in_flight: 0,
                created: 0,
                discarded: 0,
                peak_in_flight: 0,
            }),
            returned: Condvar::new(),
        }
    }

    fn checkout(&self) -> Result<WireClient, ShardError> {
        let lock_err = |_| ShardError::Rejected("connection pool lock poisoned".into());
        let mut st = self.state.lock().map_err(lock_err)?;
        loop {
            if let Some(client) = st.idle.pop() {
                st.in_flight += 1;
                st.peak_in_flight = st.peak_in_flight.max(st.in_flight);
                return Ok(client);
            }
            if st.in_flight < self.cap {
                st.in_flight += 1;
                st.created += 1;
                st.peak_in_flight = st.peak_in_flight.max(st.in_flight);
                return Ok(WireClient {
                    addr: self.addr.clone(),
                    stream: None,
                });
            }
            st = self.returned.wait(st).map_err(lock_err)?;
        }
    }

    /// Returns a client to the pool. A client whose connection died
    /// mid-use (its stream was dropped on the I/O error) is discarded
    /// here, so the pool never hands a known-broken connection to the
    /// next caller — they get a fresh lazily-dialing client instead.
    fn checkin(&self, client: WireClient) {
        let Ok(mut st) = self.state.lock() else {
            return;
        };
        st.in_flight -= 1;
        if client.stream.is_some() {
            st.idle.push(client);
        } else {
            st.discarded += 1;
        }
        drop(st);
        self.returned.notify_one();
    }

    fn stats(&self) -> PoolStats {
        let st = self.state.lock().expect("pool lock poisoned");
        PoolStats {
            created: st.created,
            discarded: st.discarded,
            peak_in_flight: st.peak_in_flight,
            idle: st.idle.len(),
        }
    }

    /// Severs every idle pooled connection in place (tests: the next
    /// users must transparently re-dial).
    #[cfg(test)]
    fn break_idle(&self) {
        let mut st = self.state.lock().expect("pool lock poisoned");
        for client in &mut st.idle {
            client.stream = None;
        }
    }
}

/// A shard living in another process, reached over the wire protocol.
pub struct RemoteShard {
    addr: String,
    universe: AaBox<2>,
    pool: ConnectionPool,
    collections: Vec<MirrorCollection>,
    by_name: HashMap<String, usize>,
}

impl RemoteShard {
    /// [`RemoteShard::connect_pooled`] with [`DEFAULT_POOL_SIZE`]
    /// connections.
    pub fn connect(addr: &str, universe: AaBox<2>, wait: Duration) -> Result<Self, ShardError> {
        Self::connect_pooled(addr, universe, wait, DEFAULT_POOL_SIZE)
    }

    /// Connects to a shard process, polling until it is reachable (at
    /// most `wait`), then handshakes and seeds the mirror from the
    /// shard's current snapshot. Fails on a wire version mismatch or
    /// when the shard's universe differs from `universe` — a
    /// misconfigured deployment must not come up quietly. The shard
    /// holds at most `pool_size` concurrent wire connections, each
    /// dialed lazily on first use.
    pub fn connect_pooled(
        addr: &str,
        universe: AaBox<2>,
        wait: Duration,
        pool_size: usize,
    ) -> Result<Self, ShardError> {
        let pool = ConnectionPool::new(addr.to_owned(), pool_size);
        let mut client = pool.checkout()?;
        let deadline = Instant::now() + wait;
        loop {
            match client.connect_now() {
                Ok(()) => break,
                // Version mismatches and handshake rejections never
                // heal by waiting; only connection refusals are
                // readiness.
                Err(e @ WireError::VersionMismatch { .. }) | Err(e @ WireError::Remote(_)) => {
                    pool.checkin(client);
                    return Err(e.into());
                }
                Err(e) => {
                    if Instant::now() >= deadline {
                        pool.checkin(client);
                        return Err(ShardError::Wire(e));
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        pool.checkin(client);
        let mut shard = RemoteShard {
            addr: addr.to_owned(),
            universe,
            pool,
            collections: Vec::new(),
            by_name: HashMap::new(),
        };
        let stream = shard.snapshot_stream()?;
        let decoded = shard.decode_stream(&stream)?;
        shard.commit_mirror(&decoded);
        Ok(shard)
    }

    /// The shard process address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The configured connection-pool size.
    pub fn pool_size(&self) -> usize {
        self.pool.cap
    }

    /// Connection-pool counters (dials, discards, peak concurrency).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Whether the shard holds no collections at all (a fresh process;
    /// the only state a cluster may be assembled over without a
    /// manifest).
    pub fn is_pristine(&self) -> bool {
        self.collections.is_empty()
    }

    fn request(&self, req: &Request, idempotent: bool) -> Result<Response, ShardError> {
        let mut retries = 0;
        self.request_retrying(req, idempotent, &mut retries)
    }

    /// One pooled request/response exchange, accumulating transport
    /// retries into `retries` whether the exchange succeeds or not.
    fn request_retrying(
        &self,
        req: &Request,
        idempotent: bool,
        retries: &mut usize,
    ) -> Result<Response, ShardError> {
        let mut client = self.pool.checkout()?;
        let result = client.request(req, idempotent, retries);
        self.pool.checkin(client);
        result.map_err(ShardError::from)
    }

    /// Decodes and validates an `SCQS` stream (exactly like a shard
    /// process would) without committing anything.
    fn decode_stream(&self, stream: &[u8]) -> Result<SpatialDatabase<2>, ShardError> {
        let db: SpatialDatabase<2> = snapshot::load(stream)
            .map_err(|e| ShardError::Rejected(format!("bad shard snapshot: {e}")))?;
        if db.universe() != &self.universe {
            return Err(ShardError::Rejected(format!(
                "shard {} universe {:?} differs from the cluster universe {:?}",
                self.addr,
                db.universe(),
                self.universe
            )));
        }
        Ok(db)
    }

    /// Replaces the mirror with the contents of a decoded stream.
    fn commit_mirror(&mut self, db: &SpatialDatabase<2>) {
        self.collections = db
            .collections()
            .map(|coll| {
                let n = db.collection_len(coll);
                let mut m = MirrorCollection {
                    name: db.collection_name(coll).to_owned(),
                    regions: Vec::with_capacity(n),
                    bboxes: Vec::with_capacity(n),
                    live: Vec::with_capacity(n),
                    live_count: db.live_len(coll),
                };
                for index in db.object_indices(coll) {
                    let obj = scq_engine::ObjectRef {
                        collection: coll,
                        index,
                    };
                    m.regions.push(db.region(obj).clone());
                    m.bboxes.push(db.bbox(obj));
                    m.live.push(db.is_live(obj));
                }
                m
            })
            .collect();
        self.by_name = self
            .collections
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
    }

    fn coll(&self, coll: CollectionId) -> &MirrorCollection {
        &self.collections[coll.0]
    }
}

impl ShardBackend for RemoteShard {
    fn describe(&self) -> String {
        format!("remote:{}", self.addr)
    }

    fn universe(&self) -> &AaBox<2> {
        &self.universe
    }

    fn create_collection(&mut self, name: &str) -> Result<CollectionId, ShardError> {
        if let Some(&i) = self.by_name.get(name) {
            return Ok(CollectionId(i));
        }
        let resp = self.request(
            &Request::Create {
                name: name.to_owned(),
            },
            false,
        )?;
        let id = match resp {
            Response::Coll(id) => id,
            Response::Err(m) => return Err(ShardError::Rejected(m)),
            other => {
                return Err(ShardError::Wire(WireError::Unexpected(format!(
                    "CREATE answered {other:?}"
                ))))
            }
        };
        // Shards create collections in lockstep with the router; a
        // shard that numbers them differently is serving someone else.
        if id.0 != self.collections.len() {
            return Err(ShardError::Rejected(format!(
                "shard {} numbered collection {name:?} as {} (expected {}): \
                 shard state is out of lockstep with the router",
                self.addr,
                id.0,
                self.collections.len()
            )));
        }
        self.collections.push(MirrorCollection {
            name: name.to_owned(),
            ..MirrorCollection::default()
        });
        self.by_name.insert(name.to_owned(), id.0);
        Ok(id)
    }

    fn collection_id(&self, name: &str) -> Option<CollectionId> {
        self.by_name.get(name).map(|&i| CollectionId(i))
    }

    fn collection_len(&self, coll: CollectionId) -> usize {
        self.coll(coll).regions.len()
    }

    fn live_len(&self, coll: CollectionId) -> usize {
        self.coll(coll).live_count
    }

    fn is_live(&self, coll: CollectionId, local: usize) -> bool {
        self.coll(coll).live[local]
    }

    fn region(&self, coll: CollectionId, local: usize) -> &Region<2> {
        &self.coll(coll).regions[local]
    }

    fn bbox(&self, coll: CollectionId, local: usize) -> Bbox<2> {
        self.coll(coll).bboxes[local]
    }

    fn insert(&mut self, coll: CollectionId, region: Region<2>) -> Result<usize, ShardError> {
        let resp = self.request(
            &Request::Insert {
                coll,
                region: region.clone(),
            },
            false,
        )?;
        let local = match resp {
            Response::Slot(local) => local as usize,
            Response::Err(m) => return Err(ShardError::Rejected(m)),
            other => {
                return Err(ShardError::Wire(WireError::Unexpected(format!(
                    "INSERT answered {other:?}"
                ))))
            }
        };
        let m = &mut self.collections[coll.0];
        if local != m.regions.len() {
            return Err(ShardError::Rejected(format!(
                "shard {} handed out slot {local}, mirror expected {}: \
                 shard state is out of lockstep with the router",
                self.addr,
                m.regions.len()
            )));
        }
        m.bboxes.push(region.bbox());
        m.regions.push(region);
        m.live.push(true);
        m.live_count += 1;
        Ok(local)
    }

    fn remove(&mut self, coll: CollectionId, local: usize) -> Result<bool, ShardError> {
        let resp = self.request(
            &Request::Remove {
                coll,
                local: local as u64,
            },
            false,
        )?;
        match resp {
            Response::Flag(removed) => {
                let m = &mut self.collections[coll.0];
                if removed != m.live[local] {
                    return Err(ShardError::Rejected(format!(
                        "shard {} liveness for slot {local} disagrees with the mirror",
                        self.addr
                    )));
                }
                if removed {
                    m.live[local] = false;
                    m.live_count -= 1;
                }
                Ok(removed)
            }
            Response::Err(m) => Err(ShardError::Rejected(m)),
            other => Err(ShardError::Wire(WireError::Unexpected(format!(
                "REMOVE answered {other:?}"
            )))),
        }
    }

    fn update(
        &mut self,
        coll: CollectionId,
        local: usize,
        region: Region<2>,
    ) -> Result<bool, ShardError> {
        let resp = self.request(
            &Request::Update {
                coll,
                local: local as u64,
                region: region.clone(),
            },
            false,
        )?;
        match resp {
            Response::Flag(updated) => {
                if updated {
                    let m = &mut self.collections[coll.0];
                    m.bboxes[local] = region.bbox();
                    m.regions[local] = region;
                }
                Ok(updated)
            }
            Response::Err(m) => Err(ShardError::Rejected(m)),
            other => Err(ShardError::Wire(WireError::Unexpected(format!(
                "UPDATE answered {other:?}"
            )))),
        }
    }

    fn try_corner_query(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<2>,
        out: &mut Vec<u64>,
        retries: &mut usize,
    ) -> Result<(), ShardError> {
        let resp = self.request_retrying(
            &Request::Query {
                coll,
                kind,
                query: *q,
            },
            true,
            retries,
        )?;
        match resp {
            Response::Ids(ids) => {
                out.extend(ids);
                Ok(())
            }
            Response::Err(m) => Err(ShardError::Rejected(m)),
            other => Err(ShardError::Wire(WireError::Unexpected(format!(
                "QUERY answered {other:?}"
            )))),
        }
    }

    fn compact(&mut self) -> Result<CompactReport, ShardError> {
        let resp = self.request(&Request::Compact, false)?;
        let (reclaimed, remap) = match resp {
            Response::Remap { reclaimed, remap } => (reclaimed, remap),
            Response::Err(m) => return Err(ShardError::Rejected(m)),
            other => {
                return Err(ShardError::Wire(WireError::Unexpected(format!(
                    "COMPACT answered {other:?}"
                ))))
            }
        };
        if remap.len() != self.collections.len() {
            return Err(ShardError::Rejected(format!(
                "shard {} compacted {} collections, mirror holds {}",
                self.addr,
                remap.len(),
                self.collections.len()
            )));
        }
        // Apply the shard's remap to the mirror: live slots shift down
        // in order, dropped slots disappear.
        for (m, coll_remap) in self.collections.iter_mut().zip(&remap) {
            if coll_remap.len() != m.regions.len() {
                return Err(ShardError::Rejected(format!(
                    "shard {} remap covers {} slots, mirror holds {}",
                    self.addr,
                    coll_remap.len(),
                    m.regions.len()
                )));
            }
            let old_regions = std::mem::take(&mut m.regions);
            let old_bboxes = std::mem::take(&mut m.bboxes);
            let old_live = std::mem::take(&mut m.live);
            let survivors = coll_remap.iter().flatten().count();
            m.regions = vec![Region::empty(); survivors];
            m.bboxes = vec![Bbox::Empty; survivors];
            m.live = vec![true; survivors];
            // Injectivity is checked explicitly: a desynced shard
            // mapping two live slots onto one target would otherwise
            // silently drop one region and leave another slot empty.
            let mut assigned = vec![false; survivors];
            for (old, new) in coll_remap.iter().enumerate() {
                let Some(new) = *new else { continue };
                let new = new as usize;
                if new >= survivors || !old_live[old] || assigned[new] {
                    return Err(ShardError::Rejected(format!(
                        "shard {} remap is not a liveness-respecting bijection",
                        self.addr
                    )));
                }
                assigned[new] = true;
                m.regions[new] = old_regions[old].clone();
                m.bboxes[new] = old_bboxes[old];
            }
            m.live_count = survivors;
        }
        Ok(CompactReport {
            remap: remap
                .into_iter()
                .map(|coll| coll.into_iter().map(|s| s.map(|i| i as usize)).collect())
                .collect(),
            slots_reclaimed: reclaimed as usize,
        })
    }

    fn check(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // The shard's own structural check…
        match self.request(&Request::Check, true) {
            Ok(Response::Problems(ps)) => problems.extend(ps),
            Ok(Response::Err(m)) => problems.push(format!("remote check failed: {m}")),
            Ok(other) => problems.push(format!("CHECK answered {other:?}")),
            Err(e) => problems.push(format!("remote check unreachable: {e}")),
        }
        // …plus a mirror-vs-shard census: slot and live counts must
        // agree per collection or the mirror has drifted.
        match self.request(&Request::Stat, true) {
            Ok(Response::Stat(rows)) => {
                if rows.len() != self.collections.len() {
                    problems.push(format!(
                        "shard reports {} collections, mirror holds {}",
                        rows.len(),
                        self.collections.len()
                    ));
                } else {
                    for ((name, slots, live), m) in rows.iter().zip(&self.collections) {
                        if name != &m.name
                            || *slots as usize != m.regions.len()
                            || *live as usize != m.live_count
                        {
                            problems.push(format!(
                                "mirror drift on {:?}: shard has {slots} slots / {live} live, \
                                 mirror has {} / {}",
                                m.name,
                                m.regions.len(),
                                m.live_count
                            ));
                        }
                    }
                }
            }
            Ok(other) => problems.push(format!("STAT answered {other:?}")),
            Err(e) => problems.push(format!("remote stat unreachable: {e}")),
        }
        problems
    }

    fn snapshot_stream(&self) -> Result<Bytes, ShardError> {
        match self.request(&Request::SnapshotSave, true)? {
            Response::Bytes(bytes) => Ok(bytes.into()),
            Response::Err(m) => Err(ShardError::Rejected(m)),
            other => Err(ShardError::Wire(WireError::Unexpected(format!(
                "SNAPSHOT SAVE answered {other:?}"
            )))),
        }
    }

    fn load_snapshot(&mut self, stream: &[u8]) -> Result<(), ShardError> {
        // Validate locally first (a stream the mirror cannot decode
        // must not reach the shard process at all), then ship it, and
        // only commit the mirror once the shard has accepted — a
        // shard-side failure must leave mirror and shard agreeing on
        // the OLD data, not silently describing different worlds.
        let decoded = self.decode_stream(stream)?;
        match self.request(
            &Request::SnapshotLoad {
                stream: stream.to_vec(),
            },
            false,
        )? {
            Response::Ok => {
                self.commit_mirror(&decoded);
                Ok(())
            }
            Response::Err(m) => Err(ShardError::Rejected(m)),
            other => Err(ShardError::Wire(WireError::Unexpected(format!(
                "SNAPSHOT LOAD answered {other:?}"
            )))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve_shard, ShardServerConfig};

    fn universe() -> AaBox<2> {
        AaBox::new([0.0, 0.0], [100.0, 100.0])
    }

    fn start() -> (crate::server::ShardServerHandle, RemoteShard) {
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .unwrap();
        let shard = RemoteShard::connect(
            &server.addr().to_string(),
            universe(),
            Duration::from_secs(5),
        )
        .unwrap();
        (server, shard)
    }

    fn boxed(x: f64, y: f64, w: f64, h: f64) -> Region<2> {
        Region::from_box(AaBox::new([x, y], [x + w, y + h]))
    }

    /// Drives the same mutation script through a RemoteShard and a
    /// LocalShard; every read answer must match.
    #[test]
    fn remote_backend_matches_local_backend() {
        let (server, mut remote) = start();
        let mut local = crate::LocalShard::new(universe());
        let c_r = remote.create_collection("objs").unwrap();
        let c_l = local.create_collection("objs").unwrap();
        assert_eq!(c_r, c_l);
        for i in 0..12 {
            let t = (i * 17 % 89) as f64;
            let r = boxed(t, 90.0 - t, 3.0, 4.0);
            assert_eq!(
                remote.insert(c_r, r.clone()).unwrap(),
                local.insert(c_l, r).unwrap()
            );
        }
        assert_eq!(
            remote.remove(c_r, 3).unwrap(),
            local.remove(c_l, 3).unwrap()
        );
        assert_eq!(
            remote.update(c_r, 5, boxed(1.0, 1.0, 2.0, 2.0)).unwrap(),
            local.update(c_l, 5, boxed(1.0, 1.0, 2.0, 2.0)).unwrap()
        );
        assert_eq!(remote.collection_len(c_r), local.collection_len(c_l));
        assert_eq!(remote.live_len(c_r), local.live_len(c_l));
        for local_slot in 0..remote.collection_len(c_r) {
            assert_eq!(
                remote.is_live(c_r, local_slot),
                local.is_live(c_l, local_slot)
            );
            assert!(remote
                .region(c_r, local_slot)
                .same_set(local.region(c_l, local_slot)));
            assert_eq!(remote.bbox(c_r, local_slot), local.bbox(c_l, local_slot));
        }
        let q = CornerQuery::unconstrained().and_overlaps(&Bbox::new([0.0, 0.0], [50.0, 95.0]));
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            let mut retries = 0;
            remote
                .try_corner_query(c_r, kind, &q, &mut a, &mut retries)
                .unwrap();
            local
                .try_corner_query(c_l, kind, &q, &mut b, &mut retries)
                .unwrap();
            assert_eq!(retries, 0, "healthy backends never retry");
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{kind:?}");
        }
        assert!(remote.check().is_empty(), "{:?}", remote.check());
        // compaction: same remap, same surviving answers
        let rr = remote.compact().unwrap();
        let lr = local.compact().unwrap();
        assert_eq!(rr.remap, lr.remap);
        assert_eq!(rr.slots_reclaimed, lr.slots_reclaimed);
        assert_eq!(remote.collection_len(c_r), local.collection_len(c_l));
        assert!(remote.check().is_empty(), "{:?}", remote.check());
        // snapshot stream round trip into a fresh local backend
        let stream = remote.snapshot_stream().unwrap();
        let mut fresh = crate::LocalShard::new(universe());
        fresh.load_snapshot(&stream).unwrap();
        assert_eq!(fresh.collection_len(c_r), remote.collection_len(c_r));
        server.shutdown();
    }

    #[test]
    fn connect_times_out_against_a_dead_address() {
        let err = RemoteShard::connect(
            "127.0.0.1:1", // reserved port, nothing listens
            universe(),
            Duration::from_millis(300),
        )
        .err()
        .expect("connect must fail");
        assert!(matches!(err, ShardError::Wire(_)), "{err}");
    }

    #[test]
    fn universe_mismatch_is_rejected_at_connect() {
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 500.0, // shard disagrees with the cluster
            ..ShardServerConfig::default()
        })
        .unwrap();
        let err = RemoteShard::connect(
            &server.addr().to_string(),
            universe(),
            Duration::from_secs(5),
        )
        .err()
        .expect("universe mismatch must be rejected");
        assert!(err.to_string().contains("universe"), "{err}");
        server.shutdown();
    }

    #[test]
    fn queries_survive_a_server_side_connection_drop() {
        let (server, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(10.0, 10.0, 5.0, 5.0)).unwrap();
        // Sever every pooled connection in place… the next idempotent
        // request transparently re-dials.
        remote.pool.break_idle();
        let mut out = Vec::new();
        remote
            .try_corner_query(
                c,
                IndexKind::RTree,
                &CornerQuery::unconstrained(),
                &mut out,
                &mut 0,
            )
            .unwrap();
        assert_eq!(out, vec![0]);
        server.shutdown();
    }

    #[test]
    fn sequential_requests_reuse_one_pooled_connection() {
        let (server, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        for i in 0..6 {
            remote
                .insert(c, boxed(i as f64 * 10.0, 5.0, 3.0, 3.0))
                .unwrap();
            let mut out = Vec::new();
            remote
                .try_corner_query(
                    c,
                    IndexKind::Scan,
                    &CornerQuery::unconstrained(),
                    &mut out,
                    &mut 0,
                )
                .unwrap();
            assert_eq!(out.len(), i + 1);
        }
        let stats = remote.pool_stats();
        assert_eq!(
            stats.created, 1,
            "sequential traffic convoys onto one connection: {stats:?}"
        );
        assert_eq!(stats.discarded, 0, "{stats:?}");
        assert_eq!(stats.idle, 1, "{stats:?}");
        server.shutdown();
    }

    #[test]
    fn broken_connections_are_discarded_and_redialed() {
        let (server, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap();
        let before = remote.pool_stats();
        // Kill the server: the in-flight exchange fails, the broken
        // connection must NOT be pooled again.
        server.shutdown();
        let mut out = Vec::new();
        assert!(remote
            .try_corner_query(
                c,
                IndexKind::RTree,
                &CornerQuery::unconstrained(),
                &mut out,
                &mut 0,
            )
            .is_err());
        let after = remote.pool_stats();
        assert_eq!(after.idle, 0, "a dead connection went back to the pool");
        assert!(after.discarded > before.discarded, "{after:?}");
    }

    #[test]
    fn mutations_fail_cleanly_after_shutdown() {
        let (server, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        server.shutdown();
        let err = remote.insert(c, boxed(1.0, 1.0, 1.0, 1.0)).err().unwrap();
        assert!(matches!(err, ShardError::Wire(_)), "{err}");
    }
}
