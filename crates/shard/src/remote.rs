//! The remote shard backend: a wire-protocol client plus a
//! write-through region mirror, replicated across an ordered set of
//! shard processes.
//!
//! A [`RemoteShard`] stands in for one shard — an **ordered replica
//! set** of processes, the first of which is the write primary. The
//! split of responsibilities is the one that keeps the executors fast:
//!
//! * the shard process owns the **indexes** — corner queries,
//!   compaction, snapshot streaming and integrity checks run there;
//! * the client keeps a **mirror** of every slot's region, bounding
//!   box and liveness, maintained write-through on each mutation, so
//!   the executor read surface ([`ShardBackend::region`] /
//!   [`ShardBackend::bbox`] / liveness / lengths) never crosses the
//!   wire. Executors bind `&Region` out of the mirror exactly as they
//!   would out of a local database.
//!
//! Transport depends on what the peer negotiates. A shard speaking
//! wire **v4 or later** gets a single **multiplexed connection**: every
//! concurrent request rides one socket under its own request id, the
//! responses come back in whatever order the shard finishes them
//! (large ones as chunked streams), and a reader thread matches each
//! to its waiter — concurrency without a socket per request. An older
//! peer falls back to the **connection pool**: up to
//! [`RemoteShard::pool_size`] lazily-dialed [`std::net::TcpStream`]s,
//! each checked out for exactly one request/response exchange, so
//! concurrent executor threads and `execute_fanout` workers still
//! probe the same shard **in parallel** instead of convoying behind
//! one socket. A connection that breaks mid-use is discarded and its
//! successor re-dials. Idempotent reads (queries, stats, snapshot
//! pulls, checks) transparently reconnect and retry **once** after a
//! connection failure — the retry count surfaces through
//! [`crate::ShardBackend::try_corner_query`] into
//! `ExecStats::retries`; mutations never auto-retry — a lost ack is
//! indistinguishable from a lost request, and replaying an insert
//! would double it. [`RemoteShard::connect`] polls until the shard
//! process is reachable (readiness), validates the wire version, and
//! pulls the shard's snapshot to seed the mirror, rejecting a shard
//! whose universe disagrees with the cluster's — deployment
//! misconfiguration surfaces at connect time, not as wrong answers.
//!
//! **Replication.** Mutations go through the **primary only** and are
//! never auto-retried or redirected — a dead primary is a loud named
//! error. A mutation the primary acks is then fanned out verbatim to
//! every other replica (write-through convergence): a replica whose
//! response disagrees with the primary's is a loud desync, while a
//! replica the fan-out cannot reach is marked **desynced** — excluded
//! from reads (its answers would disagree with the mirror) until a
//! snapshot load re-converges it. Corner-query reads try the primary
//! first and **fail over** in replica order on transport errors only;
//! an answer served by a non-primary is flagged stale
//! ([`crate::backend::ProbeTrace`]). Every address additionally sits
//! behind a **circuit breaker** ([`BreakerConfig`]): after K
//! consecutive transport failures the address is skipped for a
//! cooldown (no dial at all — a fast [`WireError::BreakerOpen`]), then
//! a half-open probe re-admits or re-trips it. The breaker clock is
//! injectable ([`RemoteShard::set_clock`]) so fault-injection tests
//! advance time without sleeping.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use scq_bbox::{Bbox, CornerQuery};
use scq_engine::{snapshot, CollectionId, CompactReport, IndexKind, SpatialDatabase};
use scq_region::{AaBox, Region};

use crate::backend::{ShardBackend, ShardError};
use crate::wire::{
    decode_mux, decode_response, encode_mux, encode_request, frame, is_mux, read_frame,
    MuxReassembly, Request, Response, WireError, EPOCHS_MIN_VERSION, MIN_WIRE_VERSION, MUX_CANCEL,
    MUX_MIN_VERSION, MUX_REQ, TRACED_MIN_VERSION, WIRE_VERSION,
};

/// One collection's mirrored slots.
#[derive(Clone, Debug, Default)]
struct MirrorCollection {
    name: String,
    regions: Vec<Region<2>>,
    bboxes: Vec<Bbox<2>>,
    live: Vec<bool>,
    live_count: usize,
    /// The mirror's copy of the shard's per-collection mutation epoch,
    /// bumped on every effective write-through so it stays in lockstep
    /// with the shard process ([`ShardBackend::check`] verifies).
    epoch: u64,
}

/// The wire connection: lazily (re)established, dropped on any I/O
/// error so the next request starts from a clean handshake.
struct WireClient {
    addr: String,
    stream: Option<TcpStream>,
    /// The wire version the last successful handshake settled on.
    /// Requests are only wrapped in trace frames when this reaches
    /// [`TRACED_MIN_VERSION`] — an older peer never sees an opcode it
    /// cannot decode.
    version: u16,
}

/// Parses the version ceiling a server named in its handshake
/// rejection ("shard speaks 2..=3, client speaks 4" → 3). A server
/// from before windowed negotiation names one bare version — no
/// "..=" — and gets `None`; the caller falls back to the floor.
fn server_ceiling(message: &str) -> Option<u16> {
    let rest = message.split("..=").nth(1)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

impl WireClient {
    fn connect_now(&mut self) -> Result<(), WireError> {
        match self.handshake(WIRE_VERSION) {
            // The server names what it speaks in the rejection; retry
            // at its ceiling. A server from before windowed rejections
            // names one bare version — the floor keeps those reachable.
            Err(WireError::Remote(m)) if m.contains("version mismatch") => {
                let theirs = server_ceiling(&m).unwrap_or(MIN_WIRE_VERSION);
                self.handshake(theirs.clamp(MIN_WIRE_VERSION, WIRE_VERSION))
            }
            other => other,
        }
    }

    fn handshake(&mut self, ours: u16) -> Result<(), WireError> {
        let stream = TcpStream::connect(&self.addr).map_err(WireError::from)?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(WireError::from)?;
        self.stream = Some(stream);
        match self.exchange(&Request::Hello { version: ours }) {
            // The server answers the highest version both sides speak.
            Ok(Response::Hello { version }) if (MIN_WIRE_VERSION..=ours).contains(&version) => {
                self.version = version;
                Ok(())
            }
            Ok(Response::Hello { version }) => {
                self.stream = None;
                Err(WireError::VersionMismatch {
                    ours,
                    theirs: version,
                })
            }
            Ok(Response::Err(m)) => {
                self.stream = None;
                // The server names its own version in the rejection.
                Err(WireError::Remote(m))
            }
            Ok(other) => {
                self.stream = None;
                Err(WireError::Unexpected(format!(
                    "handshake answered {other:?}"
                )))
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// Sends one request and reads its response on the open stream.
    fn exchange(&mut self, req: &Request) -> Result<Response, WireError> {
        let stream = self.stream.as_mut().ok_or(WireError::Truncated)?;
        let send = (|| -> Result<Response, WireError> {
            stream.write_all(&frame(&encode_request(req))?)?;
            stream.flush()?;
            let payload = read_frame(stream)?.ok_or(WireError::Truncated)?;
            decode_response(&payload)
        })();
        if send.is_err() {
            self.stream = None;
        }
        send
    }

    /// One request with connection establishment; `idempotent` requests
    /// are retried once on a transport failure after reconnecting.
    /// Every retry attempted is counted into `retries` **before** its
    /// outcome is known, so a probe that retried and still failed is
    /// distinguishable from one that never got a second chance.
    fn request(
        &mut self,
        req: &Request,
        idempotent: bool,
        retries: &mut usize,
    ) -> Result<Response, WireError> {
        if self.stream.is_none() {
            self.connect_now()?;
        }
        // Stamp the caller's trace onto the frame — but only when the
        // negotiated protocol can carry it; an old peer keeps getting
        // the plain request it understands.
        let traced;
        let req = match scq_obs::current_id() {
            Some(trace_id) if self.version >= TRACED_MIN_VERSION => {
                traced = Request::Traced {
                    trace_id,
                    inner: Box::new(req.clone()),
                };
                &traced
            }
            _ => req,
        };
        match self.exchange(req) {
            Ok(resp) => Ok(resp),
            Err(WireError::VersionMismatch { ours, theirs }) => {
                Err(WireError::VersionMismatch { ours, theirs })
            }
            Err(e) if idempotent => {
                // transport died mid-exchange: reconnect, retry once
                let _ = e;
                *retries += 1;
                scq_obs::event("retry", format!("addr={}", self.addr));
                self.connect_now()?;
                self.exchange(req)
            }
            Err(e) => Err(e),
        }
    }
}

/// How long a multiplexed request waits for its response before the
/// client cancels it. Generous: large snapshot streams take real time.
const MUX_REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

/// One multiplexed wire connection: a single socket carrying many
/// logical requests at once, each tagged with a request id. The write
/// half serializes request frames under a mutex; a reader thread owns
/// the receive side, reassembles chunked responses per id, and
/// completes whichever pending request each response names —
/// out-of-order by design. Death (socket error, EOF, protocol
/// violation) fails every pending request with a transport error; the
/// pool discards the corpse and dials a successor.
struct MuxConn {
    addr: String,
    version: u16,
    writer: Mutex<Option<TcpStream>>,
    /// Pending requests by id: `None` while in flight, `Some(result)`
    /// once the reader (or death) resolves them. A waiter that gave up
    /// removes its slot, so a late answer finds nothing and is dropped.
    slots: Mutex<HashMap<u64, Option<Result<Response, WireError>>>>,
    completed: Condvar,
    next_id: AtomicU64,
    dead: AtomicBool,
}

impl MuxConn {
    /// Wraps a freshly-handshaken stream and starts the reader thread.
    fn spawn(stream: TcpStream, version: u16, addr: String) -> Result<Arc<MuxConn>, WireError> {
        // The reader blocks until the server has something to say;
        // liveness is enforced per request ([`MUX_REQUEST_TIMEOUT`]),
        // not by a socket-wide read timeout that would kill idle
        // connections.
        stream.set_read_timeout(None).map_err(WireError::from)?;
        let read_half = stream.try_clone().map_err(WireError::from)?;
        let conn = Arc::new(MuxConn {
            addr,
            version,
            writer: Mutex::new(Some(stream)),
            slots: Mutex::new(HashMap::new()),
            completed: Condvar::new(),
            next_id: AtomicU64::new(1),
            dead: AtomicBool::new(false),
        });
        let reader = Arc::clone(&conn);
        std::thread::Builder::new()
            .name("scq-mux-reader".into())
            .spawn(move || reader.read_loop(read_half))
            .map_err(WireError::from)?;
        Ok(conn)
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    fn death(&self) -> WireError {
        WireError::Io(format!("multiplexed connection to {} died", self.addr))
    }

    /// Reader thread: reassembles response streams per request id and
    /// completes whichever pending exchange each one names.
    fn read_loop(&self, mut stream: TcpStream) {
        let mut reasm = MuxReassembly::new();
        let fatal = loop {
            let payload = match read_frame(&mut stream) {
                Ok(Some(payload)) => payload,
                // Clean EOF: the connection is simply gone.
                Ok(None) => break self.death(),
                // Mid-frame truncation, garbled length prefix, socket
                // error — keep the *named* transport error so every
                // stranded waiter learns what actually happened.
                Err(e) => break e,
            };
            // A negotiated-v4 server only sends mux frames; a peer
            // that sends anything else has lost framing.
            if !is_mux(&payload) {
                break WireError::Unexpected("non-mux frame on multiplexed connection".into());
            }
            let frame = match decode_mux(&payload) {
                Ok(f) => f,
                Err(e) => break e,
            };
            match reasm.accept(frame) {
                // A response that fails to decode is an answer to ONE
                // request, not a transport death: the framing is
                // intact, every other request keeps flowing.
                Ok(Some((id, bytes))) => self.complete(id, decode_response(&bytes)),
                Ok(None) => {}
                Err(e) => break e,
            }
        };
        self.die_with(fatal);
    }

    /// Hands one request's result to its waiter.
    fn complete(&self, id: u64, result: Result<Response, WireError>) {
        let Ok(mut slots) = self.slots.lock() else {
            return;
        };
        if let Some(slot) = slots.get_mut(&id) {
            *slot = Some(result);
            drop(slots);
            self.completed.notify_all();
        }
    }

    /// Marks the connection dead and fails every pending request — a
    /// response that will never arrive must not strand its waiter.
    fn die(&self) {
        let cause = self.death();
        self.die_with(cause);
    }

    /// [`MuxConn::die`], but pending requests fail with the specific
    /// transport error that killed the connection (a truncated frame
    /// surfaces as [`WireError::Truncated`], not a generic death).
    fn die_with(&self, cause: WireError) {
        self.dead.store(true, Ordering::Release);
        if let Ok(mut writer) = self.writer.lock() {
            *writer = None; // closes the socket; the reader unblocks
        }
        if let Ok(mut slots) = self.slots.lock() {
            for slot in slots.values_mut() {
                if slot.is_none() {
                    *slot = Some(Err(cause.clone()));
                }
            }
        }
        self.completed.notify_all();
    }

    /// Severs the socket in place (tests): the reader sees EOF and the
    /// connection dies exactly as on a real transport failure.
    #[cfg(test)]
    fn sever(&self) {
        if let Ok(writer) = self.writer.lock() {
            if let Some(stream) = writer.as_ref() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    fn write_frame(&self, bytes: &[u8]) -> Result<(), WireError> {
        let mut writer = self
            .writer
            .lock()
            .map_err(|_| WireError::Io("mux writer lock poisoned".into()))?;
        let Some(stream) = writer.as_mut() else {
            return Err(self.death());
        };
        let sent = stream.write_all(bytes).and_then(|()| stream.flush());
        drop(writer);
        if let Err(e) = sent {
            self.die();
            return Err(WireError::from(e));
        }
        Ok(())
    }

    /// One logical request/response exchange: registers a fresh id,
    /// writes the request frame, and blocks until the reader completes
    /// that id — responses interleave freely across ids in between. A
    /// request the server has not answered within
    /// [`MUX_REQUEST_TIMEOUT`] is cancelled best-effort and fails as a
    /// transport timeout.
    fn exchange(&self, req: &Request) -> Result<Response, WireError> {
        if self.is_dead() {
            return Err(self.death());
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Stamp the caller's trace onto the request exactly like the
        // legacy client does (every mux-capable peer decodes it).
        let traced;
        let req = match scq_obs::current_id() {
            Some(trace_id) if self.version >= TRACED_MIN_VERSION => {
                traced = Request::Traced {
                    trace_id,
                    inner: Box::new(req.clone()),
                };
                &traced
            }
            _ => req,
        };
        let bytes = frame(&encode_mux(MUX_REQ, id, &encode_request(req)))?;
        let lock_err = |_| WireError::Io("mux slot lock poisoned".into());
        self.slots.lock().map_err(lock_err)?.insert(id, None);
        if let Err(e) = self.write_frame(&bytes) {
            if let Ok(mut slots) = self.slots.lock() {
                slots.remove(&id);
            }
            return Err(e);
        }
        let deadline = Instant::now() + MUX_REQUEST_TIMEOUT;
        let mut slots = self.slots.lock().map_err(lock_err)?;
        loop {
            if slots.get(&id).is_some_and(|slot| slot.is_some()) {
                return slots
                    .remove(&id)
                    .flatten()
                    .expect("slot was checked complete");
            }
            let now = Instant::now();
            if now >= deadline {
                slots.remove(&id);
                drop(slots);
                // Tell the server to stop working on it; the answer
                // would be dropped at `complete` anyway.
                if let Ok(cancel) = frame(&encode_mux(MUX_CANCEL, id, &[])) {
                    let _ = self.write_frame(&cancel);
                }
                return Err(WireError::Io(format!(
                    "request {id} to {} timed out after {:?}",
                    self.addr, MUX_REQUEST_TIMEOUT
                )));
            }
            slots = self
                .completed
                .wait_timeout(slots, deadline - now)
                .map_err(|_| WireError::Io("mux slot lock poisoned".into()))?
                .0;
        }
    }
}

/// How many pooled wire connections a [`RemoteShard`] holds when no
/// explicit pool size is configured (the `pool` directive of a
/// [`crate::ClusterSpec`]).
pub const DEFAULT_POOL_SIZE: usize = 4;

/// Consecutive transport failures that trip an address's circuit
/// breaker when no explicit threshold is configured (the `breaker`
/// directive of a [`crate::ClusterSpec`]).
pub const DEFAULT_BREAKER_THRESHOLD: usize = 3;

/// Default breaker cooldown in milliseconds: how long a tripped
/// address is skipped before a half-open probe re-admits it.
pub const DEFAULT_BREAKER_COOLDOWN_MS: u64 = 1000;

/// The breaker's time source. Injectable so fault-injection tests
/// advance "time" by swapping the closure's answer instead of
/// sleeping through real cooldowns.
pub type BreakerClock = Arc<dyn Fn() -> Instant + Send + Sync>;

/// Per-address circuit-breaker tuning: `threshold` consecutive
/// transport failures trip the address into a `cooldown`-long open
/// state during which every request fast-fails with
/// [`WireError::BreakerOpen`] instead of dialing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transport failures before the breaker opens
    /// (must be at least 1).
    pub threshold: usize,
    /// How long an open breaker skips the address before letting one
    /// half-open probe through.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: DEFAULT_BREAKER_THRESHOLD,
            cooldown: Duration::from_millis(DEFAULT_BREAKER_COOLDOWN_MS),
        }
    }
}

/// Observable circuit-breaker state for one address.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are being counted.
    #[default]
    Closed,
    /// Tripped: requests fast-fail without dialing until the cooldown
    /// elapses.
    Open,
    /// Cooldown elapsed: exactly this state lets probes through; the
    /// first success closes the breaker, the first failure re-trips it.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase token for status lines (`STAT` output).
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "tripped",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Internal breaker state machine (the open state carries its expiry).
#[derive(Clone, Copy, Debug)]
enum Breaker {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

/// Observable connection-pool counters (diagnostics and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Wire clients ever created (each dials lazily on its first use).
    pub created: usize,
    /// Broken clients discarded at check-in (their successors re-dial).
    pub discarded: usize,
    /// Most connections checked out at the same time — proof of
    /// concurrent probes on one shard.
    pub peak_in_flight: usize,
    /// Connections idle in the pool right now.
    pub idle: usize,
    /// Circuit-breaker position for this address.
    pub breaker: BreakerState,
    /// Times the breaker has ever tripped open (each re-trip counts).
    pub breaker_trips: usize,
    /// Transport failures since the last success (resets to 0 on any
    /// completed exchange).
    pub consecutive_failures: usize,
    /// The wire version the last successful handshake settled on
    /// (0 = never connected).
    pub wire_version: u16,
}

/// How the pool reaches its address — decided by the first successful
/// handshake and re-decided whenever the transport dies.
enum PoolMode {
    /// No handshake has succeeded yet.
    Unknown,
    /// The peer negotiated below v4: per-exchange pooled connections.
    Legacy,
    /// The peer speaks v4+: one multiplexed connection carries every
    /// concurrent request.
    Mux(Arc<MuxConn>),
}

/// The transport `route` resolved for one request.
enum Route {
    Mux(Arc<MuxConn>),
    Legacy(WireClient),
}

struct PoolState {
    mode: PoolMode,
    wire_version: u16,
    idle: Vec<WireClient>,
    in_flight: usize,
    created: usize,
    discarded: usize,
    peak_in_flight: usize,
    breaker: Breaker,
    consecutive_failures: usize,
    trips: usize,
}

/// A bounded pool of [`WireClient`]s to one shard process. Checkout
/// hands out an idle connection when one exists, creates a fresh
/// lazily-dialing client while under the cap, and otherwise blocks
/// until a peer checks one back in — concurrency is bounded by the
/// configured pool size, never by a single serialized socket.
struct ConnectionPool {
    addr: String,
    cap: usize,
    breaker_cfg: BreakerConfig,
    clock: BreakerClock,
    state: Mutex<PoolState>,
    /// Serializes mode-establishing dials: a burst of first requests
    /// opens ONE connection, not a stampede.
    dialing: Mutex<()>,
    returned: Condvar,
    /// Client-side instruments for this address: `pool.checkout.wait`
    /// (time callers block waiting for a pooled connection — observed
    /// on every checkout, so its count doubles as a request count) and
    /// `breaker.trips`. Snapshotted per replica and merged by
    /// [`RemoteShard`]'s `client_metrics`.
    registry: scq_obs::Registry,
    checkout_wait: scq_obs::Histogram,
    trips_counter: scq_obs::Counter,
}

impl ConnectionPool {
    fn new(addr: String, cap: usize, breaker_cfg: BreakerConfig) -> ConnectionPool {
        let registry = scq_obs::Registry::new();
        let checkout_wait = registry.histogram("pool.checkout.wait");
        let trips_counter = registry.counter("breaker.trips");
        ConnectionPool {
            addr,
            cap: cap.max(1),
            breaker_cfg,
            clock: Arc::new(Instant::now),
            state: Mutex::new(PoolState {
                mode: PoolMode::Unknown,
                wire_version: 0,
                idle: Vec::new(),
                in_flight: 0,
                created: 0,
                discarded: 0,
                peak_in_flight: 0,
                breaker: Breaker::Closed,
                consecutive_failures: 0,
                trips: 0,
            }),
            dialing: Mutex::new(()),
            returned: Condvar::new(),
            registry,
            checkout_wait,
            trips_counter,
        }
    }

    /// Whether the breaker lets a request through right now. An open
    /// breaker whose cooldown has elapsed transitions to half-open
    /// here — the caller's request becomes the probe that either
    /// closes or re-trips it.
    fn admits(&self) -> bool {
        let Ok(mut st) = self.state.lock() else {
            return false;
        };
        match st.breaker {
            Breaker::Closed | Breaker::HalfOpen => true,
            Breaker::Open { until } => {
                if (self.clock)() >= until {
                    st.breaker = Breaker::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Any completed exchange proves the transport works: reset the
    /// failure streak and close the breaker.
    fn note_success(&self) {
        let Ok(mut st) = self.state.lock() else {
            return;
        };
        st.consecutive_failures = 0;
        st.breaker = Breaker::Closed;
    }

    /// One transport failure: extend the streak; trip when the streak
    /// reaches the threshold (or immediately on a failed half-open
    /// probe — the address had one chance to prove itself).
    fn note_failure(&self) {
        let Ok(mut st) = self.state.lock() else {
            return;
        };
        st.consecutive_failures += 1;
        let trip = match st.breaker {
            Breaker::HalfOpen => true,
            Breaker::Closed => st.consecutive_failures >= self.breaker_cfg.threshold,
            Breaker::Open { .. } => false,
        };
        if trip {
            st.breaker = Breaker::Open {
                until: (self.clock)() + self.breaker_cfg.cooldown,
            };
            st.trips += 1;
            self.trips_counter.inc();
        }
    }

    /// One pooled request/response exchange behind the breaker: an
    /// open breaker fast-fails with [`WireError::BreakerOpen`] without
    /// dialing, and the exchange's outcome feeds the breaker (only
    /// transport failures count — a server that *answers*, even with
    /// an error, is reachable).
    fn request(
        &self,
        req: &Request,
        idempotent: bool,
        retries: &mut usize,
    ) -> Result<Response, ShardError> {
        if !self.admits() {
            return Err(ShardError::Wire(WireError::BreakerOpen {
                addr: self.addr.clone(),
            }));
        }
        self.request_unguarded(req, idempotent, retries)
    }

    /// [`ConnectionPool::request`] without the breaker gate: used by
    /// diagnostics ([`ShardBackend::check`]) and operator-driven
    /// resyncs (snapshot save/load), which must reach even a tripped
    /// address. Outcomes still feed the breaker.
    fn request_unguarded(
        &self,
        req: &Request,
        idempotent: bool,
        retries: &mut usize,
    ) -> Result<Response, ShardError> {
        // Whether a multiplexed connection existed when this request
        // started. If it did and has died, the re-dial below mirrors
        // the legacy client's "connection died mid-use" path, which
        // retries idempotent requests once (leaving a retry event); a
        // first-ever dial that fails does not retry.
        let had_conn = self
            .state
            .lock()
            .map(|st| matches!(st.mode, PoolMode::Mux(_)))
            .unwrap_or(false);
        let result = match self.route() {
            Ok(Route::Mux(conn)) => self.mux_request(&conn, req, idempotent, retries),
            Ok(Route::Legacy(mut client)) => {
                let r = client
                    .request(req, idempotent, retries)
                    .map_err(ShardError::from);
                self.checkin(client);
                r
            }
            Err(e) if idempotent && had_conn && is_transport(&e) => {
                let _ = e;
                *retries += 1;
                scq_obs::event("retry", format!("addr={}", self.addr));
                self.route().and_then(|route| match route {
                    Route::Mux(conn) => self.mux_exchange(&conn, req).map_err(ShardError::from),
                    Route::Legacy(mut client) => {
                        let r = client
                            .request(req, false, retries)
                            .map_err(ShardError::from);
                        self.checkin(client);
                        r
                    }
                })
            }
            Err(e) => Err(e),
        };
        match &result {
            Err(e) if is_transport(e) => self.note_failure(),
            _ => self.note_success(),
        }
        result
    }

    /// Resolves the transport for one request: the live multiplexed
    /// connection, a checked-out legacy client, or — when neither
    /// exists yet — a fresh dial whose negotiated version decides the
    /// pool's mode. A dead mux connection is discarded (exactly once)
    /// and replaced the same way.
    fn route(&self) -> Result<Route, ShardError> {
        let lock_err = |_| ShardError::Rejected("connection pool lock poisoned".into());
        loop {
            {
                let mut st = self.state.lock().map_err(lock_err)?;
                match &st.mode {
                    PoolMode::Legacy => {
                        drop(st);
                        return Ok(Route::Legacy(self.checkout()?));
                    }
                    PoolMode::Mux(conn) if !conn.is_dead() => {
                        return Ok(Route::Mux(Arc::clone(conn)));
                    }
                    PoolMode::Mux(_) => {
                        st.discarded += 1;
                        st.mode = PoolMode::Unknown;
                    }
                    PoolMode::Unknown => {}
                }
            }
            let dial_guard = self
                .dialing
                .lock()
                .map_err(|_| ShardError::Rejected("connection pool lock poisoned".into()))?;
            // Someone may have established the mode while this thread
            // waited for the dial lock; re-check before dialing.
            {
                let st = self.state.lock().map_err(lock_err)?;
                if !matches!(st.mode, PoolMode::Unknown) {
                    continue;
                }
            }
            let started = Instant::now();
            let mut client = WireClient {
                addr: self.addr.clone(),
                stream: None,
                version: MIN_WIRE_VERSION,
            };
            client.connect_now().map_err(ShardError::from)?;
            let version = client.version;
            let mut st = self.state.lock().map_err(lock_err)?;
            st.created += 1;
            st.wire_version = version;
            if version >= MUX_MIN_VERSION {
                let stream = client.stream.take().expect("handshake left a stream");
                let conn =
                    MuxConn::spawn(stream, version, self.addr.clone()).map_err(ShardError::from)?;
                st.mode = PoolMode::Mux(Arc::clone(&conn));
                drop(dial_guard);
                return Ok(Route::Mux(conn));
            }
            // Below v4: the connected client becomes the first pooled
            // legacy connection, checked out to the caller.
            st.mode = PoolMode::Legacy;
            st.in_flight += 1;
            st.peak_in_flight = st.peak_in_flight.max(st.in_flight);
            self.checkout_wait.observe(started.elapsed());
            return Ok(Route::Legacy(client));
        }
    }

    /// One exchange over the multiplexed connection, mirroring the
    /// legacy retry policy: an idempotent request that failed gets one
    /// more attempt on a freshly-routed transport (`route` discards
    /// the dead connection and dials a successor).
    fn mux_request(
        &self,
        conn: &Arc<MuxConn>,
        req: &Request,
        idempotent: bool,
        retries: &mut usize,
    ) -> Result<Response, ShardError> {
        match self.mux_exchange(conn, req) {
            Err(e) if idempotent => {
                let _ = e;
                *retries += 1;
                scq_obs::event("retry", format!("addr={}", self.addr));
                match self.route()? {
                    Route::Mux(fresh) => self.mux_exchange(&fresh, req).map_err(ShardError::from),
                    // A restarted server may have negotiated down.
                    Route::Legacy(mut client) => {
                        let r = client
                            .request(req, false, retries)
                            .map_err(ShardError::from);
                        self.checkin(client);
                        r
                    }
                }
            }
            other => other.map_err(ShardError::from),
        }
    }

    /// The accounting wrapper around [`MuxConn::exchange`]: logical
    /// in-flight depth and checkout wait feed the same pool counters
    /// the legacy transport uses, so diagnostics read identically
    /// across modes.
    fn mux_exchange(&self, conn: &MuxConn, req: &Request) -> Result<Response, WireError> {
        let started = Instant::now();
        if let Ok(mut st) = self.state.lock() {
            st.in_flight += 1;
            st.peak_in_flight = st.peak_in_flight.max(st.in_flight);
        }
        self.checkout_wait.observe(started.elapsed());
        let result = conn.exchange(req);
        if let Ok(mut st) = self.state.lock() {
            st.in_flight -= 1;
        }
        result
    }

    /// Establishes (or re-establishes) the pool's transport without
    /// sending a request: one dial, whose negotiated version decides
    /// the mode. Connect-time readiness polling calls this until the
    /// address answers.
    fn ensure_connected(&self) -> Result<(), ShardError> {
        match self.route()? {
            Route::Mux(_) => Ok(()),
            Route::Legacy(client) => {
                self.checkin(client);
                Ok(())
            }
        }
    }

    fn checkout(&self) -> Result<WireClient, ShardError> {
        let started = Instant::now();
        let lock_err = |_| ShardError::Rejected("connection pool lock poisoned".into());
        let mut st = self.state.lock().map_err(lock_err)?;
        loop {
            if let Some(client) = st.idle.pop() {
                st.in_flight += 1;
                st.peak_in_flight = st.peak_in_flight.max(st.in_flight);
                self.checkout_wait.observe(started.elapsed());
                return Ok(client);
            }
            if st.in_flight < self.cap {
                st.in_flight += 1;
                st.created += 1;
                st.peak_in_flight = st.peak_in_flight.max(st.in_flight);
                self.checkout_wait.observe(started.elapsed());
                return Ok(WireClient {
                    addr: self.addr.clone(),
                    stream: None,
                    version: MIN_WIRE_VERSION,
                });
            }
            st = self.returned.wait(st).map_err(lock_err)?;
        }
    }

    /// Returns a client to the pool. A client whose connection died
    /// mid-use (its stream was dropped on the I/O error) is discarded
    /// here, so the pool never hands a known-broken connection to the
    /// next caller — they get a fresh lazily-dialing client instead.
    fn checkin(&self, client: WireClient) {
        let Ok(mut st) = self.state.lock() else {
            return;
        };
        st.in_flight -= 1;
        if client.stream.is_some() {
            st.idle.push(client);
        } else {
            st.discarded += 1;
        }
        drop(st);
        self.returned.notify_one();
    }

    fn stats(&self) -> PoolStats {
        let st = self.state.lock().expect("pool lock poisoned");
        PoolStats {
            created: st.created,
            discarded: st.discarded,
            peak_in_flight: st.peak_in_flight,
            // In mux mode the one connection is "idle" whenever it is
            // alive: it is always ready for another request.
            idle: match &st.mode {
                PoolMode::Mux(conn) if !conn.is_dead() => 1,
                PoolMode::Mux(_) => 0,
                _ => st.idle.len(),
            },
            wire_version: st.wire_version,
            breaker: match st.breaker {
                Breaker::Closed => BreakerState::Closed,
                Breaker::Open { .. } => BreakerState::Open,
                Breaker::HalfOpen => BreakerState::HalfOpen,
            },
            breaker_trips: st.trips,
            consecutive_failures: st.consecutive_failures,
        }
    }

    /// Severs every idle pooled connection in place — and the
    /// multiplexed connection, when that is the transport — (tests:
    /// the next users must transparently re-dial).
    #[cfg(test)]
    fn break_idle(&self) {
        let mut st = self.state.lock().expect("pool lock poisoned");
        if let PoolMode::Mux(conn) = &st.mode {
            conn.sever();
        }
        for client in &mut st.idle {
            client.stream = None;
        }
    }
}

/// One member of a [`RemoteShard`]'s replica set: an address, its
/// connection pool (with breaker), and whether it is known to have
/// missed replicated writes.
struct Replica {
    addr: String,
    pool: ConnectionPool,
    desynced: bool,
}

/// Observable health of one replica of a [`RemoteShard`] — the
/// per-address view behind [`ShardBackend::health`].
#[derive(Clone, Debug)]
pub struct ReplicaHealth {
    /// The replica's address.
    pub addr: String,
    /// Whether this replica is the write primary (first in the set).
    pub primary: bool,
    /// Whether the replica missed a replicated write and is excluded
    /// from reads until a snapshot load re-converges it.
    pub desynced: bool,
    /// Connection-pool and circuit-breaker counters for the address.
    pub stats: PoolStats,
}

/// Outcome of a [`crate::ShardBackend::resync`] pass over one shard's
/// replica set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResyncOutcome {
    /// Desynced replicas brought back in sync.
    pub resynced: usize,
    /// …of which caught up by replaying the primary's shipped WAL
    /// segments.
    pub via_wal: usize,
    /// …of which needed a full snapshot (the primary's log no longer
    /// reaches genesis, or the replica refused the replay).
    pub via_snapshot: usize,
}

/// Whether an error is a transport failure (the kind reads may fail
/// over on and the breaker counts); everything else is a loud answer
/// from a reachable server.
fn is_transport(e: &ShardError) -> bool {
    matches!(e, ShardError::Wire(w) if w.is_transport())
}

/// A shard living in other processes, reached over the wire protocol:
/// an ordered replica set whose first address is the write primary.
pub struct RemoteShard {
    universe: AaBox<2>,
    replicas: Vec<Replica>,
    collections: Vec<MirrorCollection>,
    by_name: HashMap<String, usize>,
}

impl RemoteShard {
    /// [`RemoteShard::connect_pooled`] with [`DEFAULT_POOL_SIZE`]
    /// connections.
    pub fn connect(addr: &str, universe: AaBox<2>, wait: Duration) -> Result<Self, ShardError> {
        Self::connect_pooled(addr, universe, wait, DEFAULT_POOL_SIZE)
    }

    /// [`RemoteShard::connect_replicated`] over a single address with
    /// the default breaker tuning.
    pub fn connect_pooled(
        addr: &str,
        universe: AaBox<2>,
        wait: Duration,
        pool_size: usize,
    ) -> Result<Self, ShardError> {
        Self::connect_replicated(
            std::slice::from_ref(&addr.to_owned()),
            universe,
            wait,
            pool_size,
            BreakerConfig::default(),
        )
    }

    /// Connects to an ordered replica set of shard processes (the
    /// first address is the write primary), polling each until it is
    /// reachable (sharing one `wait` deadline), then handshakes and
    /// seeds the mirror from the **primary's** current snapshot.
    /// Fails on a wire version mismatch or when a shard's universe
    /// differs from `universe` — a misconfigured deployment must not
    /// come up quietly — and requires every secondary's collection
    /// census to agree with the primary's: a replica restarted behind
    /// an old address (split-brain) is rejected here, loudly, instead
    /// of silently serving stale answers. Each address holds at most
    /// `pool_size` concurrent wire connections, dialed lazily.
    pub fn connect_replicated(
        addrs: &[String],
        universe: AaBox<2>,
        wait: Duration,
        pool_size: usize,
        breaker: BreakerConfig,
    ) -> Result<Self, ShardError> {
        if addrs.is_empty() {
            return Err(ShardError::Rejected(
                "a replica set needs at least one address".into(),
            ));
        }
        let deadline = Instant::now() + wait;
        let mut replicas = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let pool = ConnectionPool::new(addr.clone(), pool_size, breaker);
            loop {
                match pool.ensure_connected() {
                    Ok(()) => break,
                    // Version mismatches and handshake rejections never
                    // heal by waiting; only connection refusals are
                    // readiness.
                    Err(
                        e @ ShardError::Wire(
                            WireError::VersionMismatch { .. } | WireError::Remote(_),
                        ),
                    ) => {
                        return Err(e);
                    }
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(e);
                        }
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            }
            replicas.push(Replica {
                addr: addr.clone(),
                pool,
                desynced: false,
            });
        }
        let mut shard = RemoteShard {
            universe,
            replicas,
            collections: Vec::new(),
            by_name: HashMap::new(),
        };
        let stream = shard.snapshot_read()?;
        let decoded = shard.decode_stream(&stream)?;
        shard.commit_mirror(&decoded);
        for i in 1..shard.replicas.len() {
            shard.verify_replica_census(i)?;
        }
        Ok(shard)
    }

    /// The write primary's address.
    pub fn addr(&self) -> &str {
        &self.replicas[0].addr
    }

    /// Every replica address, primary first.
    pub fn replica_addrs(&self) -> Vec<String> {
        self.replicas.iter().map(|r| r.addr.clone()).collect()
    }

    /// The configured per-address connection-pool size.
    pub fn pool_size(&self) -> usize {
        self.replicas[0].pool.cap
    }

    /// The **primary's** connection-pool counters (dials, discards,
    /// peak concurrency, breaker). Per-replica counters come from
    /// [`ShardBackend::health`].
    pub fn pool_stats(&self) -> PoolStats {
        self.replicas[0].pool.stats()
    }

    /// Replaces the breaker clock on every replica's pool — tests
    /// advance an injected clock instead of sleeping through
    /// cooldowns.
    pub fn set_clock(&mut self, clock: BreakerClock) {
        for replica in &mut self.replicas {
            replica.pool.clock = clock.clone();
        }
    }

    /// Whether the shard holds no collections at all (a fresh process;
    /// the only state a cluster may be assembled over without a
    /// manifest).
    pub fn is_pristine(&self) -> bool {
        self.collections.is_empty()
    }

    /// Requires replica `i`'s collection census (names, slot counts,
    /// live counts) to match the mirror just seeded from the primary.
    /// A replica that disagrees at connect time is split-brain — a
    /// pristine restart or stale process behind a configured address —
    /// and must be re-seeded from a snapshot, never served from.
    fn verify_replica_census(&self, i: usize) -> Result<(), ShardError> {
        let replica = &self.replicas[i];
        let rows = match replica
            .pool
            .request_unguarded(&Request::Stat, true, &mut 0)?
        {
            Response::Stat(rows) => rows,
            Response::Err(m) => return Err(ShardError::Rejected(m)),
            other => {
                return Err(ShardError::Wire(WireError::Unexpected(format!(
                    "STAT answered {other:?}"
                ))))
            }
        };
        let agrees = rows.len() == self.collections.len()
            && rows
                .iter()
                .zip(&self.collections)
                .all(|((name, slots, live), m)| {
                    name == &m.name
                        && *slots as usize == m.regions.len()
                        && *live as usize == m.live_count
                });
        if !agrees {
            return Err(ShardError::Rejected(format!(
                "replica {} disagrees with the primary's state at connect \
                 (split-brain): restore every replica from one snapshot \
                 before serving",
                replica.addr
            )));
        }
        Ok(())
    }

    /// Compares one shard process's `STAT` census against the mirror.
    /// `who` names a secondary replica; `None` is the primary.
    fn census_drift(&self, rows: &[(String, u64, u64)], who: Option<&str>) -> Vec<String> {
        let prefix = |s: String| match who {
            Some(addr) => format!("replica {addr}: {s}"),
            None => s,
        };
        let mut problems = Vec::new();
        if rows.len() != self.collections.len() {
            problems.push(prefix(format!(
                "shard reports {} collections, mirror holds {}",
                rows.len(),
                self.collections.len()
            )));
            return problems;
        }
        for ((name, slots, live), m) in rows.iter().zip(&self.collections) {
            if name != &m.name
                || *slots as usize != m.regions.len()
                || *live as usize != m.live_count
            {
                problems.push(prefix(format!(
                    "mirror drift on {:?}: shard has {slots} slots / {live} live, \
                     mirror has {} / {}",
                    m.name,
                    m.regions.len(),
                    m.live_count
                )));
            }
        }
        problems
    }

    /// An idempotent read against the primary only (diagnostics,
    /// snapshot pulls) — no failover, no breaker gate: a stale
    /// secondary's snapshot would be silently wrong data, and an
    /// operator asking for diagnostics wants an answer even from a
    /// tripped address.
    fn primary_request(&self, req: &Request, idempotent: bool) -> Result<Response, ShardError> {
        self.replicas[0]
            .pool
            .request_unguarded(req, idempotent, &mut 0)
    }

    /// A failure-aware read: replicas are tried in order (primary
    /// first), skipping desynced ones, and a transport failure —
    /// including a fast [`WireError::BreakerOpen`] — moves on to the
    /// next. Every replica skipped or failed before the serving one
    /// counts as a failover, and an answer served by a non-primary is
    /// flagged stale in `trace`. Non-transport errors (a server that
    /// *answers* wrongly) return immediately and loudly.
    fn read_request(
        &self,
        req: &Request,
        trace: &mut crate::backend::ProbeTrace,
    ) -> Result<Response, ShardError> {
        let mut last_err: Option<ShardError> = None;
        let mut skipped_or_failed = 0usize;
        for (i, replica) in self.replicas.iter().enumerate() {
            if replica.desynced {
                scq_obs::event("skip-desynced", format!("addr={}", replica.addr));
                skipped_or_failed += 1;
                continue;
            }
            match replica.pool.request(req, true, &mut trace.retries) {
                Ok(resp) => {
                    trace.failovers += skipped_or_failed;
                    trace.stale |= i != 0;
                    return Ok(resp);
                }
                Err(e) if is_transport(&e) => {
                    // Name the address the read is moving past: a fast
                    // breaker skip reads differently from a dial that
                    // died, and the trace should show which happened.
                    if matches!(&e, ShardError::Wire(WireError::BreakerOpen { .. })) {
                        scq_obs::event("breaker-skip", format!("addr={}", replica.addr));
                    } else {
                        scq_obs::event("failover", format!("addr={} error={e}", replica.addr));
                    }
                    skipped_or_failed += 1;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ShardError::Wire(WireError::BreakerOpen {
                addr: self.replicas[0].addr.clone(),
            })
        }))
    }

    /// A mutation: primary only, never auto-retried (a lost ack is
    /// indistinguishable from a lost request), then fanned out
    /// verbatim to every secondary for write-through convergence. A
    /// secondary whose answer differs from the primary's is a loud
    /// lockstep error; a secondary the fan-out cannot reach is marked
    /// desynced and excluded from reads — the write itself still
    /// succeeds. A primary rejection (`Response::Err`) changed no
    /// state and is returned without fan-out. A primary transport
    /// failure does **not** desync the secondaries: the mirror was
    /// not advanced, so they still agree with it — only the primary
    /// may have drifted ahead, which [`ShardBackend::check`] reports
    /// as mirror drift.
    fn mutate(&mut self, req: &Request) -> Result<Response, ShardError> {
        let resp = self.replicas[0].pool.request(req, false, &mut 0)?;
        if matches!(resp, Response::Err(_)) {
            return Ok(resp);
        }
        for replica in self.replicas.iter_mut().skip(1) {
            if replica.desynced {
                continue;
            }
            match replica.pool.request(req, false, &mut 0) {
                Ok(ref rr) if *rr == resp => {}
                Ok(Response::Err(m)) => {
                    return Err(ShardError::Rejected(format!(
                        "replica {} rejected a mutation the primary accepted: {m}",
                        replica.addr
                    )));
                }
                Ok(other) => {
                    return Err(ShardError::Rejected(format!(
                        "replica {} answered {other:?} where the primary answered \
                         {resp:?}: replica state is out of lockstep",
                        replica.addr
                    )));
                }
                Err(e) if is_transport(&e) => {
                    let _ = e;
                    replica.desynced = true;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(resp)
    }

    /// Decodes and validates an `SCQS` stream (exactly like a shard
    /// process would) without committing anything.
    fn decode_stream(&self, stream: &[u8]) -> Result<SpatialDatabase<2>, ShardError> {
        let db: SpatialDatabase<2> = snapshot::load(stream)
            .map_err(|e| ShardError::Rejected(format!("bad shard snapshot: {e}")))?;
        if db.universe() != &self.universe {
            return Err(ShardError::Rejected(format!(
                "shard {} universe {:?} differs from the cluster universe {:?}",
                self.addr(),
                db.universe(),
                self.universe
            )));
        }
        Ok(db)
    }

    /// The shard process's per-collection mutation epochs, in
    /// collection-id order — `None` when the negotiated protocol
    /// predates [`Request::Epochs`] or the shard is unreachable.
    fn shard_epochs(&self) -> Option<Vec<u64>> {
        if self.replicas[0].pool.stats().wire_version < EPOCHS_MIN_VERSION {
            return None;
        }
        match self.primary_request(&Request::Epochs, true) {
            Ok(Response::Ids(epochs)) => Some(epochs),
            _ => None,
        }
    }

    /// Replaces the mirror with the contents of a decoded stream.
    fn commit_mirror(&mut self, db: &SpatialDatabase<2>) {
        // Epoch seeding: adopt the shard process's own epochs (the
        // stream was already applied there, so this reflects the
        // post-load state) and the lockstep check holds from the first
        // mutation on. An older peer cannot be asked; its mirror
        // epochs instead advance strictly past the previous mirror
        // generation (old + 1, matched by name) so any epoch-keyed
        // cache entry taken before the reload is invalidated.
        let fetched = self.shard_epochs();
        let old_epochs: HashMap<String, u64> = self
            .collections
            .iter()
            .map(|c| (c.name.clone(), c.epoch))
            .collect();
        self.collections = db
            .collections()
            .map(|coll| {
                let n = db.collection_len(coll);
                let name = db.collection_name(coll).to_owned();
                let epoch = match &fetched {
                    Some(epochs) => epochs.get(coll.0).copied().unwrap_or(0),
                    None => old_epochs.get(&name).map_or(0, |&e| e + 1),
                };
                let mut m = MirrorCollection {
                    name,
                    regions: Vec::with_capacity(n),
                    bboxes: Vec::with_capacity(n),
                    live: Vec::with_capacity(n),
                    live_count: db.live_len(coll),
                    epoch,
                };
                for index in db.object_indices(coll) {
                    let obj = scq_engine::ObjectRef {
                        collection: coll,
                        index,
                    };
                    m.regions.push(db.region(obj).clone());
                    m.bboxes.push(db.bbox(obj));
                    m.live.push(db.is_live(obj));
                }
                m
            })
            .collect();
        self.by_name = self
            .collections
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
    }

    fn coll(&self, coll: CollectionId) -> &MirrorCollection {
        &self.collections[coll.0]
    }

    /// Pulls the primary's snapshot **read-only**: same bytes as
    /// [`ShardBackend::snapshot_stream`], but the shard keeps its WAL
    /// intact. Mirror bootstrap and resync shipping use this so merely
    /// reading a shard never seals its log.
    fn snapshot_read(&self) -> Result<Bytes, ShardError> {
        match self.primary_request(&Request::SnapshotRead, true)? {
            Response::Bytes(bytes) => Ok(bytes.into()),
            Response::Err(m) => Err(ShardError::Rejected(m)),
            other => Err(ShardError::Wire(WireError::Unexpected(format!(
                "SNAPSHOT READ answered {other:?}"
            )))),
        }
    }
}

impl ShardBackend for RemoteShard {
    fn describe(&self) -> String {
        format!("remote:{}", self.addr())
    }

    fn universe(&self) -> &AaBox<2> {
        &self.universe
    }

    fn create_collection(&mut self, name: &str) -> Result<CollectionId, ShardError> {
        if let Some(&i) = self.by_name.get(name) {
            return Ok(CollectionId(i));
        }
        let resp = self.mutate(&Request::Create {
            name: name.to_owned(),
        })?;
        let id = match resp {
            Response::Coll(id) => id,
            Response::Err(m) => return Err(ShardError::Rejected(m)),
            other => {
                return Err(ShardError::Wire(WireError::Unexpected(format!(
                    "CREATE answered {other:?}"
                ))))
            }
        };
        // Shards create collections in lockstep with the router; a
        // shard that numbers them differently is serving someone else.
        if id.0 != self.collections.len() {
            return Err(ShardError::Rejected(format!(
                "shard {} numbered collection {name:?} as {} (expected {}): \
                 shard state is out of lockstep with the router",
                self.addr(),
                id.0,
                self.collections.len()
            )));
        }
        self.collections.push(MirrorCollection {
            name: name.to_owned(),
            ..MirrorCollection::default()
        });
        self.by_name.insert(name.to_owned(), id.0);
        Ok(id)
    }

    fn collection_id(&self, name: &str) -> Option<CollectionId> {
        self.by_name.get(name).map(|&i| CollectionId(i))
    }

    fn collection_len(&self, coll: CollectionId) -> usize {
        self.coll(coll).regions.len()
    }

    fn live_len(&self, coll: CollectionId) -> usize {
        self.coll(coll).live_count
    }

    fn epoch(&self, coll: CollectionId) -> u64 {
        self.coll(coll).epoch
    }

    fn is_live(&self, coll: CollectionId, local: usize) -> bool {
        self.coll(coll).live[local]
    }

    fn region(&self, coll: CollectionId, local: usize) -> &Region<2> {
        &self.coll(coll).regions[local]
    }

    fn bbox(&self, coll: CollectionId, local: usize) -> Bbox<2> {
        self.coll(coll).bboxes[local]
    }

    fn insert(&mut self, coll: CollectionId, region: Region<2>) -> Result<usize, ShardError> {
        let resp = self.mutate(&Request::Insert {
            coll,
            region: region.clone(),
        })?;
        let local = match resp {
            Response::Slot(local) => local as usize,
            Response::Err(m) => return Err(ShardError::Rejected(m)),
            other => {
                return Err(ShardError::Wire(WireError::Unexpected(format!(
                    "INSERT answered {other:?}"
                ))))
            }
        };
        let expected = self.collections[coll.0].regions.len();
        if local != expected {
            return Err(ShardError::Rejected(format!(
                "shard {} handed out slot {local}, mirror expected {expected}: \
                 shard state is out of lockstep with the router",
                self.addr(),
            )));
        }
        let m = &mut self.collections[coll.0];
        m.bboxes.push(region.bbox());
        m.regions.push(region);
        m.live.push(true);
        m.live_count += 1;
        m.epoch += 1;
        Ok(local)
    }

    fn remove(&mut self, coll: CollectionId, local: usize) -> Result<bool, ShardError> {
        let resp = self.mutate(&Request::Remove {
            coll,
            local: local as u64,
        })?;
        match resp {
            Response::Flag(removed) => {
                if removed != self.collections[coll.0].live[local] {
                    return Err(ShardError::Rejected(format!(
                        "shard {} liveness for slot {local} disagrees with the mirror",
                        self.addr(),
                    )));
                }
                if removed {
                    let m = &mut self.collections[coll.0];
                    m.live[local] = false;
                    m.live_count -= 1;
                    m.epoch += 1;
                }
                Ok(removed)
            }
            Response::Err(m) => Err(ShardError::Rejected(m)),
            other => Err(ShardError::Wire(WireError::Unexpected(format!(
                "REMOVE answered {other:?}"
            )))),
        }
    }

    fn update(
        &mut self,
        coll: CollectionId,
        local: usize,
        region: Region<2>,
    ) -> Result<bool, ShardError> {
        let resp = self.mutate(&Request::Update {
            coll,
            local: local as u64,
            region: region.clone(),
        })?;
        match resp {
            Response::Flag(updated) => {
                if updated {
                    let m = &mut self.collections[coll.0];
                    m.bboxes[local] = region.bbox();
                    m.regions[local] = region;
                    m.epoch += 1;
                }
                Ok(updated)
            }
            Response::Err(m) => Err(ShardError::Rejected(m)),
            other => Err(ShardError::Wire(WireError::Unexpected(format!(
                "UPDATE answered {other:?}"
            )))),
        }
    }

    fn try_corner_query(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<2>,
        out: &mut Vec<u64>,
        trace: &mut crate::backend::ProbeTrace,
    ) -> Result<(), ShardError> {
        let resp = self.read_request(
            &Request::Query {
                coll,
                kind,
                query: *q,
            },
            trace,
        )?;
        match resp {
            Response::Ids(ids) => {
                out.extend(ids);
                Ok(())
            }
            Response::Err(m) => Err(ShardError::Rejected(m)),
            other => Err(ShardError::Wire(WireError::Unexpected(format!(
                "QUERY answered {other:?}"
            )))),
        }
    }

    fn health(&self) -> Vec<ReplicaHealth> {
        self.replicas
            .iter()
            .enumerate()
            .map(|(i, r)| ReplicaHealth {
                addr: r.addr.clone(),
                primary: i == 0,
                desynced: r.desynced,
                stats: r.pool.stats(),
            })
            .collect()
    }

    fn metrics(&self) -> Option<scq_obs::Snapshot> {
        // Primary only: replica processes see the same replicated
        // writes but their read traffic differs, and a merged answer
        // would blur which process the latencies belong to.
        match self.primary_request(&Request::Metrics, true) {
            Ok(Response::Metrics(snap)) => Some(snap),
            // An old (v2) shard answers `Response::Err`; a dead one
            // answers nothing. Either way there is nothing to report.
            _ => None,
        }
    }

    fn client_metrics(&self) -> Option<scq_obs::Snapshot> {
        let mut merged: Option<scq_obs::Snapshot> = None;
        for replica in &self.replicas {
            let snap = replica.pool.registry.snapshot();
            merged = Some(match merged {
                Some(mut acc) => {
                    acc.merge(&snap);
                    acc
                }
                None => snap,
            });
        }
        merged
    }

    fn compact(&mut self) -> Result<CompactReport, ShardError> {
        let resp = self.mutate(&Request::Compact)?;
        let (reclaimed, remap) = match resp {
            Response::Remap { reclaimed, remap } => (reclaimed, remap),
            Response::Err(m) => return Err(ShardError::Rejected(m)),
            other => {
                return Err(ShardError::Wire(WireError::Unexpected(format!(
                    "COMPACT answered {other:?}"
                ))))
            }
        };
        let addr = self.addr().to_owned();
        if remap.len() != self.collections.len() {
            return Err(ShardError::Rejected(format!(
                "shard {addr} compacted {} collections, mirror holds {}",
                remap.len(),
                self.collections.len()
            )));
        }
        // Apply the shard's remap to the mirror: live slots shift down
        // in order, dropped slots disappear.
        for (m, coll_remap) in self.collections.iter_mut().zip(&remap) {
            if coll_remap.len() != m.regions.len() {
                return Err(ShardError::Rejected(format!(
                    "shard {addr} remap covers {} slots, mirror holds {}",
                    coll_remap.len(),
                    m.regions.len()
                )));
            }
            let old_regions = std::mem::take(&mut m.regions);
            let old_bboxes = std::mem::take(&mut m.bboxes);
            let old_live = std::mem::take(&mut m.live);
            let survivors = coll_remap.iter().flatten().count();
            m.regions = vec![Region::empty(); survivors];
            m.bboxes = vec![Bbox::Empty; survivors];
            m.live = vec![true; survivors];
            // Injectivity is checked explicitly: a desynced shard
            // mapping two live slots onto one target would otherwise
            // silently drop one region and leave another slot empty.
            let mut assigned = vec![false; survivors];
            for (old, new) in coll_remap.iter().enumerate() {
                let Some(new) = *new else { continue };
                let new = new as usize;
                if new >= survivors || !old_live[old] || assigned[new] {
                    return Err(ShardError::Rejected(format!(
                        "shard {addr} remap is not a liveness-respecting bijection"
                    )));
                }
                assigned[new] = true;
                m.regions[new] = old_regions[old].clone();
                m.bboxes[new] = old_bboxes[old];
            }
            m.live_count = survivors;
            // Compaction renumbers slots, so it advances the epoch of
            // every collection — exactly as the shard process does.
            m.epoch += 1;
        }
        Ok(CompactReport {
            remap: remap
                .into_iter()
                .map(|coll| coll.into_iter().map(|s| s.map(|i| i as usize)).collect())
                .collect(),
            slots_reclaimed: reclaimed as usize,
        })
    }

    fn check(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // The primary's own structural check…
        match self.primary_request(&Request::Check, true) {
            Ok(Response::Problems(ps)) => problems.extend(ps),
            Ok(Response::Err(m)) => problems.push(format!("remote check failed: {m}")),
            Ok(other) => problems.push(format!("CHECK answered {other:?}")),
            Err(e) => problems.push(format!("remote check unreachable: {e}")),
        }
        // …plus a mirror-vs-shard census: slot and live counts must
        // agree per collection or the mirror has drifted.
        match self.primary_request(&Request::Stat, true) {
            Ok(Response::Stat(rows)) => {
                problems.extend(self.census_drift(&rows, None));
            }
            Ok(other) => problems.push(format!("STAT answered {other:?}")),
            Err(e) => problems.push(format!("remote stat unreachable: {e}")),
        }
        // …plus epoch lockstep, when the peer can answer: the mirror's
        // per-collection mutation epochs must equal the shard's, or
        // epoch-keyed caches above this backend may serve stale
        // answers. (Older peers are skipped — their mirrors seed
        // epochs monotonically on their own.)
        if self.replicas[0].pool.stats().wire_version >= EPOCHS_MIN_VERSION {
            match self.primary_request(&Request::Epochs, true) {
                Ok(Response::Ids(epochs)) => {
                    for (i, m) in self.collections.iter().enumerate() {
                        let shard = epochs.get(i).copied();
                        if shard != Some(m.epoch) {
                            problems.push(format!(
                                "mirror epoch for {:?} is {}, shard reports {:?}: \
                                 epoch lockstep broken",
                                m.name, m.epoch, shard
                            ));
                        }
                    }
                }
                Ok(other) => problems.push(format!("EPOCHS answered {other:?}")),
                Err(e) => problems.push(format!("remote epochs unreachable: {e}")),
            }
        }
        // …plus the same census per secondary: a replica that missed
        // writes (desynced) or answers a different census must not be
        // served from until re-seeded.
        for replica in self.replicas.iter().skip(1) {
            if replica.desynced {
                problems.push(format!(
                    "replica {} is desynced (missed replicated writes); \
                     restore it with SNAPSHOT LOAD",
                    replica.addr
                ));
                continue;
            }
            match replica.pool.request_unguarded(&Request::Stat, true, &mut 0) {
                Ok(Response::Stat(rows)) => {
                    problems.extend(self.census_drift(&rows, Some(&replica.addr)));
                }
                Ok(Response::Err(m)) => {
                    problems.push(format!("replica {} stat failed: {m}", replica.addr))
                }
                Ok(other) => {
                    problems.push(format!("replica {} STAT answered {other:?}", replica.addr))
                }
                Err(e) => problems.push(format!("replica {} unreachable: {e}", replica.addr)),
            }
        }
        problems
    }

    fn wal_stats(&self) -> Option<crate::wal::WalStats> {
        // Each replica process keeps its own log; the shard's counters
        // are their sum. Replicas without a WAL (or unreachable ones)
        // contribute nothing; if none keeps a log there is nothing to
        // report.
        let mut agg: Option<crate::wal::WalStats> = None;
        for replica in &self.replicas {
            if let Ok(Response::WalStat(stats)) =
                replica
                    .pool
                    .request_unguarded(&Request::WalStat, true, &mut 0)
            {
                agg = Some(agg.map_or(stats, |a| a.merge(&stats)));
            }
        }
        agg
    }

    fn resync(&mut self) -> Result<ResyncOutcome, ShardError> {
        let mut outcome = ResyncOutcome::default();
        if !self.replicas.iter().skip(1).any(|r| r.desynced) {
            return Ok(outcome);
        }
        // Preferred transport: the primary's WAL, when it still
        // reaches genesis (complete). The replica is reset to pristine
        // with an empty snapshot (a few bytes) and replays the shipped
        // segments — far less data than a full snapshot on a log that
        // has not grown past its truncation budget.
        let export: Option<Vec<Vec<u8>>> = match self.primary_request(&Request::WalExport, true) {
            Ok(Response::WalSegments {
                complete: true,
                segments,
            }) => Some(segments),
            _ => None,
        };
        let empty = snapshot::save(&SpatialDatabase::new(self.universe)).to_vec();
        let mut full_stream: Option<Vec<u8>> = None;
        for i in 1..self.replicas.len() {
            if !self.replicas[i].desynced {
                continue;
            }
            let mut fixed_via_wal = false;
            if let Some(segments) = &export {
                let replica = &self.replicas[i];
                let reset = replica.pool.request_unguarded(
                    &Request::SnapshotLoad {
                        stream: empty.clone(),
                    },
                    false,
                    &mut 0,
                );
                if matches!(reset, Ok(Response::Ok)) {
                    if let Ok(Response::Applied(_)) = replica.pool.request_unguarded(
                        &Request::WalApply {
                            segments: segments.clone(),
                        },
                        false,
                        &mut 0,
                    ) {
                        fixed_via_wal = true;
                    }
                }
            }
            if !fixed_via_wal {
                // Fallback: ship the primary's full snapshot (pulled
                // once, reused for every lagging replica).
                let stream = match &full_stream {
                    Some(s) => s.clone(),
                    None => {
                        // Read-only pull: repairing a replica must not
                        // truncate the primary's log.
                        let s = self.snapshot_read()?.to_vec();
                        full_stream = Some(s.clone());
                        s
                    }
                };
                match self.replicas[i].pool.request_unguarded(
                    &Request::SnapshotLoad { stream },
                    false,
                    &mut 0,
                ) {
                    Ok(Response::Ok) => {}
                    Ok(Response::Err(m)) => {
                        return Err(ShardError::Rejected(format!(
                            "replica {} refused the resync snapshot: {m}",
                            self.replicas[i].addr
                        )));
                    }
                    Ok(other) => {
                        return Err(ShardError::Wire(WireError::Unexpected(format!(
                            "SNAPSHOT LOAD answered {other:?}"
                        ))));
                    }
                    // Unreachable: the replica simply stays desynced
                    // until a later pass can reach it.
                    Err(e) if is_transport(&e) => continue,
                    Err(e) => return Err(e),
                }
            }
            self.replicas[i].desynced = false;
            // The replica must now agree with the mirror exactly; a
            // replay or snapshot that converged anywhere else is loud.
            self.verify_replica_census(i)?;
            outcome.resynced += 1;
            if fixed_via_wal {
                outcome.via_wal += 1;
            } else {
                outcome.via_snapshot += 1;
            }
        }
        Ok(outcome)
    }

    fn snapshot_stream(&self) -> Result<Bytes, ShardError> {
        // Primary only, no failover: a desynced or stale secondary's
        // snapshot would persist silently wrong data. This is the
        // explicit save path, so the primary also truncates its WAL —
        // the stream becomes the shard's recovery base.
        match self.primary_request(&Request::SnapshotSave, true)? {
            Response::Bytes(bytes) => Ok(bytes.into()),
            Response::Err(m) => Err(ShardError::Rejected(m)),
            other => Err(ShardError::Wire(WireError::Unexpected(format!(
                "SNAPSHOT SAVE answered {other:?}"
            )))),
        }
    }

    fn load_snapshot(&mut self, stream: &[u8]) -> Result<(), ShardError> {
        // Validate locally first (a stream the mirror cannot decode
        // must not reach any shard process at all), then ship it to
        // the primary, and only commit the mirror once the primary
        // has accepted — a shard-side failure must leave mirror and
        // shard agreeing on the OLD data, not silently describing
        // different worlds.
        let decoded = self.decode_stream(stream)?;
        let req = Request::SnapshotLoad {
            stream: stream.to_vec(),
        };
        match self.replicas[0]
            .pool
            .request_unguarded(&req, false, &mut 0)?
        {
            Response::Ok => {}
            Response::Err(m) => return Err(ShardError::Rejected(m)),
            other => {
                return Err(ShardError::Wire(WireError::Unexpected(format!(
                    "SNAPSHOT LOAD answered {other:?}"
                ))))
            }
        }
        self.commit_mirror(&decoded);
        // Fan the same snapshot out to every secondary: this is the
        // re-sync path, so it is attempted even on desynced replicas
        // (clearing the flag on success) and bypasses the breaker
        // gate; an unreachable secondary stays/becomes desynced.
        for replica in self.replicas.iter_mut().skip(1) {
            match replica.pool.request_unguarded(&req, false, &mut 0) {
                Ok(Response::Ok) => replica.desynced = false,
                Ok(Response::Err(m)) => {
                    return Err(ShardError::Rejected(format!(
                        "replica {} rejected a snapshot the primary accepted: {m}",
                        replica.addr
                    )));
                }
                Ok(other) => {
                    return Err(ShardError::Wire(WireError::Unexpected(format!(
                        "SNAPSHOT LOAD answered {other:?}"
                    ))));
                }
                Err(e) if is_transport(&e) => {
                    let _ = e;
                    replica.desynced = true;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ProbeTrace;
    use crate::server::{serve_shard, ShardServerConfig};

    fn universe() -> AaBox<2> {
        AaBox::new([0.0, 0.0], [100.0, 100.0])
    }

    fn start() -> (crate::server::ShardServerHandle, RemoteShard) {
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .unwrap();
        let shard = RemoteShard::connect(
            &server.addr().to_string(),
            universe(),
            Duration::from_secs(5),
        )
        .unwrap();
        (server, shard)
    }

    fn boxed(x: f64, y: f64, w: f64, h: f64) -> Region<2> {
        Region::from_box(AaBox::new([x, y], [x + w, y + h]))
    }

    /// Drives the same mutation script through a RemoteShard and a
    /// LocalShard; every read answer must match.
    #[test]
    fn remote_backend_matches_local_backend() {
        let (server, mut remote) = start();
        let mut local = crate::LocalShard::new(universe());
        let c_r = remote.create_collection("objs").unwrap();
        let c_l = local.create_collection("objs").unwrap();
        assert_eq!(c_r, c_l);
        for i in 0..12 {
            let t = (i * 17 % 89) as f64;
            let r = boxed(t, 90.0 - t, 3.0, 4.0);
            assert_eq!(
                remote.insert(c_r, r.clone()).unwrap(),
                local.insert(c_l, r).unwrap()
            );
        }
        assert_eq!(
            remote.remove(c_r, 3).unwrap(),
            local.remove(c_l, 3).unwrap()
        );
        assert_eq!(
            remote.update(c_r, 5, boxed(1.0, 1.0, 2.0, 2.0)).unwrap(),
            local.update(c_l, 5, boxed(1.0, 1.0, 2.0, 2.0)).unwrap()
        );
        assert_eq!(remote.collection_len(c_r), local.collection_len(c_l));
        assert_eq!(remote.live_len(c_r), local.live_len(c_l));
        for local_slot in 0..remote.collection_len(c_r) {
            assert_eq!(
                remote.is_live(c_r, local_slot),
                local.is_live(c_l, local_slot)
            );
            assert!(remote
                .region(c_r, local_slot)
                .same_set(local.region(c_l, local_slot)));
            assert_eq!(remote.bbox(c_r, local_slot), local.bbox(c_l, local_slot));
        }
        let q = CornerQuery::unconstrained().and_overlaps(&Bbox::new([0.0, 0.0], [50.0, 95.0]));
        for kind in [IndexKind::RTree, IndexKind::GridFile, IndexKind::Scan] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            let mut trace = ProbeTrace::default();
            remote
                .try_corner_query(c_r, kind, &q, &mut a, &mut trace)
                .unwrap();
            local
                .try_corner_query(c_l, kind, &q, &mut b, &mut trace)
                .unwrap();
            assert_eq!(trace.retries, 0, "healthy backends never retry");
            assert_eq!(trace.failovers, 0, "healthy backends never fail over");
            assert!(!trace.stale, "the primary's answers are never stale");
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{kind:?}");
        }
        assert!(remote.check().is_empty(), "{:?}", remote.check());
        // compaction: same remap, same surviving answers
        let rr = remote.compact().unwrap();
        let lr = local.compact().unwrap();
        assert_eq!(rr.remap, lr.remap);
        assert_eq!(rr.slots_reclaimed, lr.slots_reclaimed);
        assert_eq!(remote.collection_len(c_r), local.collection_len(c_l));
        assert!(remote.check().is_empty(), "{:?}", remote.check());
        // snapshot stream round trip into a fresh local backend
        let stream = remote.snapshot_stream().unwrap();
        let mut fresh = crate::LocalShard::new(universe());
        fresh.load_snapshot(&stream).unwrap();
        assert_eq!(fresh.collection_len(c_r), remote.collection_len(c_r));
        server.shutdown();
    }

    #[test]
    fn connect_times_out_against_a_dead_address() {
        let err = RemoteShard::connect(
            "127.0.0.1:1", // reserved port, nothing listens
            universe(),
            Duration::from_millis(300),
        )
        .err()
        .expect("connect must fail");
        assert!(matches!(err, ShardError::Wire(_)), "{err}");
    }

    #[test]
    fn universe_mismatch_is_rejected_at_connect() {
        let server = serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            universe_size: 500.0, // shard disagrees with the cluster
            ..ShardServerConfig::default()
        })
        .unwrap();
        let err = RemoteShard::connect(
            &server.addr().to_string(),
            universe(),
            Duration::from_secs(5),
        )
        .err()
        .expect("universe mismatch must be rejected");
        assert!(err.to_string().contains("universe"), "{err}");
        server.shutdown();
    }

    #[test]
    fn queries_survive_a_server_side_connection_drop() {
        let (server, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(10.0, 10.0, 5.0, 5.0)).unwrap();
        // Sever every pooled connection in place… the next idempotent
        // request transparently re-dials.
        remote.replicas[0].pool.break_idle();
        let mut out = Vec::new();
        remote
            .try_corner_query(
                c,
                IndexKind::RTree,
                &CornerQuery::unconstrained(),
                &mut out,
                &mut ProbeTrace::default(),
            )
            .unwrap();
        assert_eq!(out, vec![0]);
        server.shutdown();
    }

    #[test]
    fn sequential_requests_reuse_one_pooled_connection() {
        let (server, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        for i in 0..6 {
            remote
                .insert(c, boxed(i as f64 * 10.0, 5.0, 3.0, 3.0))
                .unwrap();
            let mut out = Vec::new();
            remote
                .try_corner_query(
                    c,
                    IndexKind::Scan,
                    &CornerQuery::unconstrained(),
                    &mut out,
                    &mut ProbeTrace::default(),
                )
                .unwrap();
            assert_eq!(out.len(), i + 1);
        }
        let stats = remote.pool_stats();
        assert_eq!(
            stats.created, 1,
            "sequential traffic convoys onto one connection: {stats:?}"
        );
        assert_eq!(stats.discarded, 0, "{stats:?}");
        assert_eq!(stats.idle, 1, "{stats:?}");
        server.shutdown();
    }

    #[test]
    fn broken_connections_are_discarded_and_redialed() {
        let (server, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap();
        let before = remote.pool_stats();
        // Kill the server: the in-flight exchange fails, the broken
        // connection must NOT be pooled again.
        server.shutdown();
        let mut out = Vec::new();
        assert!(remote
            .try_corner_query(
                c,
                IndexKind::RTree,
                &CornerQuery::unconstrained(),
                &mut out,
                &mut ProbeTrace::default(),
            )
            .is_err());
        let after = remote.pool_stats();
        assert_eq!(after.idle, 0, "a dead connection went back to the pool");
        assert!(after.discarded > before.discarded, "{after:?}");
    }

    #[test]
    fn mutations_fail_cleanly_after_shutdown() {
        let (server, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        server.shutdown();
        let err = remote.insert(c, boxed(1.0, 1.0, 1.0, 1.0)).err().unwrap();
        assert!(matches!(err, ShardError::Wire(_)), "{err}");
    }

    fn start_one() -> crate::server::ShardServerHandle {
        serve_shard(&ShardServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            universe_size: 100.0,
            ..ShardServerConfig::default()
        })
        .unwrap()
    }

    fn start_replicated(
        breaker: BreakerConfig,
    ) -> (
        crate::server::ShardServerHandle,
        crate::server::ShardServerHandle,
        RemoteShard,
    ) {
        let a = start_one();
        let b = start_one();
        let shard = RemoteShard::connect_replicated(
            &[a.addr().to_string(), b.addr().to_string()],
            universe(),
            Duration::from_secs(5),
            2,
            breaker,
        )
        .unwrap();
        (a, b, shard)
    }

    fn query_all(remote: &RemoteShard, c: CollectionId, trace: &mut ProbeTrace) -> Vec<u64> {
        let mut out = Vec::new();
        remote
            .try_corner_query(
                c,
                IndexKind::RTree,
                &CornerQuery::unconstrained(),
                &mut out,
                trace,
            )
            .unwrap();
        out.sort_unstable();
        out
    }

    #[test]
    fn reads_fail_over_to_the_secondary_when_the_primary_dies() {
        let breaker = BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_secs(3600),
        };
        let (a, b, mut remote) = start_replicated(breaker);
        let c = remote.create_collection("objs").unwrap();
        for i in 0..5 {
            remote
                .insert(c, boxed(i as f64 * 10.0, 5.0, 3.0, 3.0))
                .unwrap();
        }
        // Healthy replica set: primary serves, nothing is stale.
        let mut trace = ProbeTrace::default();
        assert_eq!(query_all(&remote, c, &mut trace), vec![0, 1, 2, 3, 4]);
        assert_eq!((trace.failovers, trace.stale), (0, false));

        a.shutdown();
        // The same answers now come from the secondary — the fan-out
        // kept it converged — flagged as one failover and stale.
        let mut trace = ProbeTrace::default();
        assert_eq!(query_all(&remote, c, &mut trace), vec![0, 1, 2, 3, 4]);
        assert_eq!(trace.failovers, 1, "{trace:?}");
        assert!(trace.stale, "{trace:?}");

        // A dead primary fails writes loudly — never a silent redirect
        // to the secondary.
        let err = remote.insert(c, boxed(1.0, 1.0, 1.0, 1.0)).err().unwrap();
        assert!(matches!(err, ShardError::Wire(_)), "{err}");
        let mut trace = ProbeTrace::default();
        assert_eq!(
            query_all(&remote, c, &mut trace),
            vec![0, 1, 2, 3, 4],
            "the failed write must not have reached the secondary"
        );

        // Two reads + one write = three consecutive transport failures:
        // the primary's breaker is now open, and further reads skip the
        // dead address without dialing (still one failover, still
        // correct).
        let health = remote.health();
        assert_eq!(health.len(), 2);
        assert!(health[0].primary && !health[1].primary);
        assert_eq!(health[0].stats.breaker, BreakerState::Open, "{health:?}");
        assert_eq!(health[0].stats.breaker_trips, 1, "{health:?}");
        assert_eq!(health[1].stats.breaker, BreakerState::Closed, "{health:?}");
        let mut trace = ProbeTrace::default();
        assert_eq!(query_all(&remote, c, &mut trace), vec![0, 1, 2, 3, 4]);
        assert_eq!(trace.failovers, 1, "{trace:?}");
        assert_eq!(trace.retries, 0, "an open breaker does not dial: {trace:?}");
        b.shutdown();
    }

    #[test]
    fn dead_secondary_desyncs_quietly_and_writes_keep_working() {
        let (a, b, mut remote) = start_replicated(BreakerConfig::default());
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap();
        b.shutdown();
        // The fan-out cannot reach the secondary: the write succeeds,
        // the replica is marked desynced, and reads stay primary-only
        // (non-stale) instead of failing over to known-bad state.
        remote.insert(c, boxed(11.0, 1.0, 2.0, 2.0)).unwrap();
        let health = remote.health();
        assert!(!health[0].desynced && health[1].desynced, "{health:?}");
        let mut trace = ProbeTrace::default();
        assert_eq!(query_all(&remote, c, &mut trace), vec![0, 1]);
        assert_eq!((trace.failovers, trace.stale), (0, false), "{trace:?}");
        let problems = remote.check();
        assert!(
            problems.iter().any(|p| p.contains("desynced")),
            "{problems:?}"
        );
        a.shutdown();
    }

    #[test]
    fn split_brain_replica_is_rejected_at_connect() {
        let a = start_one();
        // Seed the primary with state through a plain single-replica
        // client, then try to assemble a replica set with a pristine
        // process behind the second address.
        let mut seed =
            RemoteShard::connect(&a.addr().to_string(), universe(), Duration::from_secs(5))
                .unwrap();
        let c = seed.create_collection("objs").unwrap();
        seed.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap();
        drop(seed);
        let b = start_one();
        let err = RemoteShard::connect_replicated(
            &[a.addr().to_string(), b.addr().to_string()],
            universe(),
            Duration::from_secs(5),
            2,
            BreakerConfig::default(),
        )
        .err()
        .expect("a pristine replica behind a non-pristine primary must be rejected");
        assert!(err.to_string().contains("split-brain"), "{err}");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shard_metrics_come_back_over_the_wire() {
        let (server, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap();
        let mut trace = ProbeTrace::default();
        query_all(&remote, c, &mut trace);
        let snap = remote.metrics().expect("a v3 shard answers metrics");
        let h = snap
            .histogram("shard.query.latency")
            .expect("the query latency histogram exists");
        assert!(h.count() >= 1, "the query above was observed");
        assert!(
            snap.histogram("shard.insert.latency").is_some(),
            "mutations are observed too"
        );
        server.shutdown();
    }

    #[test]
    fn client_metrics_count_checkouts_and_trips() {
        let (server, mut remote) = start();
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap();
        let snap = remote.client_metrics().expect("pools always have metrics");
        let wait = snap
            .histogram("pool.checkout.wait")
            .expect("checkout wait histogram exists");
        assert!(wait.count() >= 2, "every request checks a connection out");
        assert_eq!(snap.counter("breaker.trips"), Some(0), "healthy address");
        server.shutdown();
    }

    #[test]
    fn traced_reads_record_failover_and_retry_events() {
        let (a, b, mut remote) = start_replicated(BreakerConfig {
            threshold: 100, // never trips: this test wants real dials
            cooldown: Duration::from_secs(3600),
        });
        let c = remote.create_collection("objs").unwrap();
        remote.insert(c, boxed(1.0, 1.0, 2.0, 2.0)).unwrap();
        let primary_addr = a.addr().to_string();
        a.shutdown();
        let t = scq_obs::TraceState::new(5);
        let _g = t.install();
        let mut trace = ProbeTrace::default();
        assert_eq!(query_all(&remote, c, &mut trace), vec![0]);
        assert_eq!(trace.failovers, 1, "{trace:?}");
        let spans = t.spans();
        assert!(
            spans
                .iter()
                .any(|s| s.name == "failover" && s.detail.contains(&primary_addr)),
            "the failover event names the dead primary: {spans:?}"
        );
        assert!(
            spans.iter().any(|s| s.name == "retry"),
            "the reconnect attempt left a retry event: {spans:?}"
        );
        b.shutdown();
    }

    /// A hand-rolled server that speaks only wire version 2 and rejects
    /// anything else outright — the pre-negotiation behavior real old
    /// shards have.
    fn strict_v2_server() -> std::net::SocketAddr {
        use crate::wire::{decode_request, encode_response};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let db = SpatialDatabase::<2>::new(AaBox::new([0.0, 0.0], [100.0, 100.0]));
            for stream in listener.incoming() {
                let Ok(mut s) = stream else { break };
                while let Ok(Some(payload)) = read_frame(&mut s) {
                    let (resp, close) = match decode_request(&payload) {
                        Ok(Request::Hello { version: 2 }) => {
                            (Response::Hello { version: 2 }, false)
                        }
                        Ok(Request::Hello { version }) => (
                            Response::Err(format!(
                                "wire version mismatch: shard speaks 2, client speaks {version}"
                            )),
                            true,
                        ),
                        Ok(Request::SnapshotRead | Request::SnapshotSave) => {
                            (Response::Bytes(snapshot::save(&db).to_vec()), false)
                        }
                        Ok(Request::Stat) => (Response::Stat(vec![]), false),
                        Ok(Request::Check) => (Response::Problems(vec![]), false),
                        // This build's decoder understands v3 frames; a
                        // real v2 server would answer "bad request".
                        // Either way, seeing one here fails the test.
                        Ok(Request::Traced { .. } | Request::Metrics) => (
                            Response::Err("bad request: a v2 server saw a v3 frame".into()),
                            true,
                        ),
                        Ok(_) => (Response::Err("unsupported".into()), false),
                        Err(e) => (Response::Err(format!("bad request: {e}")), true),
                    };
                    let _ = s.write_all(&frame(&encode_response(&resp)).unwrap());
                    if close {
                        break;
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn strict_v2_servers_negotiate_down_and_never_see_traced_frames() {
        let addr = strict_v2_server();
        let remote =
            RemoteShard::connect(&addr.to_string(), universe(), Duration::from_secs(5)).unwrap();
        // Even with a trace installed, the negotiated-v2 peer must get
        // plain frames — a Traced opcode would earn "bad request".
        let t = scq_obs::TraceState::new(11);
        let _g = t.install();
        let problems = remote.check();
        assert!(problems.is_empty(), "{problems:?}");
        assert!(
            remote.metrics().is_none(),
            "a v2 peer cannot answer metrics"
        );
    }

    #[test]
    fn breaker_trips_after_exactly_k_failures_and_half_open_probe_retrips() {
        let breaker = BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_secs(3600),
        };
        let a = start_one();
        let mut remote = RemoteShard::connect_replicated(
            &[a.addr().to_string()],
            universe(),
            Duration::from_secs(5),
            2,
            breaker,
        )
        .unwrap();
        let c = remote.create_collection("objs").unwrap();
        // Injected clock: the test advances time by hand, never sleeps.
        let now = Arc::new(Mutex::new(Instant::now()));
        let tick = now.clone();
        remote.set_clock(Arc::new(move || *tick.lock().unwrap()));
        a.shutdown();

        let probe = |remote: &RemoteShard| {
            let mut out = Vec::new();
            remote.try_corner_query(
                c,
                IndexKind::RTree,
                &CornerQuery::unconstrained(),
                &mut out,
                &mut ProbeTrace::default(),
            )
        };
        // K-1 failures: breaker still closed, every probe really dials.
        for i in 0..2 {
            assert!(probe(&remote).is_err());
            let stats = remote.pool_stats();
            assert_eq!(stats.breaker, BreakerState::Closed, "probe {i}: {stats:?}");
            assert_eq!(stats.breaker_trips, 0, "probe {i}: {stats:?}");
            assert_eq!(stats.consecutive_failures, i + 1, "probe {i}: {stats:?}");
        }
        // The K-th failure trips it…
        assert!(probe(&remote).is_err());
        let stats = remote.pool_stats();
        assert_eq!(stats.breaker, BreakerState::Open, "{stats:?}");
        assert_eq!(stats.breaker_trips, 1, "{stats:?}");
        // …and while open, requests fast-fail with the named error
        // without dialing or counting further failures.
        let err = probe(&remote).err().unwrap();
        assert!(err.to_string().contains("circuit breaker open"), "{err}");
        let stats = remote.pool_stats();
        assert_eq!(stats.consecutive_failures, 3, "{stats:?}");
        assert_eq!(stats.breaker_trips, 1, "{stats:?}");
        // Advancing the injected clock past the cooldown lets one
        // half-open probe through; the address is still dead, so the
        // probe re-trips the breaker immediately.
        *now.lock().unwrap() += Duration::from_secs(3601);
        let err = probe(&remote).err().unwrap();
        assert!(!err.to_string().contains("circuit breaker open"), "{err}");
        let stats = remote.pool_stats();
        assert_eq!(stats.breaker, BreakerState::Open, "{stats:?}");
        assert_eq!(stats.breaker_trips, 2, "{stats:?}");
    }
}
