//! The shard wire protocol: length-prefixed binary frames between the
//! routing tier and a shard process.
//!
//! Every message is one **frame**:
//!
//! ```text
//! u32 LE payload length | payload
//! payload := u8 opcode | body
//! ```
//!
//! A connection opens with a handshake — the client sends
//! [`Request::Hello`] carrying the `SCQW` magic and its protocol
//! version, the server answers with its own version or rejects a
//! mismatch and closes. On a v3-or-older connection the client then
//! sends one request frame at a time and reads exactly one response
//! frame per request. When both ends negotiate version 4 or newer the
//! connection switches to **multiplexed** framing: every payload after
//! the handshake carries a mux header (`u8 kind | u64 LE request id`),
//! many requests may be in flight at once, responses may arrive out of
//! order, and oversized answers stream as a chunk sequence closed by an
//! explicit end-of-stream frame (see the *mux framing* section).
//!
//! Decoding is defensive in the snapshot codecs' named-error style: a
//! frame longer than [`MAX_FRAME`] is rejected **before** any
//! allocation ([`WireError::Oversized`]), truncated bodies yield
//! [`WireError::Truncated`], bytes left after the declared body yield
//! [`WireError::TrailingData`], unknown opcodes and NaN coordinates are
//! named errors — never panics, never a silently wrong message.
//!
//! Regions travel as their disjoint box fragments (the same
//! representation the `SCQS` snapshot format uses); corner queries as
//! their raw corner bounds plus the unsatisfiable marker, which may
//! legitimately be ±∞ (unconstrained sides) but never NaN.

use bytes::{Buf, BufMut};
use scq_bbox::CornerQuery;
use scq_engine::{CollectionId, CompactReport, IndexKind};
use scq_region::{AaBox, Region};

/// Handshake magic carried by [`Request::Hello`].
pub const WIRE_MAGIC: &[u8; 4] = b"SCQW";
/// Current wire protocol version. Version 2 added the WAL operations
/// ([`Request::WalStat`] / [`Request::WalExport`] /
/// [`Request::WalApply`]); version 3 added request tracing
/// ([`Request::Traced`]) and the metrics scrape ([`Request::Metrics`]);
/// version 4 added request-id multiplexing and chunked response
/// streaming ([`MUX_REQ`] and friends) — many requests in flight per
/// connection, out-of-order completion, and answers bigger than one
/// frame — plus the per-collection epoch probe ([`Request::Epochs`]).
pub const WIRE_VERSION: u16 = 4;
/// Oldest protocol version this build still interoperates with. The
/// handshake negotiates `min(client, server)` down to this floor: a v4
/// client talks plain v2 (no trace headers, no metrics opcode, no mux
/// framing) to a v2 server, and a v4 server accepts v2/v3 clients
/// unchanged.
pub const MIN_WIRE_VERSION: u16 = 2;
/// First protocol version that understands [`Request::Traced`] and
/// [`Request::Metrics`]. Clients must not send either to a peer that
/// negotiated below this.
pub const TRACED_MIN_VERSION: u16 = 3;
/// First protocol version that speaks mux framing (request ids, chunked
/// streams). Below this a connection is strictly one-in-flight.
pub const MUX_MIN_VERSION: u16 = 4;
/// First protocol version that understands [`Request::Epochs`]. Below
/// this a mirror cannot ask the shard for its mutation epochs and must
/// seed them monotonically on its own.
pub const EPOCHS_MIN_VERSION: u16 = 4;
/// Hard cap on **one frame's** payload (snapshot streams are the
/// largest legitimate single frames). A length prefix above this is
/// rejected before any buffer is reserved. Since v4 this is no longer a
/// cap on an *answer*: a response larger than one frame streams as a
/// [`MUX_CHUNK`] sequence, each chunk individually under the cap, with
/// no bound on the reassembled total.
pub const MAX_FRAME: usize = 64 << 20;
/// Chunk size a v4 server slices oversized responses into. Deliberately
/// far below [`MAX_FRAME`] so a streaming answer never monopolizes the
/// connection: other responses interleave between chunks.
pub const STREAM_CHUNK: usize = 1 << 20;

/// Errors produced while encoding, framing or decoding wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The stream or frame ended before the declared content.
    Truncated,
    /// The stream closed inside the 4-byte length prefix itself — the
    /// peer died before even declaring a frame. Distinct from
    /// [`WireError::Truncated`] (which means the declared body never
    /// arrived): a prefix cut is always a transport-level death, never
    /// a codec disagreement, so retry logic can treat it as such.
    TruncatedLengthPrefix {
        /// Prefix bytes that did arrive (1..=3).
        got: usize,
    },
    /// A frame declared a payload longer than [`MAX_FRAME`].
    Oversized {
        /// Declared payload length.
        bytes: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The handshake did not carry the `SCQW` magic.
    BadMagic,
    /// The two ends speak different protocol versions.
    VersionMismatch {
        /// Version on this end.
        ours: u16,
        /// Version the peer announced.
        theirs: u16,
    },
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown response status byte.
    BadStatus(u8),
    /// Unknown index kind byte.
    BadIndexKind(u8),
    /// A coordinate was NaN (region fragments additionally reject ±∞).
    BadCoordinate,
    /// A string field was not valid UTF-8.
    BadString,
    /// Bytes remained after the declared message body.
    TrailingData {
        /// Number of unconsumed bytes.
        bytes: usize,
    },
    /// The address's circuit breaker is open: the client refused to
    /// dial at all because the address failed its last K requests and
    /// is in cooldown. Counts as a transport failure (the address is,
    /// as far as the client knows, dead) but is its own named variant
    /// so a fast-failed write is distinguishable from a socket error.
    BreakerOpen {
        /// The tripped address.
        addr: String,
    },
    /// The peer reported a failure executing the request.
    Remote(String),
    /// The response decoded fine but had the wrong shape for the
    /// request (a desynchronized or misbehaving peer).
    Unexpected(String),
    /// Socket-level failure.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::TruncatedLengthPrefix { got } => {
                write!(
                    f,
                    "stream closed inside a frame length prefix ({got} of 4 bytes)"
                )
            }
            WireError::Oversized { bytes, max } => {
                write!(f, "frame of {bytes} bytes exceeds the {max}-byte cap")
            }
            WireError::BadMagic => write!(f, "handshake is not shard wire protocol (bad magic)"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "wire version mismatch: we speak {ours}, peer speaks {theirs}"
                )
            }
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadStatus(s) => write!(f, "unknown response status {s:#04x}"),
            WireError::BadIndexKind(k) => write!(f, "unknown index kind byte {k}"),
            WireError::BadCoordinate => write!(f, "bad coordinate in wire message"),
            WireError::BadString => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingData { bytes } => {
                write!(f, "{bytes} trailing bytes after the message body")
            }
            WireError::BreakerOpen { addr } => {
                write!(f, "circuit breaker open for {addr}: address in cooldown")
            }
            WireError::Remote(m) => write!(f, "remote error: {m}"),
            WireError::Unexpected(m) => write!(f, "unexpected response: {m}"),
            WireError::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl WireError {
    /// Whether this error means the **transport** died (socket failure,
    /// connection closed mid-exchange) as opposed to the two ends
    /// disagreeing about the protocol or its contents.
    ///
    /// The distinction drives the degraded-read policy: transport
    /// deaths are expected at scale and degrade a read to a partial
    /// answer, while protocol-level trouble — a version mismatch, an
    /// unexpected response shape, undecodable bytes — is a
    /// misconfigured or corrupt deployment that must stay loud rather
    /// than masquerade as an outage.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            WireError::Io(_)
                | WireError::Truncated
                | WireError::TruncatedLengthPrefix { .. }
                | WireError::BreakerOpen { .. }
        )
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.to_string())
        }
    }
}

// ── messages ────────────────────────────────────────────────────────────

/// One request from the routing tier to a shard process.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Handshake: magic + client protocol version.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u16,
    },
    /// Create (or find) a collection.
    Create {
        /// Collection name.
        name: String,
    },
    /// Insert a region, returning its fresh local slot.
    Insert {
        /// Target collection.
        coll: CollectionId,
        /// The region to store.
        region: Region<2>,
    },
    /// Tombstone a local slot.
    Remove {
        /// Target collection.
        coll: CollectionId,
        /// Local slot index.
        local: u64,
    },
    /// Replace a live local slot's region.
    Update {
        /// Target collection.
        coll: CollectionId,
        /// Local slot index.
        local: u64,
        /// The replacement region.
        region: Region<2>,
    },
    /// Corner query against one index; answers local slot ids.
    Query {
        /// Target collection.
        coll: CollectionId,
        /// Index structure to probe.
        kind: IndexKind,
        /// The corner query.
        query: CornerQuery<2>,
    },
    /// Per-collection slot and live counts.
    Stat,
    /// Compact the shard, returning the local remap.
    Compact,
    /// Stream the shard's full `SCQS` snapshot **and truncate its
    /// WAL**: the stream is the shard's new recovery base, so the log
    /// behind it is sealed and deleted. This is the explicit
    /// `SNAPSHOT SAVE` path.
    SnapshotSave,
    /// Stream the shard's full `SCQS` snapshot read-only — no WAL
    /// truncation. Mirror bootstrap and resync use this so merely
    /// *reading* a shard never seals its log.
    SnapshotRead,
    /// Replace the shard's contents with an `SCQS` stream.
    SnapshotLoad {
        /// The snapshot bytes.
        stream: Vec<u8>,
    },
    /// Run the shard's integrity check.
    Check,
    /// The shard's write-ahead-log counters, if it keeps one.
    WalStat,
    /// Ship the shard's WAL segments (replica resync transport).
    WalExport,
    /// Rebuild a **pristine** shard from exported WAL segments, in
    /// place of a full [`Request::SnapshotLoad`].
    WalApply {
        /// Raw segment files, oldest first, as returned by
        /// [`Response::WalSegments`].
        segments: Vec<Vec<u8>>,
    },
    /// Close the connection.
    Bye,
    /// A version-3 envelope attributing its inner request to a client
    /// trace: the server executes `inner` with the trace installed so
    /// shard-side spans and events join the request's tree. Nesting
    /// `Traced` inside `Traced` is a codec error.
    Traced {
        /// The originating request's trace ID.
        trace_id: u64,
        /// The request to execute under that trace.
        inner: Box<Request>,
    },
    /// A coherent snapshot of the shard's metric instruments
    /// (version 3).
    Metrics,
    /// Per-collection mutation epochs, in collection-id order,
    /// answered as [`Response::Ids`] (version 4). The routing tier's
    /// write-through mirror uses this to verify its epochs stay in
    /// lockstep with the shard process.
    Epochs,
}

/// One response from a shard process. `Err` is the failure envelope for
/// any request; the other variants are the per-request success shapes.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake accepted; the server's protocol version.
    Hello {
        /// The server's [`WIRE_VERSION`].
        version: u16,
    },
    /// A collection id ([`Request::Create`]).
    Coll(CollectionId),
    /// A fresh local slot ([`Request::Insert`]).
    Slot(u64),
    /// A boolean outcome ([`Request::Remove`] / [`Request::Update`]).
    Flag(bool),
    /// Matching local slot ids ([`Request::Query`]).
    Ids(Vec<u64>),
    /// Per-collection `(name, slots, live)` ([`Request::Stat`]).
    Stat(Vec<(String, u64, u64)>),
    /// Compaction outcome ([`Request::Compact`]).
    Remap {
        /// Tombstoned slots reclaimed.
        reclaimed: u64,
        /// Per-collection local-slot remap (`None` = dropped).
        remap: Vec<Vec<Option<u64>>>,
    },
    /// Raw bytes ([`Request::SnapshotSave`]).
    Bytes(Vec<u8>),
    /// Success with nothing to report ([`Request::SnapshotLoad`],
    /// [`Request::Bye`]).
    Ok,
    /// Integrity problems, empty when healthy ([`Request::Check`]).
    Problems(Vec<String>),
    /// WAL counters ([`Request::WalStat`]).
    WalStat(crate::wal::WalStats),
    /// WAL segments for resync ([`Request::WalExport`]). `complete`
    /// false (with no segments) means the log no longer reaches
    /// genesis, or is too large to ship — fall back to a snapshot.
    WalSegments {
        /// Whether the segments cover the shard's whole history.
        complete: bool,
        /// Raw segment files, oldest first.
        segments: Vec<Vec<u8>>,
    },
    /// Records applied from a shipped WAL ([`Request::WalApply`]).
    Applied(u64),
    /// The shard's metric snapshot ([`Request::Metrics`]).
    Metrics(scq_obs::Snapshot),
    /// The request failed on the shard.
    Err(String),
}

impl Response {
    /// Converts a [`CompactReport`] into the wire remap shape.
    pub fn from_compact(report: &CompactReport) -> Response {
        Response::Remap {
            reclaimed: report.slots_reclaimed as u64,
            remap: report
                .remap
                .iter()
                .map(|coll| coll.iter().map(|s| s.map(|i| i as u64)).collect())
                .collect(),
        }
    }
}

// ── framing ─────────────────────────────────────────────────────────────

/// Wraps a payload in a length-prefixed frame. The sender enforces the
/// same [`MAX_FRAME`] cap the receiver does: an oversized payload (a
/// giant snapshot stream) is a named error here, before any bytes hit
/// the socket — not a poisoned connection on the other end. (Past the
/// cap, a v4 connection streams the answer as [`MUX_CHUNK`] frames,
/// each individually under the cap.)
pub fn frame(payload: &[u8]) -> Result<Vec<u8>, WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversized {
            bytes: payload.len(),
            max: MAX_FRAME,
        });
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_slice(payload);
    Ok(out)
}

/// Reads one frame from a blocking stream. Distinguishes a clean close
/// before any byte (`Ok(None)`), a close inside the length prefix
/// ([`WireError::TruncatedLengthPrefix`]), and a close inside the
/// declared body ([`WireError::Truncated`]).
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::TruncatedLengthPrefix { got }),
            Ok(n) => got += n,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            bytes: len,
            max: MAX_FRAME,
        });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(payload))
}

/// Incremental frame assembly for readers that poll with a timeout
/// (the shard server's connection loop): bytes are pushed as they
/// arrive and complete frames pop out, so a slow sender's frame
/// survives arbitrarily many read timeouts.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one is buffered. An oversized
    /// length prefix errors immediately — the stream can never be
    /// resynchronized past it.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Oversized {
                bytes: len,
                max: MAX_FRAME,
            });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }

    /// Whether a partial frame is buffered (a disconnect now would be
    /// mid-stream).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }
}

// ── scalar codecs ───────────────────────────────────────────────────────

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    // The format frames strings with a u16 length; anything longer
    // (a pathological error message) is truncated at a char boundary
    // rather than silently producing an unparseable frame.
    let mut end = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    buf.put_u16_le(end as u16);
    buf.put_slice(&s.as_bytes()[..end]);
}

fn get_string(buf: &mut &[u8]) -> Result<String, WireError> {
    need(buf, 2)?;
    let len = buf.get_u16_le() as usize;
    need(buf, len)?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| WireError::BadString)
}

fn kind_byte(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::RTree => 0,
        IndexKind::GridFile => 1,
        IndexKind::Scan => 2,
    }
}

fn kind_from_byte(b: u8) -> Result<IndexKind, WireError> {
    match b {
        0 => Ok(IndexKind::RTree),
        1 => Ok(IndexKind::GridFile),
        2 => Ok(IndexKind::Scan),
        other => Err(WireError::BadIndexKind(other)),
    }
}

/// Appends a region as `u32 fragment count | fragments (4 f64 LE)`.
pub fn put_region(buf: &mut Vec<u8>, region: &Region<2>) {
    buf.put_u32_le(region.boxes().len() as u32);
    for b in region.boxes() {
        for c in b.lo().iter().chain(b.hi().iter()) {
            buf.put_f64_le(*c);
        }
    }
}

/// Decodes a region written by [`put_region`], validating finiteness
/// and buffer bounds before any allocation.
pub fn get_region(buf: &mut &[u8]) -> Result<Region<2>, WireError> {
    need(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    need(buf, n.saturating_mul(32))?;
    let mut boxes = Vec::with_capacity(n);
    for _ in 0..n {
        let mut c = [0.0f64; 4];
        for v in &mut c {
            *v = buf.get_f64_le();
            if !v.is_finite() {
                return Err(WireError::BadCoordinate);
            }
        }
        boxes.push(AaBox::new([c[0], c[1]], [c[2], c[3]]));
    }
    Ok(Region::from_boxes(boxes))
}

fn put_query(buf: &mut Vec<u8>, q: &CornerQuery<2>) {
    for d in 0..2 {
        buf.put_f64_le(q.lo_min[d]);
        buf.put_f64_le(q.lo_max[d]);
        buf.put_f64_le(q.hi_min[d]);
        buf.put_f64_le(q.hi_max[d]);
    }
    buf.put_u8(q.is_unsatisfiable() as u8);
}

fn get_query(buf: &mut &[u8]) -> Result<CornerQuery<2>, WireError> {
    need(buf, 8 * 8 + 1)?;
    let mut lo_min = [0.0f64; 2];
    let mut lo_max = [0.0f64; 2];
    let mut hi_min = [0.0f64; 2];
    let mut hi_max = [0.0f64; 2];
    for d in 0..2 {
        lo_min[d] = buf.get_f64_le();
        lo_max[d] = buf.get_f64_le();
        hi_min[d] = buf.get_f64_le();
        hi_max[d] = buf.get_f64_le();
    }
    // Query bounds are legitimately ±∞ (unconstrained sides) but NaN
    // would poison every comparison downstream.
    if lo_min
        .iter()
        .chain(&lo_max)
        .chain(&hi_min)
        .chain(&hi_max)
        .any(|c| c.is_nan())
    {
        return Err(WireError::BadCoordinate);
    }
    let unsat = buf.get_u8() & 1 != 0;
    Ok(CornerQuery::from_parts(
        lo_min, lo_max, hi_min, hi_max, unsat,
    ))
}

// ── request codec ───────────────────────────────────────────────────────

// Request opcodes are public protocol surface: the fault-injection
// proxy ([`crate::fault`]) matches scripted triggers on the first
// payload byte of a request frame.

/// Opcode of [`Request::Hello`].
pub const OP_HELLO: u8 = 0x01;
/// Opcode of [`Request::Create`].
pub const OP_CREATE: u8 = 0x02;
/// Opcode of [`Request::Insert`].
pub const OP_INSERT: u8 = 0x03;
/// Opcode of [`Request::Remove`].
pub const OP_REMOVE: u8 = 0x04;
/// Opcode of [`Request::Update`].
pub const OP_UPDATE: u8 = 0x05;
/// Opcode of [`Request::Query`].
pub const OP_QUERY: u8 = 0x06;
/// Opcode of [`Request::Stat`].
pub const OP_STAT: u8 = 0x07;
/// Opcode of [`Request::Compact`].
pub const OP_COMPACT: u8 = 0x08;
/// Opcode of [`Request::SnapshotSave`].
pub const OP_SNAP_SAVE: u8 = 0x09;
/// Opcode of [`Request::SnapshotLoad`].
pub const OP_SNAP_LOAD: u8 = 0x0A;
/// Opcode of [`Request::Check`].
pub const OP_CHECK: u8 = 0x0B;
/// Opcode of [`Request::Bye`].
pub const OP_BYE: u8 = 0x0C;
/// Opcode of [`Request::WalStat`].
pub const OP_WAL_STAT: u8 = 0x0D;
/// Opcode of [`Request::WalExport`].
pub const OP_WAL_EXPORT: u8 = 0x0E;
/// Opcode of [`Request::WalApply`].
pub const OP_WAL_APPLY: u8 = 0x0F;
/// Opcode of [`Request::SnapshotRead`].
pub const OP_SNAP_READ: u8 = 0x10;
/// Opcode of [`Request::Traced`] (version 3).
pub const OP_TRACED: u8 = 0x11;
/// Opcode of [`Request::Metrics`] (version 3).
pub const OP_METRICS: u8 = 0x12;
/// Opcode of [`Request::Epochs`] (version 4).
pub const OP_EPOCHS: u8 = 0x13;

/// Encodes a list of raw segment files: count, then per segment a
/// 64-bit length and the bytes.
fn put_segments(buf: &mut Vec<u8>, segments: &[Vec<u8>]) {
    buf.put_u32_le(segments.len() as u32);
    for seg in segments {
        buf.put_u64_le(seg.len() as u64);
        buf.put_slice(seg);
    }
}

fn get_segments(buf: &mut &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
    need(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    let mut segments = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        need(buf, 8)?;
        let len = buf.get_u64_le() as usize;
        need(buf, len)?;
        let mut seg = vec![0u8; len];
        buf.copy_to_slice(&mut seg);
        segments.push(seg);
    }
    Ok(segments)
}

/// Serializes a request into a frame payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Hello { version } => {
            buf.put_u8(OP_HELLO);
            buf.put_slice(WIRE_MAGIC);
            buf.put_u16_le(*version);
        }
        Request::Create { name } => {
            buf.put_u8(OP_CREATE);
            put_string(&mut buf, name);
        }
        Request::Insert { coll, region } => {
            buf.put_u8(OP_INSERT);
            buf.put_u32_le(coll.0 as u32);
            put_region(&mut buf, region);
        }
        Request::Remove { coll, local } => {
            buf.put_u8(OP_REMOVE);
            buf.put_u32_le(coll.0 as u32);
            buf.put_u64_le(*local);
        }
        Request::Update {
            coll,
            local,
            region,
        } => {
            buf.put_u8(OP_UPDATE);
            buf.put_u32_le(coll.0 as u32);
            buf.put_u64_le(*local);
            put_region(&mut buf, region);
        }
        Request::Query { coll, kind, query } => {
            buf.put_u8(OP_QUERY);
            buf.put_u32_le(coll.0 as u32);
            buf.put_u8(kind_byte(*kind));
            put_query(&mut buf, query);
        }
        Request::Stat => buf.put_u8(OP_STAT),
        Request::Compact => buf.put_u8(OP_COMPACT),
        Request::SnapshotSave => buf.put_u8(OP_SNAP_SAVE),
        Request::SnapshotRead => buf.put_u8(OP_SNAP_READ),
        Request::SnapshotLoad { stream } => {
            buf.put_u8(OP_SNAP_LOAD);
            buf.put_slice(stream);
        }
        Request::Check => buf.put_u8(OP_CHECK),
        Request::WalStat => buf.put_u8(OP_WAL_STAT),
        Request::WalExport => buf.put_u8(OP_WAL_EXPORT),
        Request::WalApply { segments } => {
            buf.put_u8(OP_WAL_APPLY);
            put_segments(&mut buf, segments);
        }
        Request::Bye => buf.put_u8(OP_BYE),
        Request::Traced { trace_id, inner } => {
            buf.put_u8(OP_TRACED);
            buf.put_u64_le(*trace_id);
            // Length-framed inner payload: truncating anywhere inside
            // stays a named decode error (the raw-tail shapes like
            // SnapshotLoad would otherwise make a shorter cut "valid").
            let inner = encode_request(inner);
            buf.put_u32_le(inner.len() as u32);
            buf.put_slice(&inner);
        }
        Request::Metrics => buf.put_u8(OP_METRICS),
        Request::Epochs => buf.put_u8(OP_EPOCHS),
    }
    buf
}

/// Decodes a request payload, consuming it exactly.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut buf = payload;
    need(&buf, 1)?;
    let op = buf.get_u8();
    let req = match op {
        OP_HELLO => {
            need(&buf, 6)?;
            let mut magic = [0u8; 4];
            buf.copy_to_slice(&mut magic);
            if &magic != WIRE_MAGIC {
                return Err(WireError::BadMagic);
            }
            Request::Hello {
                version: buf.get_u16_le(),
            }
        }
        OP_CREATE => Request::Create {
            name: get_string(&mut buf)?,
        },
        OP_INSERT => {
            need(&buf, 4)?;
            let coll = CollectionId(buf.get_u32_le() as usize);
            Request::Insert {
                coll,
                region: get_region(&mut buf)?,
            }
        }
        OP_REMOVE => {
            need(&buf, 12)?;
            Request::Remove {
                coll: CollectionId(buf.get_u32_le() as usize),
                local: buf.get_u64_le(),
            }
        }
        OP_UPDATE => {
            need(&buf, 12)?;
            let coll = CollectionId(buf.get_u32_le() as usize);
            let local = buf.get_u64_le();
            Request::Update {
                coll,
                local,
                region: get_region(&mut buf)?,
            }
        }
        OP_QUERY => {
            need(&buf, 5)?;
            let coll = CollectionId(buf.get_u32_le() as usize);
            let kind = kind_from_byte(buf.get_u8())?;
            Request::Query {
                coll,
                kind,
                query: get_query(&mut buf)?,
            }
        }
        OP_STAT => Request::Stat,
        OP_COMPACT => Request::Compact,
        OP_SNAP_SAVE => Request::SnapshotSave,
        OP_SNAP_READ => Request::SnapshotRead,
        OP_SNAP_LOAD => {
            let stream = buf.to_vec();
            buf = &buf[buf.len()..];
            Request::SnapshotLoad { stream }
        }
        OP_CHECK => Request::Check,
        OP_WAL_STAT => Request::WalStat,
        OP_WAL_EXPORT => Request::WalExport,
        OP_WAL_APPLY => Request::WalApply {
            segments: get_segments(&mut buf)?,
        },
        OP_BYE => Request::Bye,
        OP_TRACED => {
            need(&buf, 12)?;
            let trace_id = buf.get_u64_le();
            let len = buf.get_u32_le() as usize;
            need(&buf, len)?;
            let inner_payload = &buf[..len];
            buf = &buf[len..];
            let inner = decode_request(inner_payload)?;
            if matches!(inner, Request::Traced { .. }) {
                return Err(WireError::Unexpected("nested Traced request".into()));
            }
            Request::Traced {
                trace_id,
                inner: Box::new(inner),
            }
        }
        OP_METRICS => Request::Metrics,
        OP_EPOCHS => Request::Epochs,
        other => return Err(WireError::BadOpcode(other)),
    };
    if buf.has_remaining() {
        return Err(WireError::TrailingData {
            bytes: buf.remaining(),
        });
    }
    Ok(req)
}

// ── response codec ──────────────────────────────────────────────────────

const ST_OK: u8 = 0x00;
const ST_ERR: u8 = 0x01;

const RK_HELLO: u8 = 0x01;
const RK_COLL: u8 = 0x02;
const RK_SLOT: u8 = 0x03;
const RK_FLAG: u8 = 0x04;
const RK_IDS: u8 = 0x05;
const RK_STAT: u8 = 0x06;
const RK_REMAP: u8 = 0x07;
const RK_BYTES: u8 = 0x08;
const RK_OK: u8 = 0x09;
const RK_PROBLEMS: u8 = 0x0A;
const RK_WAL_STAT: u8 = 0x0B;
const RK_WAL_SEGMENTS: u8 = 0x0C;
const RK_APPLIED: u8 = 0x0D;
const RK_METRICS: u8 = 0x0E;

// Instrument kind bytes inside a [`Response::Metrics`] snapshot row.
const MK_COUNTER: u8 = 0;
const MK_GAUGE: u8 = 1;
const MK_HISTOGRAM: u8 = 2;

fn put_snapshot(buf: &mut Vec<u8>, snap: &scq_obs::Snapshot) {
    buf.put_u32_le(snap.rows.len() as u32);
    for (name, value) in &snap.rows {
        put_string(buf, name);
        match value {
            scq_obs::Value::Counter(v) => {
                buf.put_u8(MK_COUNTER);
                buf.put_u64_le(*v);
            }
            scq_obs::Value::Gauge(v) => {
                buf.put_u8(MK_GAUGE);
                // Two's-complement through u64: the vendored bytes stub
                // has no signed putters.
                buf.put_u64_le(*v as u64);
            }
            scq_obs::Value::Histogram(h) => {
                buf.put_u8(MK_HISTOGRAM);
                for b in &h.buckets {
                    buf.put_u64_le(*b);
                }
                buf.put_u64_le(h.sum_us);
            }
        }
    }
}

fn get_snapshot(buf: &mut &[u8]) -> Result<scq_obs::Snapshot, WireError> {
    need(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    let mut rows = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = get_string(buf)?;
        need(buf, 1)?;
        let value = match buf.get_u8() {
            MK_COUNTER => {
                need(buf, 8)?;
                scq_obs::Value::Counter(buf.get_u64_le())
            }
            MK_GAUGE => {
                need(buf, 8)?;
                scq_obs::Value::Gauge(buf.get_u64_le() as i64)
            }
            MK_HISTOGRAM => {
                need(buf, (scq_obs::N_BUCKETS + 1) * 8)?;
                let mut h = scq_obs::HistogramSnapshot::default();
                for b in &mut h.buckets {
                    *b = buf.get_u64_le();
                }
                h.sum_us = buf.get_u64_le();
                scq_obs::Value::Histogram(h)
            }
            other => return Err(WireError::BadOpcode(other)),
        };
        rows.push((name, value));
    }
    Ok(scq_obs::Snapshot { rows })
}

/// Serializes a response into a frame payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Err(message) => {
            buf.put_u8(ST_ERR);
            put_string(&mut buf, message);
            return buf;
        }
        _ => buf.put_u8(ST_OK),
    }
    match resp {
        Response::Hello { version } => {
            buf.put_u8(RK_HELLO);
            buf.put_u16_le(*version);
        }
        Response::Coll(id) => {
            buf.put_u8(RK_COLL);
            buf.put_u32_le(id.0 as u32);
        }
        Response::Slot(local) => {
            buf.put_u8(RK_SLOT);
            buf.put_u64_le(*local);
        }
        Response::Flag(v) => {
            buf.put_u8(RK_FLAG);
            buf.put_u8(*v as u8);
        }
        Response::Ids(ids) => {
            buf.put_u8(RK_IDS);
            buf.put_u32_le(ids.len() as u32);
            for id in ids {
                buf.put_u64_le(*id);
            }
        }
        Response::Stat(rows) => {
            buf.put_u8(RK_STAT);
            buf.put_u32_le(rows.len() as u32);
            for (name, slots, live) in rows {
                put_string(&mut buf, name);
                buf.put_u64_le(*slots);
                buf.put_u64_le(*live);
            }
        }
        Response::Remap { reclaimed, remap } => {
            buf.put_u8(RK_REMAP);
            buf.put_u64_le(*reclaimed);
            buf.put_u32_le(remap.len() as u32);
            for coll in remap {
                buf.put_u64_le(coll.len() as u64);
                for slot in coll {
                    // 0 = dropped, else new index + 1.
                    buf.put_u64_le(slot.map_or(0, |i| i + 1));
                }
            }
        }
        Response::Bytes(bytes) => {
            buf.put_u8(RK_BYTES);
            buf.put_slice(bytes);
        }
        Response::Ok => buf.put_u8(RK_OK),
        Response::Problems(problems) => {
            buf.put_u8(RK_PROBLEMS);
            buf.put_u32_le(problems.len() as u32);
            for p in problems {
                put_string(&mut buf, p);
            }
        }
        Response::WalStat(stats) => {
            buf.put_u8(RK_WAL_STAT);
            buf.put_u64_le(stats.appended);
            buf.put_u64_le(stats.replayed);
            buf.put_u64_le(stats.fsync_batches);
            buf.put_u64_le(stats.segments);
            buf.put_u64_le(stats.bytes);
            buf.put_u64_le(stats.torn_tails);
        }
        Response::WalSegments { complete, segments } => {
            buf.put_u8(RK_WAL_SEGMENTS);
            buf.put_u8(*complete as u8);
            put_segments(&mut buf, segments);
        }
        Response::Applied(n) => {
            buf.put_u8(RK_APPLIED);
            buf.put_u64_le(*n);
        }
        Response::Metrics(snap) => {
            buf.put_u8(RK_METRICS);
            put_snapshot(&mut buf, snap);
        }
        Response::Err(_) => unreachable!("handled above"),
    }
    buf
}

/// Decodes a response payload, consuming it exactly.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut buf = payload;
    need(&buf, 1)?;
    match buf.get_u8() {
        ST_ERR => {
            let message = get_string(&mut buf)?;
            if buf.has_remaining() {
                return Err(WireError::TrailingData {
                    bytes: buf.remaining(),
                });
            }
            return Ok(Response::Err(message));
        }
        ST_OK => {}
        other => return Err(WireError::BadStatus(other)),
    }
    need(&buf, 1)?;
    let resp = match buf.get_u8() {
        RK_HELLO => {
            need(&buf, 2)?;
            Response::Hello {
                version: buf.get_u16_le(),
            }
        }
        RK_COLL => {
            need(&buf, 4)?;
            Response::Coll(CollectionId(buf.get_u32_le() as usize))
        }
        RK_SLOT => {
            need(&buf, 8)?;
            Response::Slot(buf.get_u64_le())
        }
        RK_FLAG => {
            need(&buf, 1)?;
            Response::Flag(buf.get_u8() & 1 != 0)
        }
        RK_IDS => {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            need(&buf, n.saturating_mul(8))?;
            Response::Ids((0..n).map(|_| buf.get_u64_le()).collect())
        }
        RK_STAT => {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut rows = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = get_string(&mut buf)?;
                need(&buf, 16)?;
                rows.push((name, buf.get_u64_le(), buf.get_u64_le()));
            }
            Response::Stat(rows)
        }
        RK_REMAP => {
            need(&buf, 12)?;
            let reclaimed = buf.get_u64_le();
            let n_coll = buf.get_u32_le() as usize;
            let mut remap = Vec::with_capacity(n_coll.min(1024));
            for _ in 0..n_coll {
                need(&buf, 8)?;
                let n_slots = buf.get_u64_le() as usize;
                need(&buf, n_slots.saturating_mul(8))?;
                remap.push(
                    (0..n_slots)
                        .map(|_| match buf.get_u64_le() {
                            0 => None,
                            i => Some(i - 1),
                        })
                        .collect(),
                );
            }
            Response::Remap { reclaimed, remap }
        }
        RK_BYTES => {
            let bytes = buf.to_vec();
            buf = &buf[buf.len()..];
            Response::Bytes(bytes)
        }
        RK_OK => Response::Ok,
        RK_PROBLEMS => {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut problems = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                problems.push(get_string(&mut buf)?);
            }
            Response::Problems(problems)
        }
        RK_WAL_STAT => {
            need(&buf, 48)?;
            Response::WalStat(crate::wal::WalStats {
                appended: buf.get_u64_le(),
                replayed: buf.get_u64_le(),
                fsync_batches: buf.get_u64_le(),
                segments: buf.get_u64_le(),
                bytes: buf.get_u64_le(),
                torn_tails: buf.get_u64_le(),
            })
        }
        RK_WAL_SEGMENTS => {
            need(&buf, 1)?;
            let complete = buf.get_u8() & 1 != 0;
            Response::WalSegments {
                complete,
                segments: get_segments(&mut buf)?,
            }
        }
        RK_APPLIED => {
            need(&buf, 8)?;
            Response::Applied(buf.get_u64_le())
        }
        RK_METRICS => Response::Metrics(get_snapshot(&mut buf)?),
        other => return Err(WireError::BadOpcode(other)),
    };
    if buf.has_remaining() {
        return Err(WireError::TrailingData {
            bytes: buf.remaining(),
        });
    }
    Ok(resp)
}

// ── mux framing (v4) ────────────────────────────────────────────────────
//
// After a handshake that lands on version 4 or newer, every payload on
// the connection (both directions) carries a 9-byte mux header in front
// of the v3 message bytes:
//
// ```text
// payload := u8 mux-kind | u64 LE request id | body
// ```
//
// The outer `u32 LE length | payload` framing is unchanged, so
// `FrameReader`, `read_frame` and every frame-level tool (the fault
// proxy included) work on mux traffic untouched. The kind bytes live in
// 0xF1..=0xF5 — disjoint from every request opcode (0x01..=0x12) and
// response status byte (0x00/0x01), so a plain v3 payload can never be
// mistaken for a mux one (`is_mux`). Hello frames are exchanged before
// the version is known and therefore always travel un-muxed.
//
// Responses complete in one of two shapes: a single [`MUX_RESP`] frame
// carrying the whole encoded response, or — when the response exceeds
// the server's chunk threshold — a run of [`MUX_CHUNK`] frames closed
// by a [`MUX_END`] frame, all sharing the request id. Chunks of
// *different* ids may interleave freely; [`MuxReassembly`] keeps the
// per-id partial buffers apart and never mixes them.

/// Mux kind: client→server, `body` is an encoded [`Request`].
pub const MUX_REQ: u8 = 0xF1;
/// Mux kind: server→client, `body` is a complete encoded [`Response`].
pub const MUX_RESP: u8 = 0xF2;
/// Mux kind: server→client, one non-final slice of an oversized
/// response. The reassembled concatenation of every chunk body plus the
/// [`MUX_END`] body is the encoded [`Response`].
pub const MUX_CHUNK: u8 = 0xF3;
/// Mux kind: server→client, the final slice of a chunked response —
/// the explicit end-of-stream marker.
pub const MUX_END: u8 = 0xF4;
/// Mux kind: client→server, empty body. The client no longer wants the
/// answer for this id; the server drops any undelivered frames for it.
/// Best-effort — a response already in flight may still arrive and is
/// discarded client-side.
pub const MUX_CANCEL: u8 = 0xF5;

/// Byte length of the mux header (`u8` kind + `u64` request id).
pub const MUX_HEADER: usize = 9;

/// Whether a decoded frame payload is mux-framed (first byte is a mux
/// kind). Kind bytes are disjoint from opcodes and status bytes, so
/// this is unambiguous on any well-formed payload.
pub fn is_mux(payload: &[u8]) -> bool {
    matches!(payload.first(), Some(&k) if (MUX_REQ..=MUX_CANCEL).contains(&k))
}

/// One decoded mux frame: kind byte, request id, and the body bytes
/// (an encoded request, an encoded response, or a response slice).
#[derive(Clone, Debug, PartialEq)]
pub struct MuxFrame {
    /// One of [`MUX_REQ`]..=[`MUX_CANCEL`].
    pub kind: u8,
    /// The request id this frame belongs to.
    pub id: u64,
    /// Frame body (may be empty, e.g. [`MUX_CANCEL`]).
    pub body: Vec<u8>,
}

/// Prepends the mux header to a body, producing a frame payload ready
/// for [`frame`].
pub fn encode_mux(kind: u8, id: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MUX_HEADER + body.len());
    out.put_u8(kind);
    out.put_u64_le(id);
    out.put_slice(body);
    out
}

/// Splits a mux header off a frame payload. A payload shorter than the
/// header is [`WireError::Truncated`]; an unknown kind byte is
/// [`WireError::BadOpcode`] — named errors in the codec's usual style,
/// never a panic.
pub fn decode_mux(payload: &[u8]) -> Result<MuxFrame, WireError> {
    if payload.len() < MUX_HEADER {
        return Err(WireError::Truncated);
    }
    let kind = payload[0];
    if !(MUX_REQ..=MUX_CANCEL).contains(&kind) {
        return Err(WireError::BadOpcode(kind));
    }
    let id = u64::from_le_bytes(payload[1..MUX_HEADER].try_into().unwrap());
    Ok(MuxFrame {
        kind,
        id,
        body: payload[MUX_HEADER..].to_vec(),
    })
}

/// Splits one encoded response into the mux payloads that deliver it
/// for request `id`: a single [`MUX_RESP`] when it fits in `chunk`
/// bytes, otherwise [`MUX_CHUNK`] slices closed by a [`MUX_END`]
/// carrying the final slice. Servers pass [`STREAM_CHUNK`]; tests pass
/// tiny chunk sizes to exercise many-chunk streams cheaply.
pub fn split_response(id: u64, response: &[u8], chunk: usize) -> Vec<Vec<u8>> {
    let chunk = chunk.max(1);
    if response.len() <= chunk {
        return vec![encode_mux(MUX_RESP, id, response)];
    }
    let mut out = Vec::with_capacity(response.len() / chunk + 1);
    let mut slices = response.chunks(chunk).peekable();
    while let Some(s) = slices.next() {
        let kind = if slices.peek().is_some() {
            MUX_CHUNK
        } else {
            MUX_END
        };
        out.push(encode_mux(kind, id, s));
    }
    out
}

/// Client-side reassembly of interleaved mux response streams: partial
/// chunk buffers keyed by request id, so chunks of different requests
/// can interleave arbitrarily and still reassemble into the right
/// answers. Feed every inbound server frame to [`MuxReassembly::accept`];
/// it yields `(id, response bytes)` exactly when a response completes.
#[derive(Debug, Default)]
pub struct MuxReassembly {
    partial: std::collections::HashMap<u64, Vec<u8>>,
}

impl MuxReassembly {
    /// Empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts one server→client mux frame. Returns the completed
    /// `(id, response bytes)` when this frame finishes a response
    /// ([`MUX_RESP`], or [`MUX_END`] closing a chunk run), `None` while
    /// a stream is still open. Client-side kinds ([`MUX_REQ`],
    /// [`MUX_CANCEL`]) and a [`MUX_RESP`] colliding with an open chunk
    /// stream for the same id are [`WireError::Unexpected`] — a
    /// desynchronized peer, kept loud.
    pub fn accept(&mut self, frame: MuxFrame) -> Result<Option<(u64, Vec<u8>)>, WireError> {
        match frame.kind {
            MUX_RESP => {
                if self.partial.contains_key(&frame.id) {
                    return Err(WireError::Unexpected(format!(
                        "unchunked response for request {} with a chunk stream open",
                        frame.id
                    )));
                }
                Ok(Some((frame.id, frame.body)))
            }
            MUX_CHUNK => {
                self.partial
                    .entry(frame.id)
                    .or_default()
                    .extend_from_slice(&frame.body);
                Ok(None)
            }
            MUX_END => {
                let mut buf = self.partial.remove(&frame.id).unwrap_or_default();
                buf.extend_from_slice(&frame.body);
                Ok(Some((frame.id, buf)))
            }
            other => Err(WireError::Unexpected(format!(
                "client received mux kind {other:#04x} (request-direction frame)"
            ))),
        }
    }

    /// Drops any partial stream for `id` (a cancelled or timed-out
    /// request). Returns whether a partial stream existed.
    pub fn abort(&mut self, id: u64) -> bool {
        self.partial.remove(&id).is_some()
    }

    /// Number of ids with a chunk stream currently open.
    pub fn in_progress(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_bbox::Bbox;

    fn sample_requests() -> Vec<Request> {
        let region = Region::from_boxes([
            AaBox::new([1.0, 2.0], [3.0, 4.0]),
            AaBox::new([7.0, 7.0], [9.0, 8.0]),
        ]);
        vec![
            Request::Hello {
                version: WIRE_VERSION,
            },
            Request::Create {
                name: "towns".into(),
            },
            Request::Insert {
                coll: CollectionId(3),
                region: region.clone(),
            },
            Request::Insert {
                coll: CollectionId(0),
                region: Region::empty(),
            },
            Request::Remove {
                coll: CollectionId(1),
                local: 42,
            },
            Request::Update {
                coll: CollectionId(2),
                local: 7,
                region,
            },
            Request::Query {
                coll: CollectionId(0),
                kind: IndexKind::GridFile,
                query: CornerQuery::unconstrained()
                    .and_overlaps(&Bbox::new([1.0, 1.0], [5.0, 5.0]))
                    .and_contains(&Bbox::new([2.0, 2.0], [3.0, 3.0])),
            },
            Request::Query {
                coll: CollectionId(0),
                kind: IndexKind::Scan,
                query: CornerQuery::unsatisfiable(),
            },
            Request::Stat,
            Request::Compact,
            Request::SnapshotSave,
            Request::SnapshotRead,
            Request::SnapshotLoad {
                stream: vec![1, 2, 3, 4, 5],
            },
            Request::Check,
            Request::WalStat,
            Request::WalExport,
            Request::WalApply {
                segments: vec![vec![1, 2, 3], vec![], vec![42; 9]],
            },
            Request::WalApply { segments: vec![] },
            Request::Bye,
            Request::Traced {
                trace_id: 0xDEAD_BEEF_CAFE,
                inner: Box::new(Request::Query {
                    coll: CollectionId(4),
                    kind: IndexKind::RTree,
                    query: CornerQuery::unconstrained()
                        .and_overlaps(&Bbox::new([0.0, 0.0], [2.0, 2.0])),
                }),
            },
            Request::Traced {
                trace_id: 1,
                inner: Box::new(Request::Stat),
            },
            Request::Metrics,
            Request::Epochs,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Hello {
                version: WIRE_VERSION,
            },
            Response::Coll(CollectionId(5)),
            Response::Slot(99),
            Response::Flag(true),
            Response::Flag(false),
            Response::Ids(vec![0, 3, 17, u64::MAX - 1]),
            Response::Ids(vec![]),
            Response::Stat(vec![("towns".into(), 10, 8), ("roads".into(), 0, 0)]),
            Response::Remap {
                reclaimed: 3,
                remap: vec![vec![Some(0), None, Some(1)], vec![]],
            },
            Response::Bytes(vec![9, 8, 7]),
            Response::Ok,
            Response::Problems(vec!["shard desync".into()]),
            Response::Problems(vec![]),
            Response::WalStat(crate::wal::WalStats {
                appended: 11,
                replayed: 7,
                fsync_batches: 3,
                segments: 2,
                bytes: 4096,
                torn_tails: 1,
            }),
            Response::WalSegments {
                complete: true,
                segments: vec![vec![5, 4, 3], vec![2]],
            },
            Response::WalSegments {
                complete: false,
                segments: vec![],
            },
            Response::Applied(12),
            Response::Metrics(scq_obs::Snapshot { rows: vec![] }),
            Response::Metrics(scq_obs::Snapshot {
                rows: vec![
                    (
                        "shard.op.latency".into(),
                        scq_obs::Value::Histogram(scq_obs::HistogramSnapshot {
                            buckets: std::array::from_fn(|i| (i as u64) % 5),
                            sum_us: 12_345,
                        }),
                    ),
                    ("shard.ops".into(), scq_obs::Value::Counter(42)),
                    ("shard.queue.depth".into(), scq_obs::Value::Gauge(-3)),
                ],
            }),
            Response::Err("no such collection".into()),
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let payload = encode_request(&req);
            assert_eq!(decode_request(&payload).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let payload = encode_response(&resp);
            assert_eq!(decode_response(&payload).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn unsatisfiable_query_round_trips_as_unsatisfiable() {
        let payload = encode_request(&Request::Query {
            coll: CollectionId(0),
            kind: IndexKind::RTree,
            query: CornerQuery::unsatisfiable(),
        });
        match decode_request(&payload).unwrap() {
            Request::Query { query, .. } => assert!(query.is_unsatisfiable()),
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn truncated_payloads_error_never_panic() {
        for req in sample_requests() {
            let payload = encode_request(&req);
            for cut in 0..payload.len() {
                // SnapshotLoad's body is raw bytes: every prefix that
                // still carries the opcode is a (shorter) valid message.
                if payload[0] == OP_SNAP_LOAD && cut >= 1 {
                    assert!(decode_request(&payload[..cut]).is_ok());
                } else {
                    assert!(
                        decode_request(&payload[..cut]).is_err(),
                        "{req:?} prefix {cut} accepted"
                    );
                }
            }
        }
        for resp in sample_responses() {
            let payload = encode_response(&resp);
            for cut in 0..payload.len() {
                if payload.len() >= 2 && payload[1] == RK_BYTES && cut >= 2 {
                    assert!(decode_response(&payload[..cut]).is_ok());
                } else {
                    assert!(
                        decode_response(&payload[..cut]).is_err(),
                        "{resp:?} prefix {cut} accepted"
                    );
                }
            }
        }
    }

    #[test]
    fn nested_traced_requests_are_rejected() {
        let payload = encode_request(&Request::Traced {
            trace_id: 9,
            inner: Box::new(Request::Stat),
        });
        // Hand-build Traced(Traced(Stat)): the decoder must name the
        // nesting, not recurse forever or accept it.
        let mut outer = Vec::new();
        outer.put_u8(OP_TRACED);
        outer.put_u64_le(8);
        outer.put_u32_le(payload.len() as u32);
        outer.put_slice(&payload);
        assert!(matches!(
            decode_request(&outer).err(),
            Some(WireError::Unexpected(_))
        ));
    }

    #[test]
    fn traced_round_trips_the_inner_request_exactly() {
        for inner in [
            Request::Stat,
            Request::Metrics,
            Request::Create { name: "t".into() },
        ] {
            let req = Request::Traced {
                trace_id: u64::MAX,
                inner: Box::new(inner),
            };
            let payload = encode_request(&req);
            assert_eq!(payload[0], OP_TRACED);
            assert_eq!(decode_request(&payload).unwrap(), req);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Stat);
        payload.push(0);
        assert_eq!(
            decode_request(&payload).err(),
            Some(WireError::TrailingData { bytes: 1 })
        );
        let mut payload = encode_response(&Response::Slot(3));
        payload.extend_from_slice(&[0, 0]);
        assert_eq!(
            decode_response(&payload).err(),
            Some(WireError::TrailingData { bytes: 2 })
        );
    }

    #[test]
    fn unknown_opcodes_and_kinds_are_named_errors() {
        assert_eq!(
            decode_request(&[0xEE]).err(),
            Some(WireError::BadOpcode(0xEE))
        );
        assert_eq!(
            decode_response(&[0x07]).err(),
            Some(WireError::BadStatus(0x07))
        );
        // query with a bogus index kind byte
        let mut payload = encode_request(&Request::Query {
            coll: CollectionId(0),
            kind: IndexKind::Scan,
            query: CornerQuery::unconstrained(),
        });
        payload[5] = 9;
        assert_eq!(
            decode_request(&payload).err(),
            Some(WireError::BadIndexKind(9))
        );
    }

    #[test]
    fn bad_magic_and_nan_coordinates_are_rejected() {
        let mut payload = encode_request(&Request::Hello {
            version: WIRE_VERSION,
        });
        payload[1] = b'X';
        assert_eq!(decode_request(&payload).err(), Some(WireError::BadMagic));
        // NaN in a query bound
        let mut payload = encode_request(&Request::Query {
            coll: CollectionId(0),
            kind: IndexKind::RTree,
            query: CornerQuery::unconstrained(),
        });
        let nan_at = payload.len() - 1 - 8; // last f64 before the unsat byte
        payload[nan_at..nan_at + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            decode_request(&payload).err(),
            Some(WireError::BadCoordinate)
        );
        // infinite region fragment coordinate
        let mut payload = encode_request(&Request::Insert {
            coll: CollectionId(0),
            region: Region::from_box(AaBox::new([0.0, 0.0], [1.0, 1.0])),
        });
        let frag_at = payload.len() - 32;
        payload[frag_at..frag_at + 8].copy_from_slice(&f64::INFINITY.to_le_bytes());
        assert_eq!(
            decode_request(&payload).err(),
            Some(WireError::BadCoordinate)
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut fr = FrameReader::new();
        fr.push(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            fr.next_frame().err(),
            Some(WireError::Oversized { .. })
        ));
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut r: &[u8] = &huge;
        assert!(matches!(
            read_frame(&mut r).err(),
            Some(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn frame_reader_assembles_across_arbitrary_chunking() {
        let a = frame(&encode_request(&Request::Stat)).unwrap();
        let b = frame(&encode_request(&Request::Create {
            name: "roads".into(),
        }))
        .unwrap();
        let mut stream: Vec<u8> = a.clone();
        stream.extend_from_slice(&b);
        for chunk in [1usize, 2, 3, 5, stream.len()] {
            let mut fr = FrameReader::new();
            let mut frames = Vec::new();
            for piece in stream.chunks(chunk) {
                fr.push(piece);
                while let Some(f) = fr.next_frame().unwrap() {
                    frames.push(f);
                }
            }
            assert_eq!(frames.len(), 2, "chunk size {chunk}");
            assert_eq!(decode_request(&frames[0]).unwrap(), Request::Stat);
            assert!(!fr.mid_frame());
        }
    }

    #[test]
    fn read_frame_distinguishes_clean_close_from_truncation() {
        let payload = encode_request(&Request::Stat);
        let framed = frame(&payload).unwrap();
        let mut r: &[u8] = &framed;
        assert_eq!(read_frame(&mut r).unwrap(), Some(payload));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean close");
        let mut cut: &[u8] = &framed[..framed.len() - 1];
        assert_eq!(read_frame(&mut cut).err(), Some(WireError::Truncated));
        let mut header_only: &[u8] = &framed[..2];
        assert_eq!(
            read_frame(&mut header_only).err(),
            Some(WireError::TruncatedLengthPrefix { got: 2 })
        );
    }

    /// Every truncation offset of a whole **framed** message (length
    /// prefix included, the layer the payload-truncation test above
    /// never cut): offset 0 is a clean close, offsets inside the prefix
    /// are the distinct [`WireError::TruncatedLengthPrefix`], offsets
    /// inside the declared body are [`WireError::Truncated`]. Run over
    /// every sample request and response so new frame shapes stay
    /// covered automatically.
    #[test]
    fn every_framing_truncation_offset_is_a_named_error() {
        let mut framed_messages: Vec<Vec<u8>> = sample_requests()
            .iter()
            .map(|r| frame(&encode_request(r)).unwrap())
            .collect();
        framed_messages.extend(
            sample_responses()
                .iter()
                .map(|r| frame(&encode_response(r)).unwrap()),
        );
        for framed in framed_messages {
            for cut in 0..framed.len() {
                let mut r: &[u8] = &framed[..cut];
                match read_frame(&mut r) {
                    Ok(None) => assert_eq!(cut, 0, "only an empty stream is a clean close"),
                    Err(WireError::TruncatedLengthPrefix { got }) => {
                        assert!((1..4).contains(&cut), "prefix error at offset {cut}");
                        assert_eq!(got, cut);
                    }
                    Err(WireError::Truncated) => {
                        assert!(cut >= 4, "body error before the prefix completed")
                    }
                    other => panic!("offset {cut}: unexpected {other:?}"),
                }
            }
            // the un-truncated frame still reads back whole
            let mut r: &[u8] = &framed;
            assert!(read_frame(&mut r).unwrap().is_some());
        }
    }

    // ── mux framing (v4) ────────────────────────────────────────────

    #[test]
    fn mux_frames_round_trip() {
        let body = encode_request(&Request::Stat);
        for (kind, id, body) in [
            (MUX_REQ, 1u64, body.clone()),
            (MUX_RESP, u64::MAX, encode_response(&Response::Ok)),
            (MUX_CHUNK, 7, vec![0xAB; 100]),
            (MUX_END, 7, vec![]),
            (MUX_CANCEL, 42, vec![]),
        ] {
            let payload = encode_mux(kind, id, &body);
            assert!(is_mux(&payload));
            let frame = decode_mux(&payload).unwrap();
            assert_eq!(frame, MuxFrame { kind, id, body });
        }
    }

    #[test]
    fn mux_kinds_are_disjoint_from_plain_payloads() {
        // No v3 request or response payload can be mistaken for a mux
        // frame: kind bytes live above every opcode and status byte.
        for req in sample_requests() {
            assert!(!is_mux(&encode_request(&req)), "{req:?}");
        }
        for resp in sample_responses() {
            assert!(!is_mux(&encode_response(&resp)), "{resp:?}");
        }
        assert!(!is_mux(&[]));
        assert_eq!(
            decode_mux(&encode_mux(0xF6, 1, &[])).err(),
            Some(WireError::BadOpcode(0xF6))
        );
    }

    #[test]
    fn split_response_streams_and_reassembles_exactly() {
        let resp = Response::Ids((0..1000).collect());
        let encoded = encode_response(&resp);
        // Fits: one MUX_RESP.
        let whole = split_response(3, &encoded, encoded.len());
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0][0], MUX_RESP);
        // Oversized: CHUNK… + END, every slice under the chunk size,
        // reassembling byte-exact.
        let parts = split_response(3, &encoded, 100);
        assert!(parts.len() >= 2);
        let mut reasm = MuxReassembly::new();
        let mut done = None;
        for (i, p) in parts.iter().enumerate() {
            let f = decode_mux(p).unwrap();
            assert!(f.body.len() <= 100);
            assert_eq!(f.id, 3);
            let expected_kind = if i + 1 == parts.len() {
                MUX_END
            } else {
                MUX_CHUNK
            };
            assert_eq!(f.kind, expected_kind, "slice {i}");
            if let Some(full) = reasm.accept(f).unwrap() {
                assert_eq!(i + 1, parts.len(), "completed before the END frame");
                done = Some(full);
            }
        }
        let (id, bytes) = done.expect("stream never completed");
        assert_eq!(id, 3);
        assert_eq!(bytes, encoded);
        assert_eq!(decode_response(&bytes).unwrap(), resp);
        assert_eq!(reasm.in_progress(), 0);
    }

    #[test]
    fn mux_reassembly_rejects_request_direction_and_colliding_frames() {
        let mut reasm = MuxReassembly::new();
        for kind in [MUX_REQ, MUX_CANCEL] {
            assert!(matches!(
                reasm.accept(MuxFrame {
                    kind,
                    id: 1,
                    body: vec![]
                }),
                Err(WireError::Unexpected(_))
            ));
        }
        // A whole response colliding with an open chunk stream for the
        // same id is a desynchronized server, not silently resolved.
        reasm
            .accept(MuxFrame {
                kind: MUX_CHUNK,
                id: 9,
                body: vec![1, 2],
            })
            .unwrap();
        assert!(matches!(
            reasm.accept(MuxFrame {
                kind: MUX_RESP,
                id: 9,
                body: vec![]
            }),
            Err(WireError::Unexpected(_))
        ));
        // Aborting a cancelled id drops its partial bytes.
        assert!(reasm.abort(9));
        assert!(!reasm.abort(9));
        assert_eq!(reasm.in_progress(), 0);
    }

    /// The v4 mirror of [`every_framing_truncation_offset_is_a_named_error`]:
    /// cut a framed mux message (request, whole response, chunk,
    /// end-of-stream, cancel) at every byte offset. The frame layer
    /// yields the same named errors as v3 (the outer framing is
    /// unchanged), and a payload cut inside the 9-byte mux header is
    /// [`WireError::Truncated`] from `decode_mux`.
    #[test]
    fn every_mux_truncation_offset_is_a_named_error() {
        let req_body = encode_request(&Request::Query {
            coll: CollectionId(0),
            kind: IndexKind::RTree,
            query: CornerQuery::unconstrained(),
        });
        let resp_body = encode_response(&Response::Ids(vec![1, 2, 3]));
        let payloads = vec![
            encode_mux(MUX_REQ, 1, &req_body),
            encode_mux(MUX_RESP, 2, &resp_body),
            encode_mux(MUX_CHUNK, 3, &resp_body[..5]),
            encode_mux(MUX_END, 3, &resp_body[5..]),
            encode_mux(MUX_CANCEL, 4, &[]),
        ];
        for payload in payloads {
            // Frame layer: identical behavior to v3 framing.
            let framed = frame(&payload).unwrap();
            for cut in 0..framed.len() {
                let mut r: &[u8] = &framed[..cut];
                match read_frame(&mut r) {
                    Ok(None) => assert_eq!(cut, 0),
                    Err(WireError::TruncatedLengthPrefix { got }) => {
                        assert!((1..4).contains(&cut));
                        assert_eq!(got, cut);
                    }
                    Err(WireError::Truncated) => assert!(cut >= 4),
                    other => panic!("offset {cut}: unexpected {other:?}"),
                }
            }
            // Mux header layer: a cut inside the header is named; past
            // the header the frame decodes (the body is opaque here)
            // and the *inner* codec is the one that rejects short
            // bodies — covered by truncated_payloads_error_never_panic.
            for cut in 0..payload.len() {
                let res = decode_mux(&payload[..cut]);
                if cut < MUX_HEADER {
                    assert_eq!(res.err(), Some(WireError::Truncated), "cut {cut}");
                } else {
                    assert_eq!(res.unwrap().body, payload[MUX_HEADER..cut].to_vec());
                }
            }
            // An un-truncated payload round-trips whole.
            assert!(is_mux(&payload));
            assert!(decode_mux(&payload).is_ok());
        }
    }
}

#[cfg(test)]
mod mux_interleaving_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Responses split into chunk streams and interleaved out of
        /// order across many request ids always reassemble byte-exact
        /// per id — reassembly never mixes bytes across ids, whatever
        /// the arrival order.
        #[test]
        fn out_of_order_interleaving_never_crosses_ids(
            sizes in proptest::collection::vec(0usize..400, 1..6),
            chunk in 1usize..64,
            picks in proptest::collection::vec(0usize..64, 0..512),
        ) {
            // One response per id: distinct, recognizable bodies.
            let responses: Vec<(u64, Vec<u8>)> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    let id = i as u64 + 1;
                    let ids = (0..n as u64).map(|v| v * 1000 + id).collect();
                    (id, encode_response(&Response::Ids(ids)))
                })
                .collect();
            let mut queues: Vec<std::collections::VecDeque<Vec<u8>>> = responses
                .iter()
                .map(|(id, enc)| split_response(*id, enc, chunk).into())
                .collect();
            // Interleave: each pick selects among the still-non-empty
            // streams; leftovers drain round-robin so every stream
            // always finishes.
            let mut arrival = Vec::new();
            let mut picks = picks.into_iter();
            loop {
                let live: Vec<usize> = (0..queues.len())
                    .filter(|&q| !queues[q].is_empty())
                    .collect();
                if live.is_empty() {
                    break;
                }
                let q = live[picks.next().unwrap_or(0) % live.len()];
                arrival.push(queues[q].pop_front().unwrap());
            }
            let mut reasm = MuxReassembly::new();
            let mut completed = std::collections::HashMap::new();
            for payload in arrival {
                let frame = decode_mux(&payload).unwrap();
                if let Some((id, bytes)) = reasm.accept(frame).unwrap() {
                    prop_assert!(completed.insert(id, bytes).is_none(), "id completed twice");
                }
            }
            prop_assert_eq!(reasm.in_progress(), 0);
            prop_assert_eq!(completed.len(), responses.len());
            for (id, enc) in &responses {
                prop_assert_eq!(completed.get(id), Some(enc));
            }
        }
    }
}
