#![warn(missing_docs)]

//! Sharded spatial database: the scale-out layer over
//! [`scq_engine`]'s single-store engine.
//!
//! A [`ShardedDatabase`] partitions every collection across `N` shards
//! by **z-order range**: each object routes to the shard owning the
//! Morton code of its bounding-box center ([`ShardRouter`],
//! [`scq_zorder::shard_ranges`]). Each shard is a complete
//! [`scq_engine::SpatialDatabase`] — its own R-tree, grid file and scan
//! index, its own snapshot stream, its own integrity check — and the
//! sharding layer above owns only routing and the global↔local slot
//! mapping. That separation is the architectural seam for multi-process
//! deployment: a shard never knows about its siblings.
//!
//! Three properties make the layer transparent to the query engine:
//!
//! * **One executor code path.** [`ShardedDatabase`] implements
//!   [`scq_engine::StoreView`], so the naive, triangular, bbox and
//!   work-stealing parallel executors run against it unchanged; corner
//!   queries fan out per level to only the shards the router cannot
//!   prune (counted in [`scq_engine::ExecStats::shards_pruned`]).
//! * **Stable global refs.** Objects are addressed by global
//!   [`scq_engine::ObjectRef`]s with the same stability contract as the
//!   unsharded store — even across [`ShardedDatabase::update`]
//!   migrations that move an object between shards.
//! * **Answer equivalence.** A sharded database answers every corner
//!   query and every constraint query identically to an unsharded
//!   database built from the same mutation sequence (property-tested in
//!   `tests/shard_props.rs` at the workspace root).
//!
//! [`exec::execute_fanout`] adds shard-level parallelism with a
//! deterministic merge; [`snapshot`] streams each shard independently
//! under a cross-validated manifest.
//!
//! Since PR 4 the *location* of a shard is abstract: the routing layer
//! drives [`ShardBackend`]s, and the store is generic over them.
//! [`LocalShard`] keeps everything in-process (the default, zero
//! regression); [`RemoteShard`] speaks the length-prefixed shard
//! [`wire`] protocol to a shard **process** ([`server`],
//! `scq-serve --shard`), and a [`ClusterSpec`] names the processes and
//! their z-ranges so `scq-serve --cluster` can front N of them as one
//! database — same global refs, same migration-on-update, same
//! snapshot manifest, property-tested identical to the in-process
//! store (`tests/cluster_props.rs`).
//!
//! Since PR 5 the remote transport is a **connection pool** (N
//! lazily-dialed sockets per shard, sized by the spec's `pool`
//! directive), so concurrent executors probe one shard in parallel,
//! and reads are **first-class degraded**: a shard process dying
//! mid-query costs its candidates, not the query — the result comes
//! back [`scq_engine::QueryOutcome::Partial`] naming the missing
//! shards, with `ExecStats { shards_unavailable, retries }` counting
//! the damage. Mutations still fail loudly and are never auto-retried.
//! Every failure path is reproducible in `cargo test` through the
//! deterministic [`fault::FaultProxy`].

pub mod backend;
pub mod cluster;
pub mod database;
pub mod exec;
pub mod fault;
pub mod remote;
pub mod router;
pub mod server;
pub mod snapshot;
pub mod wal;
pub mod wire;

pub use backend::{LocalShard, ProbeTrace, ShardBackend, ShardError};
pub use cluster::{ClusterError, ClusterSpec, ClusterSpecError, ShardSpec};
pub use database::{ShardedDatabase, DEFAULT_ROUTER_BITS};
pub use exec::{execute, execute_fanout};
pub use fault::{Direction, FaultAction, FaultGate, FaultProxy, FaultRule, FrameMatch};
pub use remote::{
    BreakerClock, BreakerConfig, BreakerState, PoolStats, RemoteShard, ReplicaHealth,
    ResyncOutcome, DEFAULT_BREAKER_COOLDOWN_MS, DEFAULT_BREAKER_THRESHOLD, DEFAULT_POOL_SIZE,
};
pub use router::ShardRouter;
pub use server::{serve_shard, ShardServerConfig, ShardServerHandle};
pub use snapshot::{load_from_dir, reload_from_dir, save_to_dir, ShardSnapshotError};
pub use wal::{Wal, WalConfig, WalError, WalExport, WalStats};
pub use wire::WireError;
