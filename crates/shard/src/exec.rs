//! Cross-shard query execution.
//!
//! Because [`crate::ShardedDatabase`] implements
//! [`StoreView`](scq_engine::StoreView), every engine executor already
//! runs against it unchanged — [`execute`] is that single-threaded
//! entry point, and [`scq_engine::bbox_execute_parallel`] gives
//! work-stealing parallelism over the same view. What this module adds
//! is the **shard fan-out**: [`execute_fanout`] partitions the first
//! retrieval level by owning shard, runs the sequential executor once
//! per shard (each restricted to its shard's first-level objects,
//! unrestricted below), and merges the per-shard [`QueryResult`]s
//! **deterministically** — solutions concatenate in ascending shard
//! order and [`ExecStats`] aggregate through the saturating
//! [`ExecStats::merge`]. The partition is exact (every live object of
//! the first collection is owned by exactly one shard), so the merged
//! solution set equals the unsharded one.

use scq_bbox::{Bbox, CornerQuery};
use scq_engine::view::{ProbeReport, StoreView};
use scq_engine::{
    bbox_execute_opts, CollectionId, ExecError, ExecOptions, ExecStats, IndexKind, ObjectRef,
    Query, QueryOutcome, QueryResult,
};
use scq_region::{AaBox, Region};

use crate::backend::ShardBackend;
use crate::database::ShardedDatabase;

/// Executes a query against the sharded database on the calling
/// thread: the engine's bbox executor over the sharded view, corner
/// queries pruned per level by the router. Generic over the shard
/// backend — the same entry point serves the in-process store and a
/// cluster of shard processes.
pub fn execute<B: ShardBackend>(
    db: &ShardedDatabase<B>,
    query: &Query<2>,
    kind: IndexKind,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    bbox_execute_opts(db, query, kind, options)
}

/// A view of the sharded database whose collection `coll` is restricted
/// to the objects owned by one shard. All other collections — and all
/// per-object reads — pass through unrestricted, so only the retrieval
/// level over `coll` is partitioned.
struct ShardSlice<'a, B: ShardBackend> {
    inner: &'a ShardedDatabase<B>,
    coll: CollectionId,
    shard: usize,
    /// The slice's live empty-region objects (owned storage because the
    /// trait hands out a slice).
    empty: Vec<usize>,
}

impl<'a, B: ShardBackend> ShardSlice<'a, B> {
    fn new(inner: &'a ShardedDatabase<B>, coll: CollectionId, shard: usize) -> Self {
        let empty = inner
            .empty_objects(coll)
            .iter()
            .copied()
            .filter(|&gi| {
                inner.shard_of(ObjectRef {
                    collection: coll,
                    index: gi,
                }) == shard
            })
            .collect();
        ShardSlice {
            inner,
            coll,
            shard,
            empty,
        }
    }
}

impl<B: ShardBackend> StoreView<2> for ShardSlice<'_, B> {
    fn universe(&self) -> &AaBox<2> {
        self.inner.universe()
    }

    // Lengths delegate to the *global* view on purpose: the planner's
    // default retrieval order keys on live_len, and every slice must
    // produce the same order for the partition argument to hold.
    fn collection_len(&self, coll: CollectionId) -> usize {
        self.inner.collection_len(coll)
    }

    fn live_len(&self, coll: CollectionId) -> usize {
        self.inner.live_len(coll)
    }

    // The logical epoch likewise comes from the routing tier: every
    // slice of the same database reports the same epoch, so cache
    // entries taken through one slice stay valid for all of them.
    fn epoch(&self, coll: CollectionId) -> u64 {
        self.inner.epoch(coll)
    }

    fn is_live(&self, obj: ObjectRef) -> bool {
        self.inner.is_live(obj)
    }

    fn region(&self, obj: ObjectRef) -> &Region<2> {
        self.inner.region(obj)
    }

    fn bbox(&self, obj: ObjectRef) -> Bbox<2> {
        self.inner.bbox(obj)
    }

    fn query_collection(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<2>,
        out: &mut Vec<u64>,
    ) -> ProbeReport {
        if coll != self.coll {
            return self.inner.query_collection(coll, kind, q, out);
        }
        // Probe only this slice's shard; the other shards' copies of
        // the level are someone else's slice. Not counted as "pruned":
        // the router didn't prove them empty, the fan-out assigned them
        // elsewhere.
        let routed_here = crate::database::SHARD_SCRATCH.with(|buf| {
            let mut cands = buf.borrow_mut();
            self.inner.router().candidate_shards(q, &mut cands);
            cands.contains(&self.shard)
        });
        if !routed_here {
            return ProbeReport::pruned(1); // the router pruned this slice's only shard
        }
        let mut report = ProbeReport::default();
        self.inner
            .probe_shard(self.shard, coll, kind, q, out, &mut report);
        report
    }

    fn empty_objects(&self, coll: CollectionId) -> &[usize] {
        if coll == self.coll {
            &self.empty
        } else {
            self.inner.empty_objects(coll)
        }
    }

    fn live_indices_into(&self, coll: CollectionId, out: &mut Vec<usize>) {
        if coll != self.coll {
            self.inner.live_indices_into(coll, out);
            return;
        }
        out.extend(self.inner.live_indices(coll).filter(|&gi| {
            self.inner.shard_of(ObjectRef {
                collection: coll,
                index: gi,
            }) == self.shard
        }));
    }
}

/// Fans the sequential bbox executor out across shards — one scoped
/// thread per shard, each running the whole query with the **first**
/// retrieval level restricted to the objects its shard owns — and
/// merges the results deterministically (solutions in ascending shard
/// order, stats through [`ExecStats::merge`]).
///
/// Falls back to [`execute`] when the fan-out cannot be partitioned:
/// a single shard, no unknowns, or a first-level collection that some
/// other retrieval level shares (restricting it would restrict the
/// deeper level too).
///
/// With [`ExecOptions::max_solutions`], each shard is capped
/// individually and the merged list truncated, so the result is a
/// prefix-of-shard-order subset — deterministic, like the sequential
/// executor, unlike the work-stealing one.
pub fn execute_fanout<B: ShardBackend>(
    db: &ShardedDatabase<B>,
    query: &Query<2>,
    kind: IndexKind,
    options: ExecOptions,
) -> Result<QueryResult, ExecError> {
    query.validate().map_err(ExecError::InvalidQuery)?;
    let order = query.retrieval_order(db);
    let unknowns = query.unknown_vars();
    let first_coll = order
        .iter()
        .find_map(|v| unknowns.iter().find(|(u, _)| u == v).map(|&(_, c)| c));
    let Some(first_coll) = first_coll else {
        return execute(db, query, kind, options); // no unknowns
    };
    let shared = unknowns.iter().filter(|&&(_, c)| c == first_coll).count() > 1;
    if db.n_shards() == 1 || shared {
        return execute(db, query, kind, options);
    }

    // Workers return `Result` — a dead shard process degrades its
    // slice to a partial answer inside the executor (no panic crosses
    // the scope; only a genuine bug would, and that still fails the
    // query rather than the process). The caller's trace (if any) is
    // reinstalled in each worker so per-shard probe spans land in the
    // same trace as the fan-out itself.
    let trace = scq_obs::current();
    let results: Vec<Result<QueryResult, ExecError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..db.n_shards())
            .map(|s| {
                let trace = trace.clone();
                scope.spawn(move || {
                    let _install = trace.map(|t| t.install());
                    let _span = scq_obs::span("fanout.slice", format!("shard={s}"));
                    let slice = ShardSlice::new(db, first_coll, s);
                    bbox_execute_opts(&slice, query, kind, options)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    let merge_span = scq_obs::span("merge", format!("shards={}", db.n_shards()));
    let mut merged = QueryResult {
        solutions: Vec::new(),
        stats: ExecStats::default(),
        outcome: QueryOutcome::Complete,
    };
    for r in results {
        let r = r?;
        merged.stats.merge(&r.stats);
        merged.outcome.merge(&r.outcome);
        merged.solutions.extend(r.solutions);
    }
    drop(merge_span);
    if let Some(max) = options.max_solutions {
        merged.solutions.truncate(max);
    }
    merged.stats.solutions = merged.solutions.len();
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scq_core::parse_system;

    /// A two-collection overlay workload spread across the universe.
    fn setup(n_shards: usize) -> (ShardedDatabase, Query<2>) {
        let mut db = ShardedDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]), n_shards);
        let xs = db.collection("xs");
        let ys = db.collection("ys");
        for i in 0..14 {
            let t = (i * 19 % 87) as f64;
            db.insert(
                xs,
                Region::from_box(AaBox::new([t, t * 0.7], [t + 8.0, t * 0.7 + 9.0])),
            );
            db.insert(
                ys,
                Region::from_box(AaBox::new(
                    [t + 3.0, t * 0.7 + 2.0],
                    [t + 9.0, t * 0.7 + 7.0],
                )),
            );
        }
        let sys = parse_system("X & Y != 0; X <= W").unwrap();
        let q = Query::new(sys)
            .known("W", Region::from_box(AaBox::new([0.0, 0.0], [80.0, 80.0])))
            .from_collection("X", xs)
            .from_collection("Y", ys);
        (db, q)
    }

    #[test]
    fn fanout_matches_single_threaded() {
        let (db, q) = setup(5);
        let seq = execute(&db, &q, IndexKind::RTree, ExecOptions::all()).unwrap();
        assert!(!seq.solutions.is_empty());
        let fan = execute_fanout(&db, &q, IndexKind::RTree, ExecOptions::all()).unwrap();
        let mut a = seq.solutions.clone();
        let mut b = fan.solutions.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(fan.stats.solutions, seq.stats.solutions);
    }

    #[test]
    fn fanout_is_deterministic() {
        let (db, q) = setup(4);
        let a = execute_fanout(&db, &q, IndexKind::GridFile, ExecOptions::all()).unwrap();
        let b = execute_fanout(&db, &q, IndexKind::GridFile, ExecOptions::all()).unwrap();
        assert_eq!(a.solutions, b.solutions, "merge order is shard order");
        // Wall-clock timings differ run to run; the work counters must not.
        assert_eq!(a.stats.without_timings(), b.stats.without_timings());
    }

    #[test]
    fn fanout_respects_solution_cap() {
        let (db, q) = setup(4);
        let full = execute_fanout(&db, &q, IndexKind::RTree, ExecOptions::all()).unwrap();
        assert!(full.solutions.len() >= 2);
        let capped = execute_fanout(
            &db,
            &q,
            IndexKind::RTree,
            ExecOptions {
                max_solutions: Some(2),
            },
        )
        .unwrap();
        assert_eq!(capped.solutions.len(), 2);
        for s in &capped.solutions {
            assert!(full.solutions.contains(s));
        }
    }

    #[test]
    fn work_stealing_runs_over_the_sharded_view() {
        let (db, q) = setup(4);
        let seq = execute(&db, &q, IndexKind::RTree, ExecOptions::all()).unwrap();
        let par =
            scq_engine::bbox_execute_parallel(&db, &q, IndexKind::RTree, 3, ExecOptions::all())
                .unwrap();
        let mut a = seq.solutions.clone();
        let mut b = par.solutions.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn router_prunes_on_selective_queries() {
        // A "district" query: the known containment region covers only
        // the low corner of the universe, so the X row's corner query
        // proves the high-z shards disjoint. (Centered or
        // overlap-only queries legitimately cannot prune — an overlap
        // constraint bounds no box center.)
        let (db, mut q) = setup(6);
        let w = q.system.table.get("W").unwrap();
        q.bindings.insert(
            w,
            scq_engine::VarBinding::Known(Region::from_box(AaBox::new([0.0, 0.0], [35.0, 35.0]))),
        );
        let r = execute(&db, &q, IndexKind::RTree, ExecOptions::all()).unwrap();
        assert!(
            r.stats.shards_pruned > 0,
            "the known-region containment row must prune shards: {}",
            r.stats
        );
    }

    #[test]
    fn shared_collection_falls_back() {
        // Two unknowns over the same collection: fan-out would restrict
        // both levels, so it must fall back to the plain path (and
        // still be correct).
        let mut db = ShardedDatabase::new(AaBox::new([0.0, 0.0], [100.0, 100.0]), 4);
        let xs = db.collection("xs");
        for i in 0..10 {
            let t = (i * 9) as f64;
            db.insert(xs, Region::from_box(AaBox::new([t, 0.0], [t + 12.0, 10.0])));
        }
        let sys = parse_system("X & Y != 0").unwrap();
        let q = Query::new(sys)
            .from_collection("X", xs)
            .from_collection("Y", xs);
        let plain = execute(&db, &q, IndexKind::Scan, ExecOptions::all()).unwrap();
        let fan = execute_fanout(&db, &q, IndexKind::Scan, ExecOptions::all()).unwrap();
        let mut a = plain.solutions.clone();
        let mut b = fan.solutions.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
