//! The shard backend abstraction: where one shard's objects live.
//!
//! [`crate::ShardedDatabase`] never touches a [`SpatialDatabase`]
//! directly any more — it drives a [`ShardBackend`], the complete
//! contract between the routing layer and one shard: mutation
//! (insert / remove / update), corner-query candidate retrieval, the
//! per-slot read surface the executors bind regions from, statistics,
//! compaction with a remap report, integrity checking, and snapshot
//! streaming. Two implementations exist:
//!
//! * [`LocalShard`] — a [`SpatialDatabase`] in this process (exactly
//!   the pre-backend behavior, zero overhead, infallible);
//! * [`crate::RemoteShard`] — a client speaking the length-prefixed
//!   shard wire protocol ([`crate::wire`]) to a shard **process**
//!   behind a socket, keeping a write-through region mirror so the
//!   executors still bind `&Region` without a round trip.
//!
//! The routing layer is deliberately ignorant of which one it holds:
//! all cross-shard bookkeeping (global slots, migration) lives above
//! this trait, so a cluster of OS processes and an in-process sharded
//! store answer identically — that equivalence is property-tested in
//! `tests/cluster_props.rs`.
//!
//! Addressing is **shard-local** throughout: `(collection, local
//! slot)`, with the global↔local translation owned by the caller.

use bytes::Bytes;
use scq_bbox::{Bbox, CornerQuery};
use scq_engine::{integrity, snapshot, CollectionId, CompactReport, IndexKind, SpatialDatabase};
use scq_region::{AaBox, Region};

use crate::wire::WireError;

/// Why a shard backend operation failed.
///
/// [`LocalShard`] never fails; every variant originates in the remote
/// backend's transport or in a shard process rejecting an operation.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardError {
    /// Transport-level failure talking to a remote shard process.
    Wire(WireError),
    /// The shard (or the client's own consistency checks) rejected the
    /// operation.
    Rejected(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Wire(e) => write!(f, "shard wire: {e}"),
            ShardError::Rejected(m) => write!(f, "shard rejected: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<WireError> for ShardError {
    fn from(e: WireError) -> Self {
        ShardError::Wire(e)
    }
}

/// Accounting for one corner-query probe: how the backend obtained (or
/// failed to obtain) the answer. Filled in by
/// [`ShardBackend::try_corner_query`] and folded into
/// `ProbeReport`/`ExecStats` by the routing layer. Local backends
/// leave it untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeTrace {
    /// Transport reconnect-and-retry attempts made while answering,
    /// counted whether the probe ultimately succeeded or not.
    pub retries: usize,
    /// Replicas that failed (or were skipped by an open breaker)
    /// before one answered — 0 when the primary answered directly.
    pub failovers: usize,
    /// Whether the answer came from a non-primary replica. Such an
    /// answer is correct against the last replicated write, but the
    /// primary could not confirm it — callers surface it as a
    /// staleness marker.
    pub stale: bool,
}

/// One shard of a [`crate::ShardedDatabase`]: the full contract between
/// the routing layer and wherever the shard's objects actually live.
///
/// All slot indices are **shard-local**. Mutations are fallible because
/// a remote backend sits behind a socket; [`LocalShard`] never returns
/// an error. Read accessors (`region`, `bbox`, `is_live`, lengths) are
/// infallible: every implementation keeps them answerable without I/O,
/// which is what lets the executors run over a remote-backed store at
/// local speed — only corner-query retrieval crosses the wire.
pub trait ShardBackend: Send + Sync {
    /// Short human-readable description (`local`, `remote:<addr>`),
    /// used in stats and error messages.
    fn describe(&self) -> String;

    /// The universe this shard's database spans.
    fn universe(&self) -> &AaBox<2>;

    /// Creates (or finds) a collection. Shards create collections in
    /// lockstep with the routing layer, so the returned id must equal
    /// the logical id — implementations return an error if the shard
    /// numbers it differently (a desynchronized shard process).
    fn create_collection(&mut self, name: &str) -> Result<CollectionId, ShardError>;

    /// Looks up a collection by name.
    fn collection_id(&self, name: &str) -> Option<CollectionId>;

    /// Number of local slots (tombstones included).
    fn collection_len(&self, coll: CollectionId) -> usize;

    /// Number of live local objects.
    fn live_len(&self, coll: CollectionId) -> usize;

    /// The shard's per-collection **mutation epoch** (see
    /// `scq_engine::StoreView::epoch`): bumped on every effective
    /// mutation of this shard's slice of the collection. A remote
    /// backend answers from its write-through mirror, which stays in
    /// lockstep with the shard process — [`ShardBackend::check`]
    /// verifies the two agree.
    fn epoch(&self, coll: CollectionId) -> u64;

    /// Whether a local slot is live.
    fn is_live(&self, coll: CollectionId, local: usize) -> bool;

    /// The region stored in a local slot.
    fn region(&self, coll: CollectionId, local: usize) -> &Region<2>;

    /// The materialized bounding box of a local slot.
    fn bbox(&self, coll: CollectionId, local: usize) -> Bbox<2>;

    /// Inserts a region, returning the fresh local slot index.
    fn insert(&mut self, coll: CollectionId, region: Region<2>) -> Result<usize, ShardError>;

    /// Tombstones a local slot. `Ok(false)` when it was already dead.
    fn remove(&mut self, coll: CollectionId, local: usize) -> Result<bool, ShardError>;

    /// Replaces a live local slot's region in place (no routing here —
    /// cross-shard migration is the layer above). `Ok(false)` when the
    /// slot is tombstoned.
    fn update(
        &mut self,
        coll: CollectionId,
        local: usize,
        region: Region<2>,
    ) -> Result<bool, ShardError>;

    /// Runs a corner query against the chosen index, appending matching
    /// **local** slot indices to `out` (the caller remaps to global).
    ///
    /// Probe accounting accumulates into `trace` whether the probe
    /// ultimately succeeds or not: transport **retries** (a remote
    /// backend reconnects and retries idempotent requests once per
    /// replica; local backends never retry) — a probe that retried and
    /// *then* failed still counts, so flapping and dead shards are
    /// distinguishable from the counters — plus replica **failovers**
    /// and whether the answer came from a non-primary (stale). `Err`
    /// means no replica could answer even after retrying — the routing
    /// layer treats it as an unavailable shard and degrades the read
    /// instead of failing the query. Implementations must leave `out`
    /// untouched on error.
    fn try_corner_query(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<2>,
        out: &mut Vec<u64>,
        trace: &mut ProbeTrace,
    ) -> Result<(), ShardError>;

    /// Compacts the shard, returning the local-slot remap report.
    fn compact(&mut self) -> Result<CompactReport, ShardError>;

    /// Structural integrity problems of this shard (empty = healthy).
    /// Transport failures surface as problems, not panics.
    fn check(&self) -> Vec<String>;

    /// Per-replica connection/breaker health, one entry per replica in
    /// failover order. Local backends have no connections and return
    /// an empty list (the default).
    fn health(&self) -> Vec<crate::remote::ReplicaHealth> {
        Vec::new()
    }

    /// WAL counters aggregated across this shard's replicas, when any
    /// of them keeps a log. Local backends are purely in-memory and
    /// report `None` (the default).
    fn wal_stats(&self) -> Option<crate::wal::WalStats> {
        None
    }

    /// Brings desynchronized replicas back in sync with the primary —
    /// by shipping WAL segments when the primary's log still reaches
    /// genesis, falling back to a full snapshot otherwise. Local
    /// backends have no replicas and report an empty outcome (the
    /// default).
    fn resync(&mut self) -> Result<crate::remote::ResyncOutcome, ShardError> {
        Ok(crate::remote::ResyncOutcome::default())
    }

    /// The shard **process's** own instruments (per-op latency
    /// histograms, WAL fsync latency), fetched over the wire for a
    /// remote backend. Local backends run inside the caller's process —
    /// their work is already observed there — and report `None` (the
    /// default), as does a remote shard that cannot be reached.
    fn metrics(&self) -> Option<scq_obs::Snapshot> {
        None
    }

    /// Client-side instruments for talking **to** this shard
    /// (connection-pool checkout wait, breaker trips), merged across
    /// replicas. Local backends have no client and report `None` (the
    /// default).
    fn client_metrics(&self) -> Option<scq_obs::Snapshot> {
        None
    }

    /// The shard's full snapshot stream (the engine's versioned `SCQS`
    /// format) — for a remote backend this is produced by the shard
    /// process, so only one shard's bytes ever cross the wire at once.
    fn snapshot_stream(&self) -> Result<Bytes, ShardError>;

    /// Replaces the shard's entire contents with a decoded `SCQS`
    /// stream (snapshot restore).
    fn load_snapshot(&mut self, stream: &[u8]) -> Result<(), ShardError>;
}

/// The in-process backend: a [`SpatialDatabase`] owned directly.
/// Infallible and zero-overhead — exactly the behavior the sharded
/// store had before backends existed.
pub struct LocalShard(SpatialDatabase<2>);

impl LocalShard {
    /// An empty local shard over `universe`.
    pub fn new(universe: AaBox<2>) -> Self {
        LocalShard(SpatialDatabase::new(universe))
    }

    /// Wraps an existing database (snapshot assembly).
    pub fn from_database(db: SpatialDatabase<2>) -> Self {
        LocalShard(db)
    }

    /// Read access to the underlying database.
    pub fn database(&self) -> &SpatialDatabase<2> {
        &self.0
    }
}

impl ShardBackend for LocalShard {
    fn describe(&self) -> String {
        "local".into()
    }

    fn universe(&self) -> &AaBox<2> {
        self.0.universe()
    }

    fn create_collection(&mut self, name: &str) -> Result<CollectionId, ShardError> {
        Ok(self.0.collection(name))
    }

    fn collection_id(&self, name: &str) -> Option<CollectionId> {
        self.0.collection_id(name)
    }

    fn collection_len(&self, coll: CollectionId) -> usize {
        self.0.collection_len(coll)
    }

    fn live_len(&self, coll: CollectionId) -> usize {
        self.0.live_len(coll)
    }

    fn epoch(&self, coll: CollectionId) -> u64 {
        self.0.epoch(coll)
    }

    fn is_live(&self, coll: CollectionId, local: usize) -> bool {
        self.0.is_live(local_ref(coll, local))
    }

    fn region(&self, coll: CollectionId, local: usize) -> &Region<2> {
        self.0.region(local_ref(coll, local))
    }

    fn bbox(&self, coll: CollectionId, local: usize) -> Bbox<2> {
        self.0.bbox(local_ref(coll, local))
    }

    fn insert(&mut self, coll: CollectionId, region: Region<2>) -> Result<usize, ShardError> {
        Ok(self.0.insert(coll, region).index)
    }

    fn remove(&mut self, coll: CollectionId, local: usize) -> Result<bool, ShardError> {
        Ok(self.0.remove(local_ref(coll, local)))
    }

    fn update(
        &mut self,
        coll: CollectionId,
        local: usize,
        region: Region<2>,
    ) -> Result<bool, ShardError> {
        Ok(self.0.update(local_ref(coll, local), region))
    }

    fn try_corner_query(
        &self,
        coll: CollectionId,
        kind: IndexKind,
        q: &CornerQuery<2>,
        out: &mut Vec<u64>,
        _trace: &mut ProbeTrace,
    ) -> Result<(), ShardError> {
        self.0.query_collection(coll, kind, q, out);
        Ok(())
    }

    fn compact(&mut self) -> Result<CompactReport, ShardError> {
        Ok(self.0.compact())
    }

    fn check(&self) -> Vec<String> {
        integrity::check(&self.0).err().unwrap_or_default()
    }

    fn snapshot_stream(&self) -> Result<Bytes, ShardError> {
        Ok(snapshot::save(&self.0))
    }

    fn load_snapshot(&mut self, stream: &[u8]) -> Result<(), ShardError> {
        self.0 = snapshot::load::<2>(stream).map_err(|e| ShardError::Rejected(e.to_string()))?;
        Ok(())
    }
}

fn local_ref(coll: CollectionId, local: usize) -> scq_engine::ObjectRef {
    scq_engine::ObjectRef {
        collection: coll,
        index: local,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_shard_round_trips_through_the_trait() {
        let mut s = LocalShard::new(AaBox::new([0.0, 0.0], [10.0, 10.0]));
        let c = s.create_collection("objs").unwrap();
        assert_eq!(s.collection_id("objs"), Some(c));
        let r = Region::from_box(AaBox::new([1.0, 1.0], [2.0, 2.0]));
        let slot = s.insert(c, r.clone()).unwrap();
        assert_eq!(slot, 0);
        assert!(s.is_live(c, slot));
        assert!(s.region(c, slot).same_set(&r));
        assert!(s
            .update(
                c,
                slot,
                Region::from_box(AaBox::new([3.0, 3.0], [4.0, 4.0]))
            )
            .unwrap());
        assert!(s.remove(c, slot).unwrap());
        assert!(!s.remove(c, slot).unwrap());
        assert_eq!(s.live_len(c), 0);
        assert_eq!(s.collection_len(c), 1);
        let report = s.compact().unwrap();
        assert_eq!(report.slots_reclaimed, 1);
        assert!(s.check().is_empty());
        let stream = s.snapshot_stream().unwrap();
        let mut other = LocalShard::new(AaBox::new([0.0, 0.0], [1.0, 1.0]));
        other.load_snapshot(&stream).unwrap();
        assert_eq!(other.collection_id("objs"), Some(c));
        assert_eq!(other.collection_len(c), 0, "compacted shard is empty");
    }
}
